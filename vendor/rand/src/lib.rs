//! A minimal, dependency-free stand-in for the `rand` crate surface this
//! workspace uses: `Rng::{gen, gen_bool, gen_range}`, `SeedableRng::seed_from_u64`
//! and `rngs::StdRng`, vendored so the build works without network access.
//!
//! The generator is SplitMix64 — deterministic, fast, and statistically fine
//! for test-program generation (it is not the real StdRng stream; seeds
//! produce different but equally usable programs).

use std::ops::{Range, RangeInclusive};

/// Core random source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (blanket-implemented for every `RngCore`).
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Sample uniformly from a range. Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from 64 random bits without parameters.
pub trait SampleStandard {
    /// Draw one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> u32 {
        rng.next_u64() as u32
    }
}

impl SampleStandard for u8 {
    fn sample<R: Rng>(rng: &mut R) -> u8 {
        rng.next_u64() as u8
    }
}

/// Ranges samplable to a `T`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! range_impl {
    ($($ty:ty),*) => {
        $(
            impl SampleRange<$ty> for Range<$ty> {
                fn sample<R: Rng>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $ty
                }
            }

            impl SampleRange<$ty> for RangeInclusive<$ty> {
                fn sample<R: Rng>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (start as i128 + v as i128) as $ty
                }
            }
        )*
    };
}

range_impl!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    /// Alias of [`StdRng`] (the real crate's small generator).
    pub type SmallRng = StdRng;
}

/// Convenience re-exports matching `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}
