//! A minimal, dependency-free reimplementation of the serde data-model
//! traits, vendored so the workspace builds without network access.
//!
//! It deliberately mirrors the real serde API surface that this repository
//! uses: the `Serialize`/`Deserialize` traits, the `ser`/`de` trait
//! families (including the full `Serializer`/`Deserializer` method sets
//! required by `crellvm-core`'s hand-written binary codec), derive macros
//! (re-exported from the sibling `serde_derive` stub), and impls for the
//! std types that appear in serialized data (integers, `String`, `Vec`,
//! `Option`, `Box`, tuples, `BTreeMap`, `BTreeSet`, …).
//!
//! Anything the workspace does not exercise is intentionally omitted.

pub mod de;
pub mod ser;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};

mod impls;
