//! Deserialization half of the data model.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Trait for deserialization errors.
pub trait Error: Sized + std::error::Error {
    /// Construct an error from a message.
    fn custom<T: Display>(msg: T) -> Self;

    /// An unknown field/variant name was encountered.
    fn unknown_field(field: &str, _expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!("unknown field `{field}`"))
    }

    /// A required field was missing.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }
}

/// A data structure that can be deserialized from any data format.
pub trait Deserialize<'de>: Sized {
    /// Deserialize `Self` from the given deserializer.
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

/// A value that can be deserialized without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// A stateful `Deserialize` driver (serde's `DeserializeSeed`).
pub trait DeserializeSeed<'de>: Sized {
    /// The produced value.
    type Value;
    /// Deserialize the value.
    fn deserialize<D>(self, deserializer: D) -> Result<Self::Value, D::Error>
    where
        D: Deserializer<'de>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D>(self, deserializer: D) -> Result<T, D::Error>
    where
        D: Deserializer<'de>,
    {
        T::deserialize(deserializer)
    }
}

macro_rules! visit_default {
    ($($name:ident: $ty:ty => $what:literal,)*) => {
        $(
            /// Visit a primitive (default: type error).
            fn $name<E: Error>(self, _v: $ty) -> Result<Self::Value, E> {
                Err(E::custom(format_args!(concat!("unexpected ", $what))))
            }
        )*
    };
}

/// The visitor half of the deserialization handshake.
pub trait Visitor<'de>: Sized {
    /// The value this visitor produces.
    type Value;

    /// Describe what this visitor expects (for error messages).
    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result;

    visit_default! {
        visit_bool: bool => "bool",
        visit_i8: i8 => "i8",
        visit_i16: i16 => "i16",
        visit_i32: i32 => "i32",
        visit_f32: f32 => "f32",
        visit_f64: f64 => "f64",
        visit_char: char => "char",
        visit_u8: u8 => "u8",
        visit_u16: u16 => "u16",
        visit_u32: u32 => "u32",
    }

    /// Visit an `i64` (default: type error).
    fn visit_i64<E: Error>(self, _v: i64) -> Result<Self::Value, E> {
        Err(E::custom("unexpected i64"))
    }

    /// Visit a `u64` (default: type error).
    fn visit_u64<E: Error>(self, _v: u64) -> Result<Self::Value, E> {
        Err(E::custom("unexpected u64"))
    }

    /// Visit a borrowed string (default: delegate to `visit_str`).
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }

    /// Visit a transient string slice (default: type error).
    fn visit_str<E: Error>(self, _v: &str) -> Result<Self::Value, E> {
        Err(E::custom("unexpected string"))
    }

    /// Visit an owned string (default: delegate to `visit_str`).
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    /// Visit borrowed bytes (default: delegate to `visit_bytes`).
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }

    /// Visit transient bytes (default: type error).
    fn visit_bytes<E: Error>(self, _v: &[u8]) -> Result<Self::Value, E> {
        Err(E::custom("unexpected bytes"))
    }

    /// Visit an owned byte buffer (default: delegate to `visit_bytes`).
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }

    /// Visit an absent optional (default: type error).
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected none"))
    }

    /// Visit a present optional (default: type error).
    fn visit_some<D: Deserializer<'de>>(self, _d: D) -> Result<Self::Value, D::Error> {
        Err(Error::custom("unexpected some"))
    }

    /// Visit a unit value (default: type error).
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected unit"))
    }

    /// Visit a newtype struct (default: deserialize the inner value).
    fn visit_newtype_struct<D: Deserializer<'de>>(self, _d: D) -> Result<Self::Value, D::Error> {
        Err(Error::custom("unexpected newtype struct"))
    }

    /// Visit a sequence (default: type error).
    fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
        Err(Error::custom("unexpected sequence"))
    }

    /// Visit a map (default: type error).
    fn visit_map<A: MapAccess<'de>>(self, _map: A) -> Result<Self::Value, A::Error> {
        Err(Error::custom("unexpected map"))
    }

    /// Visit an enum (default: type error).
    fn visit_enum<A: EnumAccess<'de>>(self, _data: A) -> Result<Self::Value, A::Error> {
        Err(Error::custom("unexpected enum"))
    }
}

/// A data format that can deserialize any data structure.
pub trait Deserializer<'de>: Sized {
    /// Error type produced on failure.
    type Error: Error;

    /// Whether the format is human readable.
    fn is_human_readable(&self) -> bool {
        true
    }

    /// Self-describing dispatch.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: `bool`.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: `i8`.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: `i16`.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: `i32`.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: `i64`.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: `u8`.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: `u16`.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: `u32`.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: `u64`.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: `f32`.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: `f64`.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: `char`.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: string slice.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: owned string.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: bytes.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: owned bytes.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: optional value.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: unit.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: unit struct.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Hint: newtype struct.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Hint: sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: fixed-size tuple.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Hint: tuple struct.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Hint: map.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: struct with named fields.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Hint: enum.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Hint: struct-field or enum-variant identifier.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint: value that will be discarded.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
}

/// Access to the elements of a sequence.
pub trait SeqAccess<'de> {
    /// Error type produced on failure.
    type Error: Error;

    /// Deserialize the next element with a seed.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    /// Deserialize the next element.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    /// Number of remaining elements, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the entries of a map.
pub trait MapAccess<'de> {
    /// Error type produced on failure.
    type Error: Error;

    /// Deserialize the next key with a seed.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    /// Deserialize the next value with a seed.
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;

    /// Deserialize the next key.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    /// Deserialize the next value.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    /// Number of remaining entries, if known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum.
pub trait EnumAccess<'de>: Sized {
    /// Error type produced on failure.
    type Error: Error;
    /// Accessor for the variant payload.
    type Variant: VariantAccess<'de, Error = Self::Error>;

    /// Deserialize the variant tag with a seed.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    /// Deserialize the variant tag.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the payload of an enum variant.
pub trait VariantAccess<'de>: Sized {
    /// Error type produced on failure.
    type Error: Error;

    /// The variant is a unit variant.
    fn unit_variant(self) -> Result<(), Self::Error>;

    /// The variant is a newtype variant; deserialize its payload with a seed.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    /// The variant is a newtype variant.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    /// The variant is a tuple variant with `len` fields.
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    /// The variant is a struct variant with the given fields.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Conversion into a `Deserializer` (used for enum variant indices).
pub trait IntoDeserializer<'de, E: Error> {
    /// The resulting deserializer.
    type Deserializer: Deserializer<'de, Error = E>;
    /// Perform the conversion.
    fn into_deserializer(self) -> Self::Deserializer;
}

/// A deserializer wrapping a single `u32` (an enum variant index).
pub struct U32Deserializer<E> {
    value: u32,
    marker: PhantomData<E>,
}

impl<'de, E: Error> IntoDeserializer<'de, E> for u32 {
    type Deserializer = U32Deserializer<E>;
    fn into_deserializer(self) -> U32Deserializer<E> {
        U32Deserializer {
            value: self,
            marker: PhantomData,
        }
    }
}

macro_rules! forward_to_visit_u32 {
    ($($method:ident)*) => {
        $(
            fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                visitor.visit_u32(self.value)
            }
        )*
    };
}

impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
    type Error = E;

    forward_to_visit_u32! {
        deserialize_any deserialize_u8 deserialize_u16 deserialize_u32 deserialize_u64
        deserialize_i8 deserialize_i16 deserialize_i32 deserialize_i64
        deserialize_identifier deserialize_ignored_any
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_tuple<V: Visitor<'de>>(self, _len: usize, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
}

/// A value that deserializes by discarding whatever it finds.
#[derive(Debug, Clone, Copy, Default)]
pub struct IgnoredAny;

impl<'de> Deserialize<'de> for IgnoredAny {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = IgnoredAny;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("anything")
            }
            fn visit_bool<E: Error>(self, _: bool) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_i64<E: Error>(self, _: i64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_u64<E: Error>(self, _: u64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_f64<E: Error>(self, _: f64) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_str<E: Error>(self, _: &str) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_none<E: Error>(self) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_unit<E: Error>(self) -> Result<IgnoredAny, E> {
                Ok(IgnoredAny)
            }
            fn visit_some<D: Deserializer<'de>>(self, d: D) -> Result<IgnoredAny, D::Error> {
                IgnoredAny::deserialize(d)
            }
            fn visit_newtype_struct<D: Deserializer<'de>>(
                self,
                d: D,
            ) -> Result<IgnoredAny, D::Error> {
                IgnoredAny::deserialize(d)
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<IgnoredAny, A::Error> {
                while seq.next_element::<IgnoredAny>()?.is_some() {}
                Ok(IgnoredAny)
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<IgnoredAny, A::Error> {
                while map.next_key::<IgnoredAny>()?.is_some() {
                    map.next_value::<IgnoredAny>()?;
                }
                Ok(IgnoredAny)
            }
        }
        deserializer.deserialize_ignored_any(V)
    }
}
