//! `Serialize`/`Deserialize` impls for the std types this workspace uses.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::de::{self, Deserialize, Deserializer, MapAccess, SeqAccess, Visitor};
use crate::ser::{
    Serialize, SerializeMap, SerializeSeq, SerializeStruct, SerializeTuple, Serializer,
};

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

macro_rules! int_impl {
    ($ty:ty, $ser:ident, $deser:ident, $visit:ident, $expect:literal) => {
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$ser(*self)
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        f.write_str($expect)
                    }
                    fn visit_i8<E: de::Error>(self, v: i8) -> Result<$ty, E> {
                        <$ty>::try_from(v).map_err(|_| E::custom("integer out of range"))
                    }
                    fn visit_i16<E: de::Error>(self, v: i16) -> Result<$ty, E> {
                        <$ty>::try_from(v).map_err(|_| E::custom("integer out of range"))
                    }
                    fn visit_i32<E: de::Error>(self, v: i32) -> Result<$ty, E> {
                        <$ty>::try_from(v).map_err(|_| E::custom("integer out of range"))
                    }
                    fn visit_i64<E: de::Error>(self, v: i64) -> Result<$ty, E> {
                        <$ty>::try_from(v).map_err(|_| E::custom("integer out of range"))
                    }
                    fn visit_u8<E: de::Error>(self, v: u8) -> Result<$ty, E> {
                        <$ty>::try_from(v).map_err(|_| E::custom("integer out of range"))
                    }
                    fn visit_u16<E: de::Error>(self, v: u16) -> Result<$ty, E> {
                        <$ty>::try_from(v).map_err(|_| E::custom("integer out of range"))
                    }
                    fn visit_u32<E: de::Error>(self, v: u32) -> Result<$ty, E> {
                        <$ty>::try_from(v).map_err(|_| E::custom("integer out of range"))
                    }
                    fn visit_u64<E: de::Error>(self, v: u64) -> Result<$ty, E> {
                        <$ty>::try_from(v).map_err(|_| E::custom("integer out of range"))
                    }
                }
                deserializer.$deser(V)
            }
        }
    };
}

int_impl!(i8, serialize_i8, deserialize_i8, visit_i8, "an i8");
int_impl!(i16, serialize_i16, deserialize_i16, visit_i16, "an i16");
int_impl!(i32, serialize_i32, deserialize_i32, visit_i32, "an i32");
int_impl!(i64, serialize_i64, deserialize_i64, visit_i64, "an i64");
int_impl!(u8, serialize_u8, deserialize_u8, visit_u8, "a u8");
int_impl!(u16, serialize_u16, deserialize_u16, visit_u16, "a u16");
int_impl!(u32, serialize_u32, deserialize_u32, visit_u32, "a u32");
int_impl!(u64, serialize_u64, deserialize_u64, visit_u64, "a u64");

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = u64::deserialize(deserializer)?;
        usize::try_from(v).map_err(|_| de::Error::custom("usize out of range"))
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = i64::deserialize(deserializer)?;
        isize::try_from(v).map_err(|_| de::Error::custom("isize out of range"))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = bool;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a bool")
            }
            fn visit_bool<E: de::Error>(self, v: bool) -> Result<bool, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_bool(V)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f32(*self)
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = f32;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("an f32")
            }
            fn visit_f32<E: de::Error>(self, v: f32) -> Result<f32, E> {
                Ok(v)
            }
            fn visit_f64<E: de::Error>(self, v: f64) -> Result<f32, E> {
                Ok(v as f32)
            }
            fn visit_i64<E: de::Error>(self, v: i64) -> Result<f32, E> {
                Ok(v as f32)
            }
            fn visit_u64<E: de::Error>(self, v: u64) -> Result<f32, E> {
                Ok(v as f32)
            }
        }
        deserializer.deserialize_f32(V)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = f64;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("an f64")
            }
            fn visit_f32<E: de::Error>(self, v: f32) -> Result<f64, E> {
                Ok(v as f64)
            }
            fn visit_f64<E: de::Error>(self, v: f64) -> Result<f64, E> {
                Ok(v)
            }
            fn visit_i64<E: de::Error>(self, v: i64) -> Result<f64, E> {
                Ok(v as f64)
            }
            fn visit_u64<E: de::Error>(self, v: u64) -> Result<f64, E> {
                Ok(v as f64)
            }
        }
        deserializer.deserialize_f64(V)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_char(*self)
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = char;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a char")
            }
            fn visit_char<E: de::Error>(self, v: char) -> Result<char, E> {
                Ok(v)
            }
            fn visit_u32<E: de::Error>(self, v: u32) -> Result<char, E> {
                char::from_u32(v).ok_or_else(|| E::custom("invalid char scalar"))
            }
            fn visit_str<E: de::Error>(self, v: &str) -> Result<char, E> {
                let mut chars = v.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(E::custom("expected a single-character string")),
                }
            }
        }
        deserializer.deserialize_char(V)
    }
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: de::Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: de::Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(V)
    }
}

// ---------------------------------------------------------------------------
// References, Box, unit
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: de::Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(V)
    }
}

// ---------------------------------------------------------------------------
// Option
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(std::marker::PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("an optional value")
            }
            fn visit_none<E: de::Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_unit<E: de::Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(self, d: D) -> Result<Option<T>, D::Error> {
                T::deserialize(d).map(Some)
            }
        }
        deserializer.deserialize_option(V(std::marker::PhantomData))
    }
}

// ---------------------------------------------------------------------------
// Sequences and collections
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(std::marker::PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(std::marker::PhantomData))
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(std::marker::PhantomData<T>);
        impl<'de, T: Deserialize<'de> + Ord> Visitor<'de> for V<T> {
            type Value = BTreeSet<T>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<BTreeSet<T>, A::Error> {
                let mut out = BTreeSet::new();
                while let Some(item) = seq.next_element()? {
                    out.insert(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(std::marker::PhantomData))
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_key(k)?;
            map.serialize_value(v)?;
        }
        map.end()
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V>(std::marker::PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for Vis<K, V> {
            type Value = BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<BTreeMap<K, V>, A::Error> {
                let mut out = BTreeMap::new();
                while let Some(key) = map.next_key()? {
                    let value = map.next_value()?;
                    out.insert(key, value);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(std::marker::PhantomData))
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! tuple_impl {
    ($len:expr => $($n:tt $name:ident)+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tup = serializer.serialize_tuple($len)?;
                $(tup.serialize_element(&self.$n)?;)+
                tup.end()
            }
        }

        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V<$($name),+>(std::marker::PhantomData<($($name,)+)>);
                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for V<$($name),+> {
                    type Value = ($($name,)+);
                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        write!(f, "a tuple of {} elements", $len)
                    }
                    #[allow(non_snake_case)]
                    fn visit_seq<A: SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<Self::Value, A::Error> {
                        $(
                            let $name = seq
                                .next_element()?
                                .ok_or_else(|| de::Error::custom("tuple too short"))?;
                        )+
                        Ok(($($name,)+))
                    }
                }
                deserializer.deserialize_tuple($len, V(std::marker::PhantomData))
            }
        }
    };
}

tuple_impl!(1 => 0 T0);
tuple_impl!(2 => 0 T0 1 T1);
tuple_impl!(3 => 0 T0 1 T1 2 T2);
tuple_impl!(4 => 0 T0 1 T1 2 T2 3 T3);

// ---------------------------------------------------------------------------
// std::time::Duration (used by pipeline reports)
// ---------------------------------------------------------------------------

impl Serialize for std::time::Duration {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("Duration", 2)?;
        s.serialize_field("secs", &self.as_secs())?;
        s.serialize_field("nanos", &self.subsec_nanos())?;
        s.end()
    }
}

impl<'de> Deserialize<'de> for std::time::Duration {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = std::time::Duration;
            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a Duration")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let secs: u64 = seq
                    .next_element()?
                    .ok_or_else(|| de::Error::custom("missing secs"))?;
                let nanos: u32 = seq
                    .next_element()?
                    .ok_or_else(|| de::Error::custom("missing nanos"))?;
                Ok(std::time::Duration::new(secs, nanos))
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut secs: Option<u64> = None;
                let mut nanos: Option<u32> = None;
                while let Some(key) = map.next_key::<String>()? {
                    match key.as_str() {
                        "secs" => secs = Some(map.next_value()?),
                        "nanos" => nanos = Some(map.next_value()?),
                        _ => {
                            map.next_value::<crate::de::IgnoredAny>()?;
                        }
                    }
                }
                Ok(std::time::Duration::new(
                    secs.ok_or_else(|| de::Error::missing_field("secs"))?,
                    nanos.ok_or_else(|| de::Error::missing_field("nanos"))?,
                ))
            }
        }
        deserializer.deserialize_struct("Duration", &["secs", "nanos"], V)
    }
}
