//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` without
//! syn/quote, vendored so the workspace builds offline.
//!
//! The input is parsed structurally from the raw `TokenStream` and the impl
//! is emitted as formatted source text. Supported shapes are exactly what
//! this repository uses: non-generic structs (named, tuple/newtype, unit)
//! and non-generic enums with unit / newtype / tuple / struct variants.
//! `#[serde(...)]` customization attributes are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::str::FromStr;

// ---------------------------------------------------------------------------
// Shape model
// ---------------------------------------------------------------------------

enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while *i + 1 < tokens.len() {
        match (&tokens[*i], &tokens[*i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            _ => break,
        }
    }
}

fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize, what: &str) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive stub: expected {what}, found {other:?}"),
    }
}

/// Parse `name: Type,` pairs out of a brace-group body.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i, "field name");
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde_derive stub: expected `:` after field `{name}`, found {other:?}")
            }
        }
        // Skip the type: consume tokens until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

/// Count comma-separated segments at the top level of a paren-group body.
fn tuple_arity(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut depth = 0i32;
    let mut segments = 0usize;
    let mut in_segment = false;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                in_segment = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                in_segment = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if in_segment {
                    segments += 1;
                    in_segment = false;
                }
            }
            _ => in_segment = true,
        }
    }
    if in_segment {
        segments += 1;
    }
    segments
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i, "variant name");
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                i += 1;
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Consume up to and including the separating comma (discriminants are
        // not supported; none exist in this workspace).
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let kw = expect_ident(&tokens, &mut i, "`struct` or `enum`");
    let name = expect_ident(&tokens, &mut i, "type name");
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic types are not supported (`{name}`)");
        }
    }
    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: tuple_arity(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            other => panic!("serde_derive stub: unsupported struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive stub: unsupported enum body: {other:?}"),
        },
        other => panic!("serde_derive stub: expected struct or enum, found `{other}`"),
    }
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match &shape {
        Shape::NamedStruct { name, fields } => {
            let mut body = format!(
                "let mut __state = ::serde::Serializer::serialize_struct(serializer, \"{name}\", {})?;\n",
                fields.len()
            );
            for f in fields {
                body.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __state, \"{f}\", &self.{f})?;\n"
                ));
            }
            body.push_str("::serde::ser::SerializeStruct::end(__state)\n");
            serialize_impl(name, &body)
        }
        Shape::TupleStruct { name, arity: 1 } => serialize_impl(
            name,
            &format!(
                "::serde::Serializer::serialize_newtype_struct(serializer, \"{name}\", &self.0)\n"
            ),
        ),
        Shape::TupleStruct { name, arity } => {
            let mut body = format!(
                "let mut __state = ::serde::Serializer::serialize_tuple_struct(serializer, \"{name}\", {arity})?;\n"
            );
            for idx in 0..*arity {
                body.push_str(&format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut __state, &self.{idx})?;\n"
                ));
            }
            body.push_str("::serde::ser::SerializeTupleStruct::end(__state)\n");
            serialize_impl(name, &body)
        }
        Shape::UnitStruct { name } => serialize_impl(
            name,
            &format!("::serde::Serializer::serialize_unit_struct(serializer, \"{name}\")\n"),
        ),
        Shape::Enum { name, variants } => {
            let mut body = String::from("match self {\n");
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => body.push_str(&format!(
                        "{name}::{vname} => ::serde::Serializer::serialize_unit_variant(serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
                    )),
                    VariantKind::Tuple(1) => body.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::Serializer::serialize_newtype_variant(serializer, \"{name}\", {idx}u32, \"{vname}\", __f0),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                        let mut arm = format!(
                            "{name}::{vname}({}) => {{\nlet mut __state = ::serde::Serializer::serialize_tuple_variant(serializer, \"{name}\", {idx}u32, \"{vname}\", {arity})?;\n",
                            binders.join(", ")
                        );
                        for b in &binders {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeTupleVariant::serialize_field(&mut __state, {b})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeTupleVariant::end(__state)\n}\n");
                        body.push_str(&arm);
                    }
                    VariantKind::Struct(fields) => {
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{\nlet mut __state = ::serde::Serializer::serialize_struct_variant(serializer, \"{name}\", {idx}u32, \"{vname}\", {})?;\n",
                            fields.join(", "),
                            fields.len()
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(&mut __state, \"{f}\", {f})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeStructVariant::end(__state)\n}\n");
                        body.push_str(&arm);
                    }
                }
            }
            body.push_str("}\n");
            serialize_impl(name, &body)
        }
    };
    TokenStream::from_str(&code)
        .expect("serde_derive stub: generated Serialize impl failed to parse")
}

fn serialize_impl(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, serializer: __S) \
                 -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\
             }}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match &shape {
        Shape::NamedStruct { name, fields } => {
            let visitor = named_fields_visitor("__Visitor", name, name, "", fields);
            let field_list = fields
                .iter()
                .map(|f| format!("\"{f}\""))
                .collect::<Vec<_>>()
                .join(", ");
            deserialize_impl(
                name,
                &format!(
                    "{visitor}\n\
                     ::serde::Deserializer::deserialize_struct(deserializer, \"{name}\", &[{field_list}], __Visitor)\n"
                ),
            )
        }
        Shape::TupleStruct { name, arity: 1 } => deserialize_impl(
            name,
            &format!(
                "struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, __f: &mut ::std::fmt::Formatter) -> ::std::fmt::Result {{\n\
                         __f.write_str(\"newtype struct {name}\")\n\
                     }}\n\
                     fn visit_newtype_struct<__D: ::serde::Deserializer<'de>>(self, __d: __D) \
                         -> ::std::result::Result<Self::Value, __D::Error> {{\n\
                         ::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__d)?))\n\
                     }}\n\
                     fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
                         -> ::std::result::Result<Self::Value, __A::Error> {{\n\
                         let __f0 = match ::serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
                             ::std::option::Option::Some(__v) => __v,\n\
                             ::std::option::Option::None => \
                                 return ::std::result::Result::Err(::serde::de::Error::custom(\"newtype struct {name}: missing value\")),\n\
                         }};\n\
                         ::std::result::Result::Ok({name}(__f0))\n\
                     }}\n\
                 }}\n\
                 ::serde::Deserializer::deserialize_newtype_struct(deserializer, \"{name}\", __Visitor)\n"
            ),
        ),
        Shape::TupleStruct { name, arity } => {
            let visitor = tuple_visitor("__Visitor", name, name, "", *arity);
            deserialize_impl(
                name,
                &format!(
                    "{visitor}\n\
                     ::serde::Deserializer::deserialize_tuple_struct(deserializer, \"{name}\", {arity}, __Visitor)\n"
                ),
            )
        }
        Shape::UnitStruct { name } => deserialize_impl(
            name,
            &format!(
                "struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, __f: &mut ::std::fmt::Formatter) -> ::std::fmt::Result {{\n\
                         __f.write_str(\"unit struct {name}\")\n\
                     }}\n\
                     fn visit_unit<__E: ::serde::de::Error>(self) -> ::std::result::Result<Self::Value, __E> {{\n\
                         ::std::result::Result::Ok({name})\n\
                     }}\n\
                 }}\n\
                 ::serde::Deserializer::deserialize_unit_struct(deserializer, \"{name}\", __Visitor)\n"
            ),
        ),
        Shape::Enum { name, variants } => {
            let n = variants.len();
            // Tag deserializer: accepts a numeric index (binary format) or a
            // variant-name string (JSON).
            let str_arms = variants
                .iter()
                .enumerate()
                .map(|(idx, v)| format!("\"{}\" => ::std::result::Result::Ok(__Tag({idx}u32)),\n", v.name))
                .collect::<String>();
            let variant_list = variants
                .iter()
                .map(|v| format!("\"{}\"", v.name))
                .collect::<Vec<_>>()
                .join(", ");
            let tag = format!(
                "struct __Tag(u32);\n\
                 impl<'de> ::serde::Deserialize<'de> for __Tag {{\n\
                     fn deserialize<__D: ::serde::Deserializer<'de>>(__d: __D) \
                         -> ::std::result::Result<Self, __D::Error> {{\n\
                         struct __TagVisitor;\n\
                         impl<'de> ::serde::de::Visitor<'de> for __TagVisitor {{\n\
                             type Value = __Tag;\n\
                             fn expecting(&self, __f: &mut ::std::fmt::Formatter) -> ::std::fmt::Result {{\n\
                                 __f.write_str(\"variant of {name}\")\n\
                             }}\n\
                             fn visit_u32<__E: ::serde::de::Error>(self, __v: u32) \
                                 -> ::std::result::Result<__Tag, __E> {{\n\
                                 if (__v as usize) < {n} {{ ::std::result::Result::Ok(__Tag(__v)) }}\n\
                                 else {{ ::std::result::Result::Err(::serde::de::Error::custom(\"variant index out of range for {name}\")) }}\n\
                             }}\n\
                             fn visit_u64<__E: ::serde::de::Error>(self, __v: u64) \
                                 -> ::std::result::Result<__Tag, __E> {{\n\
                                 if (__v as usize) < {n} {{ ::std::result::Result::Ok(__Tag(__v as u32)) }}\n\
                                 else {{ ::std::result::Result::Err(::serde::de::Error::custom(\"variant index out of range for {name}\")) }}\n\
                             }}\n\
                             fn visit_str<__E: ::serde::de::Error>(self, __v: &str) \
                                 -> ::std::result::Result<__Tag, __E> {{\n\
                                 match __v {{\n\
                                     {str_arms}\
                                     __other => ::std::result::Result::Err(\
                                         ::serde::de::Error::unknown_field(__other, &[{variant_list}])),\n\
                                 }}\n\
                             }}\n\
                         }}\n\
                         ::serde::Deserializer::deserialize_identifier(__d, __TagVisitor)\n\
                     }}\n\
                 }}\n"
            );
            // Per-variant dispatch.
            let mut arms = String::new();
            let mut helper_visitors = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{idx}u32 => {{\n\
                             ::serde::de::VariantAccess::unit_variant(__variant)?;\n\
                             ::std::result::Result::Ok({name}::{vname})\n\
                         }}\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{idx}u32 => ::std::result::Result::Ok(\
                             {name}::{vname}(::serde::de::VariantAccess::newtype_variant(__variant)?)),\n"
                    )),
                    VariantKind::Tuple(arity) => {
                        let vis_name = format!("__V{idx}");
                        helper_visitors.push_str(&tuple_visitor(
                            &vis_name,
                            name,
                            name,
                            &format!("::{vname}"),
                            *arity,
                        ));
                        arms.push_str(&format!(
                            "{idx}u32 => ::serde::de::VariantAccess::tuple_variant(__variant, {arity}, {vis_name}),\n"
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let vis_name = format!("__V{idx}");
                        helper_visitors.push_str(&named_fields_visitor(
                            &vis_name,
                            name,
                            name,
                            &format!("::{vname}"),
                            fields,
                        ));
                        let field_list = fields
                            .iter()
                            .map(|f| format!("\"{f}\""))
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "{idx}u32 => ::serde::de::VariantAccess::struct_variant(__variant, &[{field_list}], {vis_name}),\n"
                        ));
                    }
                }
            }
            deserialize_impl(
                name,
                &format!(
                    "{tag}\
                     {helper_visitors}\
                     struct __Visitor;\n\
                     impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                         type Value = {name};\n\
                         fn expecting(&self, __f: &mut ::std::fmt::Formatter) -> ::std::fmt::Result {{\n\
                             __f.write_str(\"enum {name}\")\n\
                         }}\n\
                         fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(self, __a: __A) \
                             -> ::std::result::Result<Self::Value, __A::Error> {{\n\
                             let (__tag, __variant) = ::serde::de::EnumAccess::variant::<__Tag>(__a)?;\n\
                             match __tag.0 {{\n\
                                 {arms}\
                                 _ => ::std::result::Result::Err(\
                                     ::serde::de::Error::custom(\"invalid variant index for {name}\")),\n\
                             }}\n\
                         }}\n\
                     }}\n\
                     ::serde::Deserializer::deserialize_enum(deserializer, \"{name}\", &[{variant_list}], __Visitor)\n"
                ),
            )
        }
    };
    TokenStream::from_str(&code)
        .expect("serde_derive stub: generated Deserialize impl failed to parse")
}

fn deserialize_impl(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(deserializer: __D) \
                 -> ::std::result::Result<Self, __D::Error> {{\n\
                 {body}\
             }}\n\
         }}\n"
    )
}

/// Visitor over named fields producing `TYPE CTOR { field: .., .. }`.
/// `ctor_suffix` is "" for plain structs or "::Variant" for struct variants.
fn named_fields_visitor(
    vis_name: &str,
    value_ty: &str,
    ctor_base: &str,
    ctor_suffix: &str,
    fields: &[String],
) -> String {
    let desc = format!("{ctor_base}{ctor_suffix}");
    // visit_seq: positional (binary format maps structs to tuples).
    let mut seq_body = String::new();
    for f in fields {
        seq_body.push_str(&format!(
            "let __v_{f} = match ::serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
                 ::std::option::Option::Some(__v) => __v,\n\
                 ::std::option::Option::None => \
                     return ::std::result::Result::Err(::serde::de::Error::missing_field(\"{f}\")),\n\
             }};\n"
        ));
    }
    let ctor_fields = fields
        .iter()
        .map(|f| format!("{f}: __v_{f}"))
        .collect::<Vec<_>>()
        .join(", ");
    // visit_map: keyed (JSON), unknown keys skipped.
    let mut map_init = String::new();
    let mut map_arms = String::new();
    let mut map_ctor = Vec::new();
    for f in fields {
        map_init.push_str(&format!("let mut __v_{f} = ::std::option::Option::None;\n"));
        map_arms.push_str(&format!(
            "\"{f}\" => {{ __v_{f} = ::std::option::Option::Some(::serde::de::MapAccess::next_value(&mut __map)?); }}\n"
        ));
        map_ctor.push(format!(
            "{f}: match __v_{f} {{\n\
                 ::std::option::Option::Some(__v) => __v,\n\
                 ::std::option::Option::None => \
                     return ::std::result::Result::Err(::serde::de::Error::missing_field(\"{f}\")),\n\
             }}"
        ));
    }
    let map_ctor = map_ctor.join(", ");
    format!(
        "struct {vis_name};\n\
         impl<'de> ::serde::de::Visitor<'de> for {vis_name} {{\n\
             type Value = {value_ty};\n\
             fn expecting(&self, __f: &mut ::std::fmt::Formatter) -> ::std::fmt::Result {{\n\
                 __f.write_str(\"{desc}\")\n\
             }}\n\
             fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
                 -> ::std::result::Result<Self::Value, __A::Error> {{\n\
                 {seq_body}\
                 ::std::result::Result::Ok({ctor_base}{ctor_suffix} {{ {ctor_fields} }})\n\
             }}\n\
             fn visit_map<__A: ::serde::de::MapAccess<'de>>(self, mut __map: __A) \
                 -> ::std::result::Result<Self::Value, __A::Error> {{\n\
                 {map_init}\
                 while let ::std::option::Option::Some(__key) = \
                     ::serde::de::MapAccess::next_key::<::std::string::String>(&mut __map)? {{\n\
                     match __key.as_str() {{\n\
                         {map_arms}\
                         _ => {{ ::serde::de::MapAccess::next_value::<::serde::de::IgnoredAny>(&mut __map)?; }}\n\
                     }}\n\
                 }}\n\
                 ::std::result::Result::Ok({ctor_base}{ctor_suffix} {{ {map_ctor} }})\n\
             }}\n\
         }}\n"
    )
}

/// Visitor over positional fields producing `TYPE CTOR(f0, f1, ...)`.
fn tuple_visitor(
    vis_name: &str,
    value_ty: &str,
    ctor_base: &str,
    ctor_suffix: &str,
    arity: usize,
) -> String {
    let desc = format!("{ctor_base}{ctor_suffix}");
    let mut seq_body = String::new();
    for k in 0..arity {
        seq_body.push_str(&format!(
            "let __f{k} = match ::serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
                 ::std::option::Option::Some(__v) => __v,\n\
                 ::std::option::Option::None => \
                     return ::std::result::Result::Err(::serde::de::Error::custom(\"{desc}: too few elements\")),\n\
             }};\n"
        ));
    }
    let binders = (0..arity)
        .map(|k| format!("__f{k}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "struct {vis_name};\n\
         impl<'de> ::serde::de::Visitor<'de> for {vis_name} {{\n\
             type Value = {value_ty};\n\
             fn expecting(&self, __f: &mut ::std::fmt::Formatter) -> ::std::fmt::Result {{\n\
                 __f.write_str(\"{desc}\")\n\
             }}\n\
             fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
                 -> ::std::result::Result<Self::Value, __A::Error> {{\n\
                 {seq_body}\
                 ::std::result::Result::Ok({ctor_base}{ctor_suffix}({binders}))\n\
             }}\n\
         }}\n"
    )
}
