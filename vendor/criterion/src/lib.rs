//! A minimal, dependency-free stand-in for the `criterion` benchmark harness,
//! vendored so the workspace builds without network access.
//!
//! `bench_function` runs the closure through a short warm-up followed by a
//! fixed measurement loop and prints the mean wall-clock time. There is no
//! statistical analysis, plotting, or comparison against saved baselines.

use std::time::{Duration, Instant};

/// Prevent the optimizer from eliding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark registry/driver handed to each benchmark function.
pub struct Criterion {
    warmup_iters: u64,
    measure_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup_iters: 3,
            measure_iters: 10,
        }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            iters: self.warmup_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        bencher.iters = self.measure_iters;
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        let mean = bencher.elapsed / self.measure_iters.max(1) as u32;
        println!(
            "{name:<48} {mean:>12.3?}/iter ({} iters)",
            self.measure_iters
        );
        self
    }

    /// Compatibility no-op (the real API's config hook).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Group benchmark functions under a name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
