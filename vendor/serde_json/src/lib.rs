//! A minimal, dependency-free reimplementation of the `serde_json` surface
//! this workspace uses (`to_string`, `from_str`, `Result`), vendored so the
//! build works without network access.
//!
//! Serialization streams directly into a `String`; deserialization parses
//! into an owned [`Value`] tree and drives the serde data model from it.
//! Enums use the externally-tagged representation, matching real serde_json.

use std::fmt;

use serde::de::{self, Visitor};
use serde::ser;
use serde::{Deserialize, Serialize};

/// Error type shared by serialization and deserialization.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to a JSON string.
pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String> {
    let mut ser = Serializer { out: String::new() };
    value.serialize(&mut ser)?;
    Ok(ser.out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<'a, T: Deserialize<'a>>(s: &'a str) -> Result<T> {
    let value = parse(s)?;
    T::deserialize(value)
}

// ===========================================================================
// Serializer
// ===========================================================================

struct Serializer {
    out: String,
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// In-progress compound value: tracks element separation and the closer.
struct Compound<'a> {
    ser: &'a mut Serializer,
    first: bool,
    close: &'static str,
}

impl Compound<'_> {
    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.ser.out.push(',');
        }
    }
}

impl<'a> ser::Serializer for &'a mut Serializer {
    type Ok = ();
    type Error = Error;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<()> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<()> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i16(self, v: i16) -> Result<()> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i32(self, v: i32) -> Result<()> {
        self.serialize_i64(v as i64)
    }
    fn serialize_i64(self, v: i64) -> Result<()> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<()> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u16(self, v: u16) -> Result<()> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u32(self, v: u32) -> Result<()> {
        self.serialize_u64(v as u64)
    }
    fn serialize_u64(self, v: u64) -> Result<()> {
        self.out.push_str(&v.to_string());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<()> {
        self.serialize_f64(v as f64)
    }
    fn serialize_f64(self, v: f64) -> Result<()> {
        if v.is_finite() {
            let s = v.to_string();
            self.out.push_str(&s);
        } else {
            self.out.push_str("null");
        }
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<()> {
        let mut buf = [0u8; 4];
        self.serialize_str(v.encode_utf8(&mut buf))
    }
    fn serialize_str(self, v: &str) -> Result<()> {
        escape_into(&mut self.out, v);
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<()> {
        let mut seq = ser::Serializer::serialize_seq(self, Some(v.len()))?;
        for b in v {
            ser::SerializeSeq::serialize_element(&mut seq, b)?;
        }
        ser::SerializeSeq::end(seq)
    }
    fn serialize_none(self) -> Result<()> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<()> {
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<()> {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<()> {
        self.serialize_unit()
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<()> {
        self.serialize_str(variant)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<()> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<()> {
        self.out.push('{');
        escape_into(&mut self.out, variant);
        self.out.push(':');
        value.serialize(&mut *self)?;
        self.out.push('}');
        Ok(())
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'a>> {
        self.out.push('[');
        Ok(Compound {
            ser: self,
            first: true,
            close: "]",
        })
    }
    fn serialize_tuple(self, len: usize) -> Result<Compound<'a>> {
        ser::Serializer::serialize_seq(self, Some(len))
    }
    fn serialize_tuple_struct(self, _name: &'static str, len: usize) -> Result<Compound<'a>> {
        ser::Serializer::serialize_seq(self, Some(len))
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>> {
        self.out.push('{');
        escape_into(&mut self.out, variant);
        self.out.push_str(":[");
        Ok(Compound {
            ser: self,
            first: true,
            close: "]}",
        })
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<Compound<'a>> {
        self.out.push('{');
        Ok(Compound {
            ser: self,
            first: true,
            close: "}",
        })
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a>> {
        self.out.push('{');
        Ok(Compound {
            ser: self,
            first: true,
            close: "}",
        })
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>> {
        self.out.push('{');
        escape_into(&mut self.out, variant);
        self.out.push_str(":{");
        Ok(Compound {
            ser: self,
            first: true,
            close: "}}",
        })
    }
}

impl ser::SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        self.sep();
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<()> {
        self.ser.out.push_str(self.close);
        Ok(())
    }
}

impl ser::SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<()> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<()> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<()> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<()> {
        self.sep();
        // JSON object keys must be strings: serialize the key to a fresh
        // buffer and re-quote it when it is not already a string.
        let mut key_ser = Serializer { out: String::new() };
        key.serialize(&mut key_ser)?;
        if key_ser.out.starts_with('"') {
            self.ser.out.push_str(&key_ser.out);
        } else {
            escape_into(&mut self.ser.out, &key_ser.out);
        }
        Ok(())
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<()> {
        self.ser.out.push(':');
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<()> {
        self.ser.out.push_str(self.close);
        Ok(())
    }
}

impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<()> {
        self.sep();
        escape_into(&mut self.ser.out, key);
        self.ser.out.push(':');
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<()> {
        self.ser.out.push_str(self.close);
        Ok(())
    }
}

impl ser::SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<()> {
        ser::SerializeStruct::serialize_field(self, key, value)
    }
    fn end(self) -> Result<()> {
        ser::SerializeStruct::end(self)
    }
}

// ===========================================================================
// Parsing into a Value tree
// ===========================================================================

/// Owned JSON value (internal; only as rich as deserialization needs).
#[derive(Debug, Clone)]
enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(Error(format!("{} at byte {}", msg, self.pos)))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return self.err("recursion limit exceeded");
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    self.err("invalid literal")
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    self.err("invalid literal")
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    self.err("invalid literal")
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return self.err("expected `,` or `]`"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.value(depth + 1)?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(entries));
                        }
                        _ => return self.err("expected `,` or `}`"),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => self.err("unexpected character"),
            None => self.err("unexpected end of input"),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{0008}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{000c}');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return self.err("unpaired surrogate");
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return self.err("invalid low surrogate");
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return self.err("invalid unicode escape"),
                            }
                        }
                        _ => return self.err("invalid escape"),
                    }
                }
                Some(_) => return self.err("control character in string"),
                None => return self.err("unterminated string"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return self.err("truncated unicode escape");
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("invalid unicode escape".into()))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error("invalid unicode escape".into()))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if text.is_empty() || text == "-" {
            return self.err("invalid number");
        }
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

// ===========================================================================
// Deserializer over Value
// ===========================================================================

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

fn type_err(value: &Value, expected: &str) -> Error {
    Error(format!(
        "invalid type: expected {expected}, found {}",
        value.kind()
    ))
}

macro_rules! defer_to_any {
    ($($method:ident)*) => {
        $(
            fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
                self.deserialize_any(visitor)
            }
        )*
    };
}

impl<'de> de::Deserializer<'de> for Value {
    type Error = Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self {
            Value::Null => visitor.visit_unit(),
            Value::Bool(b) => visitor.visit_bool(b),
            Value::I64(v) => visitor.visit_i64(v),
            Value::U64(v) => visitor.visit_u64(v),
            Value::F64(v) => visitor.visit_f64(v),
            Value::Str(s) => visitor.visit_string(s),
            Value::Arr(items) => visitor.visit_seq(SeqDe {
                iter: items.into_iter(),
            }),
            Value::Obj(entries) => visitor.visit_map(MapDe {
                iter: entries.into_iter(),
                value: None,
            }),
        }
    }

    defer_to_any! {
        deserialize_bool
        deserialize_i8 deserialize_i16 deserialize_i32 deserialize_i64
        deserialize_u8 deserialize_u16 deserialize_u32 deserialize_u64
        deserialize_f32 deserialize_f64
        deserialize_char deserialize_str deserialize_string
        deserialize_bytes deserialize_byte_buf
        deserialize_seq deserialize_map
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self {
            Value::Null => visitor.visit_none(),
            other => visitor.visit_some(other),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self {
            Value::Null => visitor.visit_unit(),
            other => Err(type_err(&other, "null")),
        }
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        self.deserialize_unit(visitor)
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_tuple<V: Visitor<'de>>(self, _len: usize, visitor: V) -> Result<V::Value> {
        self.deserialize_any(visitor)
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value> {
        self.deserialize_any(visitor)
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        match self {
            Value::Obj(_) | Value::Arr(_) => self.deserialize_any(visitor),
            other => Err(type_err(&other, "object")),
        }
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        match self {
            Value::Str(variant) => visitor.visit_enum(EnumDe {
                variant,
                value: None,
            }),
            Value::Obj(mut entries) => {
                if entries.len() != 1 {
                    return Err(Error("expected an object with a single variant key".into()));
                }
                let (variant, value) = entries.pop().expect("len checked");
                visitor.visit_enum(EnumDe {
                    variant,
                    value: Some(value),
                })
            }
            other => Err(type_err(&other, "string or object")),
        }
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        match self {
            Value::Str(s) => visitor.visit_string(s),
            Value::I64(v) if v >= 0 => visitor.visit_u64(v as u64),
            Value::U64(v) => visitor.visit_u64(v),
            other => Err(type_err(&other, "identifier")),
        }
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value> {
        visitor.visit_unit()
    }
}

struct SeqDe {
    iter: std::vec::IntoIter<Value>,
}

impl<'de> de::SeqAccess<'de> for SeqDe {
    type Error = Error;
    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>> {
        match self.iter.next() {
            Some(value) => seed.deserialize(value).map(Some),
            None => Ok(None),
        }
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.iter.len())
    }
}

struct MapDe {
    iter: std::vec::IntoIter<(String, Value)>,
    value: Option<Value>,
}

impl<'de> de::MapAccess<'de> for MapDe {
    type Error = Error;
    fn next_key_seed<K: de::DeserializeSeed<'de>>(&mut self, seed: K) -> Result<Option<K::Value>> {
        match self.iter.next() {
            Some((key, value)) => {
                self.value = Some(value);
                seed.deserialize(Value::Str(key)).map(Some)
            }
            None => Ok(None),
        }
    }
    fn next_value_seed<V: de::DeserializeSeed<'de>>(&mut self, seed: V) -> Result<V::Value> {
        let value = self
            .value
            .take()
            .ok_or_else(|| Error("value missing".into()))?;
        seed.deserialize(value)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.iter.len())
    }
}

struct EnumDe {
    variant: String,
    value: Option<Value>,
}

impl<'de> de::EnumAccess<'de> for EnumDe {
    type Error = Error;
    type Variant = VariantDe;
    fn variant_seed<V: de::DeserializeSeed<'de>>(self, seed: V) -> Result<(V::Value, VariantDe)> {
        let tag = seed.deserialize(Value::Str(self.variant))?;
        Ok((tag, VariantDe { value: self.value }))
    }
}

struct VariantDe {
    value: Option<Value>,
}

impl<'de> de::VariantAccess<'de> for VariantDe {
    type Error = Error;
    fn unit_variant(self) -> Result<()> {
        match self.value {
            None | Some(Value::Null) => Ok(()),
            Some(other) => Err(type_err(&other, "unit variant")),
        }
    }
    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(self, seed: T) -> Result<T::Value> {
        match self.value {
            Some(value) => seed.deserialize(value),
            None => Err(Error("expected newtype variant payload".into())),
        }
    }
    fn tuple_variant<V: Visitor<'de>>(self, _len: usize, visitor: V) -> Result<V::Value> {
        match self.value {
            Some(Value::Arr(items)) => visitor.visit_seq(SeqDe {
                iter: items.into_iter(),
            }),
            Some(other) => Err(type_err(&other, "tuple variant (array)")),
            None => Err(Error("expected tuple variant payload".into())),
        }
    }
    fn struct_variant<V: Visitor<'de>>(
        self,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value> {
        match self.value {
            Some(Value::Obj(entries)) => visitor.visit_map(MapDe {
                iter: entries.into_iter(),
                value: None,
            }),
            Some(other) => Err(type_err(&other, "struct variant (object)")),
            None => Err(Error("expected struct variant payload".into())),
        }
    }
}
