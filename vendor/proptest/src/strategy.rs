//! The `Strategy` trait and the combinators this workspace's tests use.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the RNG stream.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O + Clone,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

// ---------------------------------------------------------------------------
// Map / Just / BoxedStrategy / Union
// ---------------------------------------------------------------------------

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O + Clone> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

trait DynStrategy<V> {
    fn dyn_new_value(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// Type-erased strategy (`Strategy::boxed`).
pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        self.0.dyn_new_value(rng)
    }
}

/// Weighted choice among strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms. Panics if empty or all-zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total > 0,
            "prop_oneof! requires at least one arm with weight > 0"
        );
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.next_u64() % self.total;
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.new_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum checked in Union::new")
    }
}

// ---------------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (start as i128 + v as i128) as $ty
                }
            }
        )*
    };
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Strategy for the full domain of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy for any value of `T` (`any::<u64>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> u16 {
        rng.next_u64() as u16
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        rng.next_u64() as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Bias half the stream toward ASCII so mutation-style tests exercise
        // realistic inputs, while still covering the whole scalar space.
        if rng.next_u64() & 1 == 0 {
            (0x20 + (rng.next_u64() % 0x5f)) as u8 as char
        } else {
            loop {
                let v = (rng.next_u64() % 0x11_0000) as u32;
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Tuples of strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// String patterns
// ---------------------------------------------------------------------------

/// `&'static str` acts as a regex-like pattern strategy. Only the subset the
/// workspace uses is understood: an optional char-class prefix (`\PC` — any
/// non-control character — or a literal prefix) followed by an optional
/// `{m,n}` repetition; anything else is repeated literally once.
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let (body, min, max) = match self.rfind('{') {
            Some(brace) if self.ends_with('}') => {
                let spec = &self[brace + 1..self.len() - 1];
                let parts: Vec<&str> = spec.splitn(2, ',').collect();
                match parts.as_slice() {
                    [m, n] => (
                        &self[..brace],
                        m.trim().parse::<usize>().unwrap_or(0),
                        n.trim().parse::<usize>().unwrap_or(0),
                    ),
                    [m] => {
                        let k = m.trim().parse::<usize>().unwrap_or(1);
                        (&self[..brace], k, k)
                    }
                    _ => (*self, 1, 1),
                }
            }
            _ => (*self, 1, 1),
        };
        let len = rng.usize_in(min, max);
        let mut out = String::new();
        if body == "\\PC" || body == "\\\\PC" {
            for _ in 0..len {
                loop {
                    let c = char::arbitrary(rng);
                    if !c.is_control() {
                        out.push(c);
                        break;
                    }
                }
            }
        } else {
            for _ in 0..len {
                out.push_str(body);
            }
        }
        out
    }
}
