//! Test-runner support types: configuration, case errors, and the
//! deterministic RNG that drives strategy sampling.

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of a single case body.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is discarded.
    Reject(&'static str),
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// Deterministic SplitMix64 generator seeding strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Seed from a raw value.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in `lo..=hi` (empty range yields `lo`).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }
}
