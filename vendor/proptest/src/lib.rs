//! A minimal, dependency-free stand-in for the `proptest` crate, vendored so
//! the workspace's property tests build and run without network access.
//!
//! Differences from real proptest, deliberately accepted:
//! - no shrinking: a failing case panics with the assertion message only;
//! - deterministic per-test seeding (derived from the test name) instead of
//!   OS entropy + regression files;
//! - only the strategy combinators these tests use are provided (ranges,
//!   `any`, `Just`, tuples, `prop_map`, `prop_oneof!`, `collection::btree_set`,
//!   `collection::vec`, and the `"\\PC{m,n}"` string pattern).

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`btree_set`, `vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy producing `BTreeSet`s of `elem` with size in `size`.
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generate a `BTreeSet` whose size is drawn from `size`.
    ///
    /// When the element domain is too small to reach the drawn size the set
    /// is returned at whatever size a bounded number of draws achieved.
    pub fn btree_set<S: Strategy>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.usize_in(self.size.start, self.size.end.saturating_sub(1));
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 10 + 16 {
                out.insert(self.elem.new_value(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Strategy producing `Vec`s of `elem` with length in `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generate a `Vec` whose length is drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.start, self.size.end.saturating_sub(1));
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(format!(
                            "assertion failed: `{:?}` == `{:?}`",
                            __l, __r
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(format!(
                            "assertion failed: `{:?}` == `{:?}`: {}",
                            __l, __r, format!($($fmt)+)
                        )),
                    );
                }
            }
        }
    };
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(format!(
                            "assertion failed: `{:?}` != `{:?}`",
                            __l, __r
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(format!(
                            "assertion failed: `{:?}` != `{:?}`: {}",
                            __l, __r, format!($($fmt)+)
                        )),
                    );
                }
            }
        }
    };
}

/// Discard the current case (counts as neither pass nor fail).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

/// Choose among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests. Each `arg in strategy` binding is sampled
/// `config.cases` times; the body runs once per sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut __rejects: u32 = 0;
                let mut __ran: u32 = 0;
                while __ran < __config.cases {
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $arg = $crate::strategy::Strategy::new_value(
                                    &($strat),
                                    &mut __rng,
                                );
                            )+
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __ran += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(__why),
                        ) => {
                            __rejects += 1;
                            if __rejects > __config.cases * 16 + 256 {
                                panic!("too many rejected cases ({__rejects}): {__why}");
                            }
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            panic!("{} (case {} of {})", __msg, __ran, __config.cases);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
