//! End-to-end tests of the cost-profile layer: span trees folded into
//! self-time/cost profiles, collapsed-stack flamegraph output, and the
//! determinism and accounting invariants the formats promise.

use crellvm::ir::parse_module;
use crellvm::passes::{run_pipeline_parallel, ParallelOptions, PassConfig, PipelineReport};
use crellvm::telemetry::{Profile, ProfileWeight, Registry, Telemetry};
use std::sync::Arc;
use std::time::Instant;

const PROGRAM: &str = r#"
    declare @print(i32)
    define @main(i32 %n) {
    entry:
      %p = alloca i32
      store i32 0, ptr %p
      br label loop
    loop:
      %i = phi i32 [ 0, entry ], [ %i2, loop ]
      %acc = load i32, ptr %p
      %inv = mul i32 %n, 4
      %t = add i32 %inv, 0
      %acc2 = add i32 %acc, %t
      store i32 %acc2, ptr %p
      %i2 = add i32 %i, 1
      %c = icmp slt i32 %i2, 5
      br i1 %c, label loop, label exit
    exit:
      %r = load i32, ptr %p
      call void @print(i32 %r)
      ret void
    }
    define @helper(i32 %a) {
    entry:
      %x = add i32 %a, 1
      %y = mul i32 %x, 2
      call void @print(i32 %y)
      ret void
    }
"#;

fn run(src: &str, jobs: usize) -> PipelineReport {
    let m = parse_module(src).expect("parse");
    let tel = Telemetry::with_registry(Arc::new(Registry::new()));
    let opts = ParallelOptions {
        jobs,
        spans: true,
        ..ParallelOptions::default()
    };
    let (_, report) = run_pipeline_parallel(&m, &PassConfig::default(), &opts, &tel);
    report
}

/// Cost-weighted profiles are the profile analogue of
/// `Snapshot::deterministic()`: byte-identical at any thread count.
#[test]
fn cost_profile_and_folded_output_are_byte_identical_across_jobs() {
    let at = |jobs: usize| {
        let profile = Profile::from_tree(&run(PROGRAM, jobs).span_tree("m"));
        (
            profile.folded(ProfileWeight::Cost),
            profile.top_table(ProfileWeight::Cost, 50),
        )
    };
    let (folded1, table1) = at(1);
    let (folded2, table2) = at(2);
    let (folded8, table8) = at(8);
    assert_eq!(folded1, folded2, "folded output differs at --jobs 1 vs 2");
    assert_eq!(folded1, folded8, "folded output differs at --jobs 1 vs 8");
    assert_eq!(table1, table2, "profile table differs at --jobs 1 vs 2");
    assert_eq!(table1, table8, "profile table differs at --jobs 1 vs 8");
}

/// Every folded line is valid collapsed-stack format: frames joined by
/// `;`, one space, an integer weight — and no frame smuggles a separator.
#[test]
fn folded_lines_are_valid_collapsed_stack_format() {
    let profile = Profile::from_tree(&run(PROGRAM, 2).span_tree("m"));
    for weight in [ProfileWeight::Time, ProfileWeight::Cost] {
        let folded = profile.folded(weight);
        assert!(!folded.is_empty(), "folded output is empty");
        for line in folded.lines() {
            let (stack, n) = line.rsplit_once(' ').expect("line has a weight column");
            assert!(!stack.is_empty(), "empty stack in {line:?}");
            n.parse::<u64>()
                .unwrap_or_else(|_| panic!("non-integer weight in {line:?}"));
            for frame in stack.split(';') {
                assert!(!frame.is_empty(), "empty frame in {line:?}");
                assert!(!frame.contains('\n'), "newline inside frame in {line:?}");
            }
        }
    }
    // The hierarchy reaches module;function;pass;phase;proof-command;rule.
    let folded = profile.folded(ProfileWeight::Cost);
    assert!(
        folded.lines().any(|l| {
            let stack = l.rsplit_once(' ').unwrap().0;
            stack.split(';').count() >= 6
        }),
        "no rule-depth stacks in folded output:\n{folded}"
    );
}

/// The accounting identity behind every flamegraph: the sum of the leaf
/// self-weights equals the root total, exactly, for both weight modes.
#[test]
fn folded_self_weights_sum_to_root_total() {
    let profile = Profile::from_tree(&run(PROGRAM, 4).span_tree("m"));
    for weight in [ProfileWeight::Time, ProfileWeight::Cost] {
        let sum: u64 = profile
            .folded(weight)
            .lines()
            .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
            .sum();
        assert_eq!(
            sum,
            profile.root_total(weight),
            "folded sum != root total for {weight:?}"
        );
    }
}

/// The time-weighted root total tracks wall time: over a serial run it
/// must account for the overwhelming share of the measured wall clock
/// (spans cover parse-to-verdict of every unit; only scheduling overhead
/// between items is unattributed).
#[test]
fn time_profile_root_total_tracks_wall_time() {
    let m = parse_module(PROGRAM).expect("parse");
    let tel = Telemetry::with_registry(Arc::new(Registry::new()));
    let opts = ParallelOptions {
        jobs: 1,
        spans: true,
        ..ParallelOptions::default()
    };
    // Warm up once so lazy one-time costs don't land inside the timed run.
    let _ = run_pipeline_parallel(&m, &PassConfig::default(), &opts, &tel);
    let t = Instant::now();
    let (_, report) = run_pipeline_parallel(&m, &PassConfig::default(), &opts, &tel);
    let wall_ns = t.elapsed().as_nanos() as u64;
    let profile = Profile::from_tree(&report.span_tree("m"));
    let total_ns = profile.root_total(ProfileWeight::Time);
    assert!(total_ns > 0, "no time recorded");
    assert!(
        total_ns <= wall_ns,
        "span total {total_ns}ns exceeds wall {wall_ns}ns"
    );
    let coverage = total_ns as f64 / wall_ns as f64;
    assert!(
        coverage > 0.5,
        "span total covers only {:.1}% of wall time ({total_ns}ns of {wall_ns}ns)",
        100.0 * coverage
    );
}

/// Intern statistics flow from the checker into the pcheck phase frames.
#[test]
fn profile_attributes_intern_stats_to_pcheck() {
    let profile = Profile::from_tree(&run(PROGRAM, 2).span_tree("m"));
    let pcheck: Vec<_> = profile
        .entries
        .iter()
        .filter(|e| e.cat == "phase" && e.stack.last().map(String::as_str) == Some("pcheck"))
        .collect();
    assert!(!pcheck.is_empty(), "no pcheck phase entries");
    let hits: u64 = pcheck.iter().map(|e| e.attr("intern_hits")).sum();
    let misses: u64 = pcheck.iter().map(|e| e.attr("intern_misses")).sum();
    assert!(
        hits + misses > 0,
        "no intern statistics attributed to pcheck"
    );
    // And the rendered table surfaces them.
    let table = profile.top_table(ProfileWeight::Cost, 100);
    assert!(
        table.contains("intern_hits="),
        "table lacks intern attribution:\n{table}"
    );
}

/// `--top` caps the table and says what it dropped.
#[test]
fn top_table_caps_and_reports_whats_hidden() {
    let profile = Profile::from_tree(&run(PROGRAM, 1).span_tree("m"));
    let capped = profile.top_table(ProfileWeight::Cost, 3);
    // Header plus three rows plus the elision footer.
    assert_eq!(capped.lines().count(), 5, "unexpected table:\n{capped}");
    assert!(
        capped.lines().last().unwrap().contains("more frames"),
        "missing elision footer:\n{capped}"
    );
}
