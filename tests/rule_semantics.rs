//! Property-based *semantic* testing of the inference rules — the
//! test-time substitute for the paper's Coq verification (§5, §I).
//!
//! For every rule family we generate random extended states, build an
//! assertion the states satisfy, apply the rule, and check that the
//! strengthened assertion still holds. The deliberately unsound PR33673
//! configuration is refuted the same way the paper's Coq proof attempt
//! refuted the original rule.

use crellvm::erhl::semantics::{eval_expr, eval_pred, lessdef_vals, ExtState, SemVal};
use crellvm::erhl::{
    apply_inf, rules_arith, ArithRule, Assertion, CheckerConfig, Expr, InfRule, Pred, Side, TReg,
    TValue,
};
use crellvm::ir::{BinOp, CastOp, Const, IcmpPred, RegId, Type};
use proptest::prelude::*;

fn reg(i: usize) -> RegId {
    RegId::from_index(i)
}

/// A random semantic value of a random integer type.
fn arb_semval() -> impl Strategy<Value = SemVal> {
    prop_oneof![
        3 => (any::<u64>(), 0usize..4).prop_map(|(bits, tix)| {
            let ty = [Type::I8, Type::I16, Type::I32, Type::I64][tix];
            SemVal::Int { ty, bits: ty.truncate(bits) }
        }),
        1 => Just(SemVal::Undef),
    ]
}

/// A random i32 semantic value (for typed arithmetic properties).
fn arb_i32() -> impl Strategy<Value = SemVal> {
    prop_oneof![
        4 => any::<u64>().prop_map(|b| SemVal::Int { ty: Type::I32, bits: Type::I32.truncate(b) }),
        1 => Just(SemVal::Undef),
    ]
}

fn v32(x: i64) -> TValue {
    TValue::int(Type::I32, x)
}

proptest! {
    /// Every entry of the verified identity table is semantically sound:
    /// `eval(from) ⊒ eval(to)` under every valuation.
    #[test]
    fn identity_table_is_sound(
        a in arb_i32(),
        b in arb_i32(),
        c1 in -20i64..20,
        c2 in -20i64..20,
        k in 0i64..6,
    ) {
        let mut st = ExtState::new();
        st.set(TReg::Phy(reg(0)), a);
        st.set(TReg::Phy(reg(1)), b);
        let ra = TValue::phy(reg(0));
        let rb = TValue::phy(reg(1));

        // Candidate (from, to) pairs spanning the table's families.
        let mk = |op: BinOp, x: &TValue, y: &TValue| Expr::bin(op, Type::I32, x.clone(), y.clone());
        let candidates: Vec<(Expr, Expr)> = vec![
            (mk(BinOp::Add, &ra, &v32(0)), Expr::Value(ra.clone())),
            (mk(BinOp::Add, &v32(0), &ra), Expr::Value(ra.clone())),
            (mk(BinOp::Sub, &ra, &v32(0)), Expr::Value(ra.clone())),
            (mk(BinOp::Sub, &ra, &ra), Expr::Value(v32(0))),
            (mk(BinOp::Mul, &ra, &v32(1)), Expr::Value(ra.clone())),
            (mk(BinOp::Mul, &ra, &v32(0)), Expr::Value(v32(0))),
            (mk(BinOp::And, &ra, &ra), Expr::Value(ra.clone())),
            (mk(BinOp::And, &ra, &v32(0)), Expr::Value(v32(0))),
            (mk(BinOp::And, &ra, &v32(-1)), Expr::Value(ra.clone())),
            (mk(BinOp::Or, &ra, &ra), Expr::Value(ra.clone())),
            (mk(BinOp::Or, &ra, &v32(0)), Expr::Value(ra.clone())),
            (mk(BinOp::Or, &ra, &v32(-1)), Expr::Value(v32(-1))),
            (mk(BinOp::Xor, &ra, &ra), Expr::Value(v32(0))),
            (mk(BinOp::Xor, &ra, &v32(0)), Expr::Value(ra.clone())),
            (mk(BinOp::Shl, &ra, &v32(0)), Expr::Value(ra.clone())),
            (mk(BinOp::Add, &ra, &rb), mk(BinOp::Add, &rb, &ra)),
            (mk(BinOp::Mul, &ra, &rb), mk(BinOp::Mul, &rb, &ra)),
            (mk(BinOp::Mul, &ra, &v32(1 << k)), mk(BinOp::Shl, &ra, &v32(k))),
            (mk(BinOp::Mul, &ra, &v32(-1)), mk(BinOp::Sub, &v32(0), &ra)),
            (mk(BinOp::Add, &ra, &ra), mk(BinOp::Shl, &ra, &v32(1))),
            (mk(BinOp::Add, &v32(c1), &v32(c2)), Expr::Value(v32((c1 as i32).wrapping_add(c2 as i32) as i64))),
            (
                Expr::Icmp { pred: IcmpPred::Eq, ty: Type::I32, a: ra.clone(), b: ra.clone() },
                Expr::Value(TValue::Const(Const::bool(true))),
            ),
            (
                Expr::Icmp { pred: IcmpPred::Slt, ty: Type::I32, a: ra.clone(), b: rb.clone() },
                Expr::Icmp { pred: IcmpPred::Sgt, ty: Type::I32, a: rb.clone(), b: ra.clone() },
            ),
            (
                Expr::Select { ty: Type::I32, cond: TValue::Const(Const::bool(true)), t: ra.clone(), f: rb.clone() },
                Expr::Value(ra.clone()),
            ),
            (
                Expr::Select { ty: Type::I32, cond: rb.clone(), t: ra.clone(), f: ra.clone() },
                Expr::Value(ra.clone()),
            ),
        ];
        for (from, to) in candidates {
            if !rules_arith::identity_holds(&from, &to) {
                continue; // not claimed (e.g. 1<<k not a valid shift form)
            }
            let (vf, vt) = (eval_expr(&from, &st), eval_expr(&to, &st));
            if let (Some(vf), Some(vt)) = (vf, vt) {
                prop_assert!(
                    lessdef_vals(vf, vt),
                    "identity {from} -> {to} violated: {vf:?} vs {vt:?} (a={a:?}, b={b:?})"
                );
            }
        }
    }

    /// The table rejects bogus identities (sampled negatives).
    #[test]
    fn identity_table_rejects_wrong_constants(c in 1i64..50, d in 1i64..50) {
        prop_assume!(c != d);
        let ra = TValue::phy(reg(0));
        let from = Expr::bin(BinOp::Add, Type::I32, ra.clone(), v32(c));
        // Claiming add c is the identity (or folds to a wrong constant).
        prop_assert!(!rules_arith::identity_holds(&from, &Expr::Value(ra.clone())));
        let from2 = Expr::bin(BinOp::Add, Type::I32, v32(c), v32(d));
        prop_assert!(!rules_arith::identity_holds(
            &from2,
            &Expr::Value(v32((c as i32).wrapping_add(d as i32) as i64 + 1))
        ));
    }

    /// assoc_add (the paper's §2 rule): if the premises hold semantically,
    /// so does the conclusion.
    #[test]
    fn assoc_add_is_sound(a in arb_i32(), c1 in -100i64..100, c2 in -100i64..100) {
        let mut st = ExtState::new();
        st.set(TReg::Phy(reg(0)), a); // a
        let inner = Expr::bin(BinOp::Add, Type::I32, TValue::phy(reg(0)), v32(c1));
        let x = eval_expr(&inner, &st).unwrap();
        st.set(TReg::Phy(reg(1)), x); // x := add a c1
        let outer = Expr::bin(BinOp::Add, Type::I32, TValue::phy(reg(1)), v32(c2));
        let y = eval_expr(&outer, &st).unwrap();
        st.set(TReg::Phy(reg(2)), y); // y := add x c2

        let mut q = Assertion::new();
        q.src.insert_lessdef(Expr::Value(TValue::phy(reg(1))), inner);
        q.src.insert_lessdef(Expr::Value(TValue::phy(reg(2))), outer);
        let rule = InfRule::Arith(ArithRule::AddAssoc {
            side: Side::Src,
            op: BinOp::Add,
            ty: Type::I32,
            x: TValue::phy(reg(1)),
            y: TValue::phy(reg(2)),
            a: TValue::phy(reg(0)),
            c1: Const::int(Type::I32, c1),
            c2: Const::int(Type::I32, c2),
        });
        let q2 = apply_inf(&rule, &q, &CheckerConfig::sound()).unwrap();
        // Every source predicate of the strengthened assertion holds.
        for p in q2.src.iter() {
            prop_assert_ne!(eval_pred(&p, &st), Some(false), "violated: {}", p);
        }
    }

    /// Substitution: from `v ⊒ m`, `e ⊒ e[v↦m]` holds semantically.
    #[test]
    fn substitute_is_sound(a in arb_semval(), op_ix in 0usize..13, c in -50i64..50) {
        let ops = BinOp::all();
        let op = ops[op_ix];
        let mut st = ExtState::new();
        st.set(TReg::Phy(reg(0)), a);
        // m := copy of a (or, when a is undef, any value refines).
        let m = match a {
            SemVal::Undef => SemVal::int(Type::I32, c),
            other => other,
        };
        st.set(TReg::Ghost("m".into()), m);
        // Premise v ⊒ m holds by construction.
        let prem = Pred::Lessdef(
            Expr::value(TValue::phy(reg(0))),
            Expr::value(TValue::ghost("m")),
        );
        prop_assume!(eval_pred(&prem, &st) == Some(true));

        let e = Expr::bin(op, Type::I32, TValue::phy(reg(0)), v32(c));
        let mut q = Assertion::new();
        q.src.insert(prem);
        let rule = InfRule::Substitute {
            side: Side::Src,
            from: TValue::phy(reg(0)),
            to: TValue::ghost("m"),
            e: e.clone(),
        };
        let q2 = apply_inf(&rule, &q, &CheckerConfig::sound()).unwrap();
        for p in q2.src.iter() {
            prop_assert_ne!(eval_pred(&p, &st), Some(false), "violated: {}", p);
        }
    }

    /// icmp_to_eq: when the comparison is (semantically) true, the derived
    /// equalities hold.
    #[test]
    fn icmp_to_eq_is_sound(x in any::<u32>()) {
        let mut st = ExtState::new();
        st.set(TReg::Phy(reg(0)), SemVal::Int { ty: Type::I32, bits: x as u64 });
        st.set(TReg::Phy(reg(1)), SemVal::int(Type::I1, 1));
        let cmp = Expr::Icmp {
            pred: IcmpPred::Eq,
            ty: Type::I32,
            a: TValue::phy(reg(0)),
            b: TValue::int(Type::I32, x as i64),
        };
        // c := icmp eq x X, and the premise true ⊒ cmp.
        let mut q = Assertion::new();
        q.src.insert_lessdef(Expr::Value(TValue::Const(Const::bool(true))), cmp);
        let rule = InfRule::IcmpToEq {
            side: Side::Src,
            flag: true,
            ty: Type::I32,
            a: TValue::phy(reg(0)),
            b: TValue::int(Type::I32, x as i64),
        };
        let q2 = apply_inf(&rule, &q, &CheckerConfig::sound()).unwrap();
        for p in q2.src.iter() {
            prop_assert_ne!(eval_pred(&p, &st), Some(false), "violated: {}", p);
        }
    }

    /// Transitivity over random chains.
    #[test]
    fn transitivity_is_sound(a in arb_semval(), undef_mid in any::<bool>()) {
        let mut st = ExtState::new();
        // r0 ⊒ r1 ⊒ r2 by construction: either all equal, or prefix undef.
        let (v0, v1, v2) = if undef_mid {
            (SemVal::Undef, SemVal::Undef, a)
        } else {
            (a, a, a)
        };
        st.set(TReg::Phy(reg(0)), v0);
        st.set(TReg::Phy(reg(1)), v1);
        st.set(TReg::Phy(reg(2)), v2);
        let e = |i: usize| Expr::value(TValue::phy(reg(i)));
        let mut q = Assertion::new();
        q.src.insert_lessdef(e(0), e(1));
        q.src.insert_lessdef(e(1), e(2));
        prop_assume!(q.src.iter().all(|p| eval_pred(&p, &st) == Some(true)));
        let rule = InfRule::Transitivity { side: Side::Src, e1: e(0), e2: e(1), e3: e(2) };
        let q2 = apply_inf(&rule, &q, &CheckerConfig::sound()).unwrap();
        for p in q2.src.iter() {
            prop_assert_ne!(eval_pred(&p, &st), Some(false), "violated: {}", p);
        }
    }

    /// Cast compositions are semantically sound.
    #[test]
    fn cast_composition_is_sound(bits in any::<u64>()) {
        let mut st = ExtState::new();
        st.set(TReg::Phy(reg(0)), SemVal::Int { ty: Type::I8, bits: Type::I8.truncate(bits) });
        let a = TValue::phy(reg(0));
        for (op1, ty0, ty1, op2, ty2) in [
            (CastOp::Zext, Type::I8, Type::I16, CastOp::Zext, Type::I32),
            (CastOp::Sext, Type::I8, Type::I32, CastOp::Sext, Type::I64),
            (CastOp::Zext, Type::I8, Type::I32, CastOp::Trunc, Type::I8),
            (CastOp::Zext, Type::I8, Type::I64, CastOp::Trunc, Type::I16),
        ] {
            let Some(composed) = rules_arith::compose_casts(op1, ty0, ty1, op2, ty2, &a) else {
                continue;
            };
            let two_step = {
                let inner = Expr::Cast { op: op1, from: ty0, a: a.clone(), to: ty1 };
                let mid = eval_expr(&inner, &st).unwrap();
                let mut st2 = st.clone();
                st2.set(TReg::Phy(reg(1)), mid);
                eval_expr(
                    &Expr::Cast { op: op2, from: ty1, a: TValue::phy(reg(1)), to: ty2 },
                    &st2,
                )
                .unwrap()
            };
            let one_step = eval_expr(&composed, &st).unwrap();
            prop_assert!(lessdef_vals(two_step, one_step), "{op1:?}+{op2:?}: {two_step:?} vs {one_step:?}");
        }
    }
}

/// The paper's PR33673 discovery, replayed: under the *unsound*
/// configuration the checker accepts the buggy translation, but executing
/// both programs refutes refinement — the "rule" is semantically wrong.
#[test]
fn unsound_constexpr_rule_is_refuted_semantically() {
    use crellvm::erhl::validate_with_config;
    use crellvm::interp::{check_refinement, run_main, End, RunConfig};
    use crellvm::ir::parse_module;
    use crellvm::passes::{mem2reg, BugSet, PassConfig};

    let m = parse_module(
        r#"
        global @G : i32[1]
        declare @foo(i32)
        define @main() {
        entry:
          %p = alloca i32
          br i1 -1, label uses, label stores
        uses:
          %r = load i32, ptr %p
          call void @foo(i32 %r)
          ret void
        stores:
          store i32 sdiv(i32 1, sub(i32 ptrtoint(@G to i32), ptrtoint(@G to i32))), ptr %p
          ret void
        }
        "#,
    )
    .unwrap();
    let config = PassConfig::with_bugs(BugSet {
        pr33673: true,
        ..BugSet::default()
    });
    let out = mem2reg(&m, &config);

    // The sound checker rejects the translation…
    assert!(out
        .proofs
        .iter()
        .any(|u| crellvm::erhl::validate(u).is_err()));
    // …the checker with the unsound rule accepts it…
    let trusting = CheckerConfig::with_unsound_constexpr_rule();
    for unit in &out.proofs {
        assert!(
            validate_with_config(unit, &trusting).is_ok(),
            "the unsound configuration believes the proof"
        );
    }
    // …and the semantics refutes the combination: the target traps where
    // the source returns normally.
    let rc = RunConfig::default();
    let src_run = run_main(&m, &rc);
    let tgt_run = run_main(&out.module, &rc);
    assert_eq!(src_run.end, End::Ret(None));
    assert!(matches!(tgt_run.end, End::Ub(_)));
    assert!(check_refinement(&src_run, &tgt_run).is_err());
}

/// Semantic soundness of the composite rule conclusions, tested by direct
/// evaluation: construct states satisfying the premises and check each
/// conclusion expression.
mod composite_soundness {
    use super::*;
    use crellvm::erhl::CompositeRule;

    fn st2(a: SemVal, b: SemVal) -> ExtState {
        let mut st = ExtState::new();
        st.set(TReg::Phy(reg(0)), a);
        st.set(TReg::Phy(reg(1)), b);
        st
    }

    /// Evaluate `e` after binding intermediates by evaluating their
    /// defining expressions; check `y ⊒ conclusion`.
    fn check(
        st: &mut ExtState,
        defs: &[(usize, Expr)],
        y_def: Expr,
        rule: CompositeRule,
    ) -> Result<(), String> {
        for (r, e) in defs {
            let v = eval_expr(e, st).ok_or("premise traps")?;
            st.set(TReg::Phy(reg(*r)), v);
        }
        let yv = eval_expr(&y_def, st).ok_or("y traps")?;
        let y = 9usize;
        st.set(TReg::Phy(reg(y)), yv);

        let mut q = Assertion::new();
        for (r, e) in defs {
            q.src
                .insert_lessdef(Expr::value(TValue::phy(reg(*r))), e.clone());
        }
        q.src
            .insert_lessdef(Expr::value(TValue::phy(reg(y))), y_def);
        let q2 = apply_inf(
            &InfRule::Arith(ArithRule::Composite(rule)),
            &q,
            &CheckerConfig::sound(),
        )
        .map_err(|e| e.to_string())?;
        for p in q2.src.iter() {
            if eval_pred(&p, st) == Some(false) {
                return Err(format!("violated: {p}"));
            }
        }
        Ok(())
    }

    proptest! {
        #[test]
        fn sub_or_xor_sound(a in arb_i32(), b in arb_i32()) {
            let mut st = st2(a, b);
            let (ra, rb) = (TValue::phy(reg(0)), TValue::phy(reg(1)));
            let defs = [
                (2, Expr::bin(BinOp::Or, Type::I32, ra.clone(), rb.clone())),
                (3, Expr::bin(BinOp::Xor, Type::I32, ra.clone(), rb.clone())),
            ];
            let ydef = Expr::bin(BinOp::Sub, Type::I32, TValue::phy(reg(2)), TValue::phy(reg(3)));
            let rule = CompositeRule::SubOrXor {
                side: Side::Src, ty: Type::I32,
                t1: TValue::phy(reg(2)), t2: TValue::phy(reg(3)), y: TValue::phy(reg(9)),
                a: ra, b: rb,
            };
            prop_assert!(check(&mut st, &defs, ydef, rule).is_ok());
        }

        #[test]
        fn add_xor_and_and_or_sound(a in arb_i32(), b in arb_i32(), which in any::<bool>()) {
            let mut st = st2(a, b);
            let (ra, rb) = (TValue::phy(reg(0)), TValue::phy(reg(1)));
            let inner_op = if which { BinOp::Xor } else { BinOp::Or };
            let defs = [
                (2, Expr::bin(inner_op, Type::I32, ra.clone(), rb.clone())),
                (3, Expr::bin(BinOp::And, Type::I32, ra.clone(), rb.clone())),
            ];
            let ydef = Expr::bin(BinOp::Add, Type::I32, TValue::phy(reg(2)), TValue::phy(reg(3)));
            let rule = if which {
                CompositeRule::AddXorAnd {
                    side: Side::Src, ty: Type::I32,
                    t1: TValue::phy(reg(2)), t2: TValue::phy(reg(3)), y: TValue::phy(reg(9)),
                    a: ra, b: rb,
                }
            } else {
                CompositeRule::AddOrAnd {
                    side: Side::Src, ty: Type::I32,
                    t1: TValue::phy(reg(2)), t2: TValue::phy(reg(3)), y: TValue::phy(reg(9)),
                    a: ra, b: rb,
                }
            };
            prop_assert!(check(&mut st, &defs, ydef, rule).is_ok());
        }

        #[test]
        fn absorption_sound(a in arb_i32(), b in arb_i32(), which in any::<bool>()) {
            let mut st = st2(a, b);
            let (ra, rb) = (TValue::phy(reg(0)), TValue::phy(reg(1)));
            let inner_op = if which { BinOp::Or } else { BinOp::And };
            let outer_op = if which { BinOp::And } else { BinOp::Or };
            let defs = [(2, Expr::bin(inner_op, Type::I32, ra.clone(), rb.clone()))];
            let ydef = Expr::bin(outer_op, Type::I32, ra.clone(), TValue::phy(reg(2)));
            let rule = if which {
                CompositeRule::AndOrAbsorb {
                    side: Side::Src, ty: Type::I32,
                    t: TValue::phy(reg(2)), y: TValue::phy(reg(9)), a: ra, b: rb,
                }
            } else {
                CompositeRule::OrAndAbsorb {
                    side: Side::Src, ty: Type::I32,
                    t: TValue::phy(reg(2)), y: TValue::phy(reg(9)), a: ra, b: rb,
                }
            };
            prop_assert!(check(&mut st, &defs, ydef, rule).is_ok());
        }

        #[test]
        fn const_not_rules_sound(a in arb_i32(), c in -100i64..100) {
            let mut st = st2(a, SemVal::Undef);
            let ra = TValue::phy(reg(0));
            let not = Expr::bin(BinOp::Xor, Type::I32, ra.clone(), v32(-1));
            // add-const-not.
            let defs = [(2, not.clone())];
            let ydef = Expr::bin(BinOp::Add, Type::I32, TValue::phy(reg(2)), v32(c));
            let rule = CompositeRule::AddConstNot {
                side: Side::Src, ty: Type::I32,
                t: TValue::phy(reg(2)), y: TValue::phy(reg(9)), a: ra.clone(),
                c: Const::int(Type::I32, c),
            };
            prop_assert!(check(&mut st, &defs, ydef, rule).is_ok());
            // sub-const-not.
            let mut st = st2(a, SemVal::Undef);
            let defs = [(2, not)];
            let ydef = Expr::bin(BinOp::Sub, Type::I32, v32(c), TValue::phy(reg(2)));
            let rule = CompositeRule::SubConstNot {
                side: Side::Src, ty: Type::I32,
                t: TValue::phy(reg(2)), y: TValue::phy(reg(9)), a: ra,
                c: Const::int(Type::I32, c),
            };
            prop_assert!(check(&mut st, &defs, ydef, rule).is_ok());
        }

        #[test]
        fn mul_neg_sound(a in arb_i32(), b in arb_i32()) {
            let mut st = st2(a, b);
            let (ra, rb) = (TValue::phy(reg(0)), TValue::phy(reg(1)));
            let defs = [
                (2, Expr::bin(BinOp::Sub, Type::I32, v32(0), ra.clone())),
                (3, Expr::bin(BinOp::Sub, Type::I32, v32(0), rb.clone())),
            ];
            let ydef = Expr::bin(BinOp::Mul, Type::I32, TValue::phy(reg(2)), TValue::phy(reg(3)));
            let rule = CompositeRule::MulNeg {
                side: Side::Src, ty: Type::I32,
                t1: TValue::phy(reg(2)), t2: TValue::phy(reg(3)), y: TValue::phy(reg(9)),
                a: ra, b: rb,
            };
            prop_assert!(check(&mut st, &defs, ydef, rule).is_ok());
        }

        #[test]
        fn icmp_families_sound(a in arb_i32(), b in arb_i32(), c in -50i64..50, ne in any::<bool>()) {
            // icmp-eq-sub.
            let mut st = st2(a, b);
            let (ra, rb) = (TValue::phy(reg(0)), TValue::phy(reg(1)));
            let pred = if ne { IcmpPred::Ne } else { IcmpPred::Eq };
            let defs = [(2, Expr::bin(BinOp::Sub, Type::I32, ra.clone(), rb.clone()))];
            let ydef = Expr::Icmp { pred, ty: Type::I32, a: TValue::phy(reg(2)), b: v32(0) };
            let rule = CompositeRule::IcmpEqSub {
                side: Side::Src, ty: Type::I32,
                t: TValue::phy(reg(2)), y: TValue::phy(reg(9)), a: ra.clone(), b: rb.clone(), ne,
            };
            prop_assert!(check(&mut st, &defs, ydef, rule).is_ok());
            // icmp-eq-add-add.
            let mut st = st2(a, b);
            let defs = [
                (2, Expr::bin(BinOp::Add, Type::I32, ra.clone(), v32(c))),
                (3, Expr::bin(BinOp::Add, Type::I32, rb.clone(), v32(c))),
            ];
            let ydef = Expr::Icmp { pred, ty: Type::I32, a: TValue::phy(reg(2)), b: TValue::phy(reg(3)) };
            let rule = CompositeRule::IcmpEqAddAdd {
                side: Side::Src, ty: Type::I32,
                t1: TValue::phy(reg(2)), t2: TValue::phy(reg(3)), y: TValue::phy(reg(9)),
                a: ra, b: rb, c: v32(c), ne,
            };
            prop_assert!(check(&mut st, &defs, ydef, rule).is_ok());
        }

        #[test]
        fn select_icmp_sound(a in arb_i32(), b in arb_i32(), ne in any::<bool>()) {
            let mut st = st2(a, b);
            let (ra, rb) = (TValue::phy(reg(0)), TValue::phy(reg(1)));
            let pred = if ne { IcmpPred::Ne } else { IcmpPred::Eq };
            let defs = [(2, Expr::Icmp { pred, ty: Type::I32, a: ra.clone(), b: rb.clone() })];
            let ydef = Expr::Select { ty: Type::I32, cond: TValue::phy(reg(2)), t: ra.clone(), f: rb.clone() };
            let rule = CompositeRule::SelectIcmpEq {
                side: Side::Src, ty: Type::I32,
                c: TValue::phy(reg(2)), y: TValue::phy(reg(9)), a: ra, b: rb, ne,
            };
            prop_assert!(check(&mut st, &defs, ydef, rule).is_ok());
        }

        #[test]
        fn zext_trunc_and_sound(bits in any::<u64>()) {
            let mut st = ExtState::new();
            st.set(TReg::Phy(reg(0)), SemVal::Int { ty: Type::I64, bits });
            let ra = TValue::phy(reg(0));
            let defs = [(2, Expr::Cast { op: crellvm::ir::CastOp::Trunc, from: Type::I64, a: ra.clone(), to: Type::I8 })];
            let ydef = Expr::Cast { op: crellvm::ir::CastOp::Zext, from: Type::I8, a: TValue::phy(reg(2)), to: Type::I64 };
            let rule = CompositeRule::ZextTruncAnd {
                side: Side::Src, big: Type::I64, small: Type::I8,
                t: TValue::phy(reg(2)), y: TValue::phy(reg(9)), a: ra,
            };
            prop_assert!(check(&mut st, &defs, ydef, rule).is_ok());
        }

        #[test]
        fn shl_shl_sound(a in arb_i32(), c1 in 0i64..16, c2 in 0i64..15) {
            prop_assume!(c1 + c2 < 32);
            let mut st = st2(a, SemVal::Undef);
            let ra = TValue::phy(reg(0));
            let defs = [(2, Expr::bin(BinOp::Shl, Type::I32, ra.clone(), v32(c1)))];
            let ydef = Expr::bin(BinOp::Shl, Type::I32, TValue::phy(reg(2)), v32(c2));
            let rule = CompositeRule::ShlShl {
                side: Side::Src, ty: Type::I32,
                t: TValue::phy(reg(2)), y: TValue::phy(reg(9)), a: ra,
                c1: Const::int(Type::I32, c1), c2: Const::int(Type::I32, c2),
            };
            prop_assert!(check(&mut st, &defs, ydef, rule).is_ok());
        }
    }
}

/// Soundness of the strong post-assertion computation (`CalcPostAssn`,
/// the largest trusted component): execute a random pure statement pair
/// on states satisfying a pre-assertion, and check the computed
/// post-assertion against the post-states.
mod postcond_soundness {
    use super::*;
    use crellvm::erhl::calc_post_cmd;
    use crellvm::ir::{Inst, Stmt, Value};

    fn arb_op() -> impl Strategy<Value = BinOp> {
        // Trap-free operators only (the semantics of division is covered
        // by the equivalence checks, not the post calculus).
        prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
            Just(BinOp::And),
            Just(BinOp::Or),
            Just(BinOp::Xor),
        ]
    }

    proptest! {
        #[test]
        fn identical_pure_rows_preserve_assertions(
            a in arb_i32(),
            b in arb_i32(),
            op in arb_op(),
            use_const in any::<bool>(),
            c in -50i64..50,
        ) {
            // Pre-states: r0, r1 equal across sides (not in maydiff).
            let mut src = ExtState::new();
            src.set(TReg::Phy(reg(0)), a);
            src.set(TReg::Phy(reg(1)), b);
            let tgt = src.clone();

            // The executed row: r2 := op r0, (r1 | c) on both sides.
            let rhs = if use_const { Value::int(Type::I32, c) } else { Value::Reg(reg(1)) };
            let stmt = Stmt {
                result: Some(reg(2)),
                inst: Inst::Bin { op, ty: Type::I32, lhs: Value::Reg(reg(0)), rhs },
            };

            // Pre-assertion: empty (the states trivially satisfy it).
            let pre = Assertion::new();
            let post = calc_post_cmd(&pre, Some(&stmt), Some(&stmt));

            // Execute semantically on both sides.
            let e = Expr::of_inst(&stmt.inst).unwrap();
            let (mut src2, mut tgt2) = (src.clone(), tgt.clone());
            if let Some(v) = eval_expr(&e, &src) {
                src2.set(TReg::Phy(reg(2)), v);
            } else {
                return Ok(()); // trapping path not modelled here
            }
            if let Some(v) = eval_expr(&e, &tgt) {
                tgt2.set(TReg::Phy(reg(2)), v);
            }

            // The computed post-assertion must hold in the post-states.
            use crellvm::erhl::semantics::eval_assertion;
            prop_assert_ne!(
                eval_assertion(&post, &src2, &tgt2),
                Some(false),
                "post-assertion violated: {}",
                post
            );
            // And the result register must be OUT of the maydiff set
            // (identical instructions with injected operands).
            prop_assert!(!post.in_maydiff(&TReg::Phy(reg(2))));
        }

        #[test]
        fn differing_rows_put_result_in_maydiff(
            a in arb_i32(),
            op in arb_op(),
            c1 in -50i64..50,
            c2 in -50i64..50,
        ) {
            prop_assume!(c1 != c2);
            let mut src = ExtState::new();
            src.set(TReg::Phy(reg(0)), a);
            let tgt = src.clone();
            let s = Stmt {
                result: Some(reg(2)),
                inst: Inst::Bin { op, ty: Type::I32, lhs: Value::Reg(reg(0)), rhs: Value::int(Type::I32, c1) },
            };
            let t = Stmt {
                result: Some(reg(2)),
                inst: Inst::Bin { op, ty: Type::I32, lhs: Value::Reg(reg(0)), rhs: Value::int(Type::I32, c2) },
            };
            let post = calc_post_cmd(&Assertion::new(), Some(&s), Some(&t));
            prop_assert!(post.in_maydiff(&TReg::Phy(reg(2))));

            // Semantically: the post-states (which may disagree on r2)
            // satisfy the post-assertion.
            let (mut src2, mut tgt2) = (src.clone(), tgt.clone());
            if let (Some(vs), Some(vt)) = (
                eval_expr(&Expr::of_inst(&s.inst).unwrap(), &src),
                eval_expr(&Expr::of_inst(&t.inst).unwrap(), &tgt),
            ) {
                src2.set(TReg::Phy(reg(2)), vs);
                tgt2.set(TReg::Phy(reg(2)), vt);
                use crellvm::erhl::semantics::eval_assertion;
                prop_assert_ne!(eval_assertion(&post, &src2, &tgt2), Some(false));
            }
        }

        #[test]
        fn definition_kills_stale_facts_semantically(
            a in arb_i32(),
            newval in arb_i32(),
        ) {
            // Pre: r2 ⊒ r0 holds (r2 bound to r0's value). Then r2 is
            // redefined: the stale fact must be gone from the post.
            let mut src = ExtState::new();
            src.set(TReg::Phy(reg(0)), a);
            src.set(TReg::Phy(reg(2)), a);
            let mut pre = Assertion::new();
            pre.src.insert_lessdef(
                Expr::value(TValue::phy(reg(2))),
                Expr::value(TValue::phy(reg(0))),
            );
            let stmt = Stmt {
                result: Some(reg(2)),
                inst: Inst::Bin {
                    op: BinOp::Xor,
                    ty: Type::I32,
                    lhs: Value::Reg(reg(1)),
                    rhs: Value::Reg(reg(1)),
                },
            };
            let post = calc_post_cmd(&pre, Some(&stmt), Some(&stmt));
            let stale = Pred::Lessdef(
                Expr::value(TValue::phy(reg(2))),
                Expr::value(TValue::phy(reg(0))),
            );
            prop_assert!(!post.src.holds(&stale) || a == SemVal::int(Type::I32, 0));
            let _ = newval;
        }
    }
}

/// Soundness of the late-added composites and identities.
mod composite_soundness2 {
    use super::*;
    use crellvm::erhl::CompositeRule;

    proptest! {
        #[test]
        fn or_xor_and_sub_sub_sound(a in arb_i32(), b in arb_i32()) {
            // or-xor: (a^b)|b ⊒ a|b.
            let mut st = ExtState::new();
            st.set(TReg::Phy(reg(0)), a);
            st.set(TReg::Phy(reg(1)), b);
            let (ra, rb) = (TValue::phy(reg(0)), TValue::phy(reg(1)));
            let xor = Expr::bin(BinOp::Xor, Type::I32, ra.clone(), rb.clone());
            if let Some(t) = eval_expr(&xor, &st) {
                st.set(TReg::Phy(reg(2)), t);
                let outer = Expr::bin(BinOp::Or, Type::I32, TValue::phy(reg(2)), rb.clone());
                if let Some(y) = eval_expr(&outer, &st) {
                    st.set(TReg::Phy(reg(9)), y);
                    let mut q = Assertion::new();
                    q.src.insert_lessdef(Expr::value(TValue::phy(reg(2))), xor.clone());
                    q.src.insert_lessdef(Expr::value(TValue::phy(reg(9))), outer);
                    let rule = InfRule::Arith(ArithRule::Composite(CompositeRule::OrXor {
                        side: Side::Src, ty: Type::I32,
                        t: TValue::phy(reg(2)), y: TValue::phy(reg(9)), a: ra.clone(), b: rb.clone(),
                    }));
                    let q2 = apply_inf(&rule, &q, &CheckerConfig::sound()).unwrap();
                    for p in q2.src.iter() {
                        prop_assert_ne!(eval_pred(&p, &st), Some(false), "violated: {}", p);
                    }
                }
            }
            // sub-sub: a - (a - b) ⊒ b.
            let mut st = ExtState::new();
            st.set(TReg::Phy(reg(0)), a);
            st.set(TReg::Phy(reg(1)), b);
            let diff = Expr::bin(BinOp::Sub, Type::I32, ra.clone(), rb.clone());
            if let Some(t) = eval_expr(&diff, &st) {
                st.set(TReg::Phy(reg(2)), t);
                let outer = Expr::bin(BinOp::Sub, Type::I32, ra.clone(), TValue::phy(reg(2)));
                if let Some(y) = eval_expr(&outer, &st) {
                    st.set(TReg::Phy(reg(9)), y);
                    let mut q = Assertion::new();
                    q.src.insert_lessdef(Expr::value(TValue::phy(reg(2))), diff);
                    q.src.insert_lessdef(Expr::value(TValue::phy(reg(9))), outer);
                    let rule = InfRule::Arith(ArithRule::Composite(CompositeRule::SubSub {
                        side: Side::Src, ty: Type::I32,
                        t: TValue::phy(reg(2)), y: TValue::phy(reg(9)), a: ra, b: rb,
                    }));
                    let q2 = apply_inf(&rule, &q, &CheckerConfig::sound()).unwrap();
                    for p in q2.src.iter() {
                        prop_assert_ne!(eval_pred(&p, &st), Some(false), "violated: {}", p);
                    }
                }
            }
        }

        #[test]
        fn signbit_and_mone_identities_sound(a in arb_i32()) {
            let mut st = ExtState::new();
            st.set(TReg::Phy(reg(0)), a);
            let ra = TValue::phy(reg(0));
            let signbit = v32(i32::MIN as i64);
            let pairs = [
                (
                    Expr::bin(BinOp::Add, Type::I32, ra.clone(), signbit.clone()),
                    Expr::bin(BinOp::Xor, Type::I32, ra.clone(), signbit),
                ),
                (
                    Expr::bin(BinOp::Sub, Type::I32, v32(-1), ra.clone()),
                    Expr::bin(BinOp::Xor, Type::I32, ra.clone(), v32(-1)),
                ),
                (
                    Expr::bin(BinOp::SDiv, Type::I32, ra.clone(), v32(-1)),
                    Expr::bin(BinOp::Sub, Type::I32, v32(0), ra.clone()),
                ),
                (
                    Expr::bin(BinOp::UDiv, Type::I32, ra.clone(), v32(8)),
                    Expr::bin(BinOp::LShr, Type::I32, ra.clone(), v32(3)),
                ),
            ];
            for (from, to) in pairs {
                prop_assert!(rules_arith::identity_holds(&from, &to), "{from} -> {to} not in table");
                if let (Some(vf), Some(vt)) = (eval_expr(&from, &st), eval_expr(&to, &st)) {
                    prop_assert!(lessdef_vals(vf, vt), "{from} -> {to}: {vf:?} vs {vt:?}");
                }
            }
        }
    }
}

/// Soundness of the phi-edge post-assertion computation (`calc_post_phi`):
/// simulate the edge semantics — old registers snapshot the pre-edge
/// physical file, all phis assign *simultaneously* from pre-edge values —
/// and check the computed post-assertion against the stepped states.
mod postcond_phi_soundness {
    use super::*;
    use crellvm::erhl::calc_post_phi;
    use crellvm::erhl::semantics::eval_assertion;
    use crellvm::ir::{BlockId, Phi, Value};

    fn from_block() -> BlockId {
        BlockId::from_index(1)
    }

    /// The interpreter's view of taking the edge `from -> here`.
    fn step_edge(pre: &ExtState, phis: &[(RegId, Phi)], from: BlockId) -> ExtState {
        let mut post = pre.clone();
        post.old = pre.phy.clone();
        let assigned: Vec<(RegId, SemVal)> = phis
            .iter()
            .map(|(r, phi)| {
                let v = phi
                    .incoming
                    .iter()
                    .find(|(b, _)| *b == from)
                    .and_then(|(_, v)| v.clone())
                    .expect("edge has an incoming value");
                let sv = match v {
                    Value::Reg(r2) => pre.get(&TReg::Phy(r2)),
                    Value::Const(crellvm::ir::Const::Int { ty, bits }) => SemVal::Int { ty, bits },
                    other => panic!("test restricted to reg/int incomings, got {other:?}"),
                };
                (*r, sv)
            })
            .collect();
        for (r, v) in assigned {
            post.set(TReg::Phy(r), v);
        }
        post
    }

    fn phi_of(incoming: Value) -> Phi {
        Phi {
            ty: Type::I32,
            incoming: vec![(from_block(), Some(incoming))],
        }
    }

    proptest! {
        /// Identical phis with injected incoming values keep the result
        /// out of maydiff, and the post-assertion holds in the stepped
        /// states.
        #[test]
        fn identical_phis_stay_equal(a in arb_i32(), b in arb_i32(), use_reg in any::<bool>(), c in -50i64..50) {
            let mut src = ExtState::new();
            src.set(TReg::Phy(reg(0)), a);
            src.set(TReg::Phy(reg(1)), b);
            let tgt = src.clone();

            let incoming = if use_reg { Value::Reg(reg(0)) } else { Value::int(Type::I32, c) };
            let phis = vec![(reg(5), phi_of(incoming))];
            let post = calc_post_phi(&Assertion::new(), &phis, &phis, from_block());

            prop_assert!(!post.in_maydiff(&TReg::Phy(reg(5))), "phi result leaked into maydiff:\n{post}");
            let (s2, t2) = (step_edge(&src, &phis, from_block()), step_edge(&tgt, &phis, from_block()));
            prop_assert_ne!(eval_assertion(&post, &s2, &t2), Some(false), "post violated: {}", post);
        }

        /// Phis that read different constants on the two sides must put
        /// the result into maydiff — and the post-assertion still holds.
        #[test]
        fn differing_phis_enter_maydiff(a in arb_i32(), c1 in -50i64..50, c2 in -50i64..50) {
            prop_assume!(c1 != c2);
            let mut src = ExtState::new();
            src.set(TReg::Phy(reg(0)), a);
            let tgt = src.clone();

            let sp = vec![(reg(5), phi_of(Value::int(Type::I32, c1)))];
            let tp = vec![(reg(5), phi_of(Value::int(Type::I32, c2)))];
            let post = calc_post_phi(&Assertion::new(), &sp, &tp, from_block());

            prop_assert!(post.in_maydiff(&TReg::Phy(reg(5))), "differing phi not in maydiff:\n{post}");
            let (s2, t2) = (step_edge(&src, &sp, from_block()), step_edge(&tgt, &tp, from_block()));
            prop_assert_ne!(eval_assertion(&post, &s2, &t2), Some(false));
        }

        /// The old-copy step: a pre-edge fact `r2 ⊒ r0` must survive as
        /// its old twin `r̄2 ⊒ r̄0`, and evaluate true in the stepped
        /// states (old registers snapshot the pre-edge values).
        #[test]
        fn old_copy_preserves_pre_edge_facts(a in arb_i32()) {
            let mut src = ExtState::new();
            src.set(TReg::Phy(reg(0)), a);
            src.set(TReg::Phy(reg(2)), a); // r2 ⊒ r0 holds
            let tgt = src.clone();

            let mut pre = Assertion::new();
            pre.src.insert_lessdef(
                Expr::value(TValue::phy(reg(2))),
                Expr::value(TValue::phy(reg(0))),
            );

            // The phi redefines r2 — the *physical* fact dies, the old
            // twin must live.
            let phis = vec![(reg(2), phi_of(Value::int(Type::I32, 7)))];
            let post = calc_post_phi(&pre, &phis, &phis, from_block());

            let old_fact = crellvm::erhl::Pred::Lessdef(
                Expr::value(TValue::Reg(TReg::Old(reg(2)))),
                Expr::value(TValue::Reg(TReg::Old(reg(0)))),
            );
            prop_assert!(post.src.holds(&old_fact), "old twin missing:\n{post}");

            let (s2, t2) = (step_edge(&src, &phis, from_block()), step_edge(&tgt, &phis, from_block()));
            prop_assert_ne!(eval_assertion(&post, &s2, &t2), Some(false), "post violated: {}", post);
        }

        /// The bridge facts: after the edge, each phi result is related
        /// to its (old-ified) incoming value, so `r5 ⊒ r̄0` both holds
        /// formally and evaluates true when the incoming was `%r0`.
        #[test]
        fn bridges_relate_result_to_old_incoming(a in arb_i32(), b in arb_i32()) {
            let mut src = ExtState::new();
            src.set(TReg::Phy(reg(0)), a);
            src.set(TReg::Phy(reg(1)), b);
            let tgt = src.clone();

            let phis = vec![(reg(5), phi_of(Value::Reg(reg(0))))];
            let post = calc_post_phi(&Assertion::new(), &phis, &phis, from_block());

            let bridge = crellvm::erhl::Pred::Lessdef(
                Expr::value(TValue::phy(reg(5))),
                Expr::value(TValue::Reg(TReg::Old(reg(0)))),
            );
            prop_assert!(post.src.holds(&bridge), "bridge missing:\n{post}");

            let (s2, t2) = (step_edge(&src, &phis, from_block()), step_edge(&tgt, &phis, from_block()));
            prop_assert_ne!(eval_assertion(&post, &s2, &t2), Some(false));
        }
    }
}

/// Lattice properties of the inclusion check `CheckIncl` (`implies`):
/// the order the checker discharges proof goals with must be reflexive,
/// transitive, and monotone in both the predicate sets and the maydiff
/// set — and consistent with `why_not_implies`.
mod implies_lattice {
    use super::*;
    use crellvm::erhl::Pred;
    use proptest::collection::btree_set;

    fn arb_pred() -> impl Strategy<Value = Pred> {
        let val = prop_oneof![
            (0usize..5).prop_map(|i| TValue::phy(reg(i))),
            (-20i64..20).prop_map(|c| TValue::int(Type::I32, c)),
            (0u8..3).prop_map(|g| TValue::ghost(format!("g{g}"))),
        ];
        prop_oneof![
            (val.clone(), val).prop_map(|(a, b)| Pred::Lessdef(Expr::value(a), Expr::value(b))),
            (0usize..5).prop_map(|i| Pred::Uniq(reg(i))),
            (0usize..5).prop_map(|i| Pred::Priv(TReg::Phy(reg(i)))),
        ]
    }

    fn arb_assertion() -> impl Strategy<Value = Assertion> {
        (
            btree_set(arb_pred(), 0..6),
            btree_set(arb_pred(), 0..6),
            btree_set((0usize..5).prop_map(|i| TReg::Phy(reg(i))), 0..4),
        )
            .prop_map(|(src, tgt, maydiff)| {
                let mut a = Assertion::new();
                for p in src {
                    a.src.insert(p);
                }
                for p in tgt {
                    a.tgt.insert(p);
                }
                for r in maydiff {
                    a.add_maydiff(r);
                }
                a
            })
    }

    proptest! {
        #[test]
        fn implies_is_reflexive(a in arb_assertion()) {
            prop_assert!(a.implies(&a));
            prop_assert_eq!(a.why_not_implies(&a), None);
        }

        #[test]
        fn implies_is_transitive(a in arb_assertion(), b in arb_assertion(), c in arb_assertion()) {
            if a.implies(&b) && b.implies(&c) {
                prop_assert!(a.implies(&c));
            }
        }

        #[test]
        fn dropping_goal_predicates_weakens(a in arb_assertion(), keep in any::<u64>()) {
            // Build b from a by keeping a pseudo-random subset of the
            // predicates and all of the maydiff: a must imply b.
            let mut b = Assertion::new();
            for (i, p) in a.src.iter().enumerate() {
                if keep & (1 << (i % 64)) != 0 {
                    b.src.insert(p.clone());
                }
            }
            for (i, p) in a.tgt.iter().enumerate() {
                if keep & (1 << ((i + 13) % 64)) != 0 {
                    b.tgt.insert(p.clone());
                }
            }
            for r in &a.maydiff {
                b.add_maydiff(r.clone());
            }
            prop_assert!(a.implies(&b), "weaker goal not implied");
        }

        #[test]
        fn growing_goal_maydiff_weakens(a in arb_assertion(), extra in 5usize..9) {
            let mut b = a.clone();
            b.add_maydiff(TReg::Phy(reg(extra)));
            prop_assert!(a.implies(&b));
            // …but the reverse direction must fail: b's larger maydiff
            // cannot be shrunk for free.
            prop_assert!(!b.implies(&a));
            prop_assert!(b.why_not_implies(&a).is_some());
        }

        #[test]
        fn underivable_goal_predicate_is_rejected_and_explained(a in arb_assertion()) {
            let mut b = a.clone();
            // A fact about a ghost no strategy ever mentions.
            b.src.insert_lessdef(
                Expr::value(TValue::ghost("never")),
                Expr::value(TValue::int(Type::I32, 42)),
            );
            prop_assert!(!a.implies(&b));
            let why = a.why_not_implies(&b).expect("an explanation");
            prop_assert!(why.contains("never"), "unhelpful explanation: {why}");
        }

        /// `why_not_implies` agrees with `implies` exactly.
        #[test]
        fn explanation_iff_failure(a in arb_assertion(), b in arb_assertion()) {
            prop_assert_eq!(a.implies(&b), a.why_not_implies(&b).is_none());
        }
    }
}
