//! Property tests for the `llvm-diff` analogue: alpha-renaming
//! invariance, reflexivity, and sensitivity to real changes, over
//! generated modules.

use crellvm::diff::diff_modules;
use crellvm::gen::{generate_module, FeatureMix, GenConfig};
use crellvm::ir::{parse_module, printer::print_module};
use proptest::prelude::*;

fn gen(seed: u64) -> crellvm::ir::Module {
    generate_module(&GenConfig {
        seed,
        functions: 2,
        max_depth: 3,
        feature_mix: if seed.is_multiple_of(2) {
            FeatureMix::Benchmarks
        } else {
            FeatureMix::Csmith
        },
        ..GenConfig::default()
    })
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'.'
}

/// Consistently rename every register (`%name`) and every block label
/// (defined as `name:`, referenced bare) in printed IR — a pure
/// alpha-renaming.
fn alpha_rename(text: &str) -> String {
    // Collect the label names from their definition lines.
    let labels: std::collections::HashSet<&str> = text
        .lines()
        .filter_map(|l| {
            let t = l.trim();
            let name = t.strip_suffix(':')?;
            (!name.is_empty() && name.bytes().all(is_ident_byte)).then_some(name)
        })
        .collect();

    let mut out = String::with_capacity(text.len() + 64);
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            out.push_str("%ren.");
            i += 1;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                out.push(bytes[i] as char);
                i += 1;
            }
        } else if is_ident_byte(bytes[i]) && (i == 0 || !is_ident_byte(bytes[i - 1])) {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            let word = &text[start..i];
            if labels.contains(word) {
                out.push_str("ren.");
            }
            out.push_str(word);
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A module is alpha-equivalent to itself.
    #[test]
    fn diff_is_reflexive(seed in 0u64..5000) {
        let m = gen(seed);
        prop_assert!(diff_modules(&m, &m).is_ok());
    }

    /// Renaming every register and label consistently preserves
    /// alpha-equivalence (this is exactly what `llvm-diff` must ignore
    /// when comparing a pass's output to its input).
    #[test]
    fn diff_ignores_alpha_renaming(seed in 0u64..5000) {
        let m = gen(seed);
        let renamed_text = alpha_rename(&print_module(&m));
        let renamed = parse_module(&renamed_text)
            .unwrap_or_else(|e| panic!("renamed IR must stay parseable: {e}\n{renamed_text}"));
        if let Err(e) = diff_modules(&m, &renamed) {
            prop_assert!(false, "alpha-renamed module reported different: {e}");
        }
    }

    /// Two different seeds essentially never generate alpha-equivalent
    /// modules; diff must detect the difference (sensitivity check).
    #[test]
    fn diff_detects_different_programs(seed in 0u64..5000) {
        let (a, b) = (gen(seed), gen(seed + 100_000));
        if print_module(&a) != print_module(&b) {
            prop_assert!(diff_modules(&a, &b).is_err());
        }
    }
}
