//! Property tests for the IR substrate: the dominator implementation
//! against a naive fixpoint, parser totality, and generator/verifier
//! agreement.

use crellvm::gen::{generate_module, GenConfig};
use crellvm::ir::{parse_module, printer::print_module, verify_module, BlockId, Cfg, DomTree};
use proptest::prelude::*;
use std::collections::HashSet;

/// Naive dominator computation: iterate `dom(b) = {b} ∪ ⋂ dom(preds)` to
/// a fixpoint.
fn naive_dominators(f: &crellvm::ir::Function, cfg: &Cfg) -> Vec<HashSet<BlockId>> {
    let n = f.blocks.len();
    let all: HashSet<BlockId> = f.block_ids().collect();
    let mut dom: Vec<HashSet<BlockId>> = vec![all; n];
    dom[f.entry().index()] = [f.entry()].into_iter().collect();
    let mut changed = true;
    while changed {
        changed = false;
        for b in f.block_ids() {
            if b == f.entry() || !cfg.is_reachable(b) {
                continue;
            }
            let mut next: Option<HashSet<BlockId>> = None;
            for p in cfg.preds(b) {
                if !cfg.is_reachable(*p) {
                    continue;
                }
                next = Some(match next {
                    None => dom[p.index()].clone(),
                    Some(acc) => acc.intersection(&dom[p.index()]).copied().collect(),
                });
            }
            let mut next = next.unwrap_or_default();
            next.insert(b);
            if next != dom[b.index()] {
                dom[b.index()] = next;
                changed = true;
            }
        }
    }
    dom
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cooper–Harvey–Kennedy agrees with the naive fixpoint on every
    /// generated CFG.
    #[test]
    fn dominators_agree_with_naive(seed in 0u64..5000) {
        let m = generate_module(&GenConfig { seed, functions: 2, max_depth: 3, ..GenConfig::default() });
        for f in &m.functions {
            let cfg = Cfg::new(f);
            let dom = DomTree::new(f, &cfg);
            let naive = naive_dominators(f, &cfg);
            for a in f.block_ids() {
                for b in f.block_ids() {
                    if !cfg.is_reachable(a) || !cfg.is_reachable(b) {
                        continue;
                    }
                    let fast = dom.dominates(a, b);
                    let slow = naive[b.index()].contains(&a);
                    prop_assert_eq!(fast, slow, "@{} {} dom {}", f.name, a, b);
                }
            }
        }
    }

    /// Every generated module verifies and round-trips through the
    /// printer/parser.
    #[test]
    fn generate_verify_roundtrip(seed in 5000u64..9000) {
        let m = generate_module(&GenConfig { seed, functions: 2, unsupported_rate: 0.2, ..GenConfig::default() });
        verify_module(&m).unwrap();
        let text = print_module(&m);
        let m2 = parse_module(&text).unwrap();
        verify_module(&m2).unwrap();
        prop_assert_eq!(print_module(&m2), text);
    }

    /// The parser is total: arbitrary input never panics (it may error).
    #[test]
    fn parser_never_panics(input in "\\PC{0,200}") {
        let _ = parse_module(&input);
    }

    /// Mutating one character of valid IR never panics the parser, and
    /// whatever still parses still verifies or errors cleanly.
    #[test]
    fn parser_single_char_mutations(seed in 0u64..200, pos_frac in 0.0f64..1.0, ch in any::<char>()) {
        let m = generate_module(&GenConfig { seed, functions: 1, ..GenConfig::default() });
        let mut text = print_module(&m);
        let pos = ((text.len() as f64) * pos_frac) as usize;
        let Some((idx, _)) = text.char_indices().nth(pos.min(text.chars().count().saturating_sub(1))) else {
            return Ok(());
        };
        text.replace_range(idx..text[idx..].chars().next().map(|c| idx + c.len_utf8()).unwrap_or(idx), &ch.to_string());
        if let Ok(m2) = parse_module(&text) {
            let _ = verify_module(&m2); // may fail, must not panic
        }
    }
}
