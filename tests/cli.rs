//! End-to-end tests of the `crellvm` command-line tool.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_crellvm")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmpfile(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("crellvm_cli_{name}"))
}

#[test]
fn gen_run_opt_diff_roundtrip() {
    let prog = tmpfile("a.cll");
    let out = run(&[
        "gen",
        "--seed",
        "11",
        "--functions",
        "2",
        "--out",
        prog.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // run: prints a trace and a normal end.
    let out = run(&["run", prog.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("-- end: Ret"), "{stdout}");

    // opt: every translation validates; --emit produces parseable IR.
    let out = run(&["opt", prog.to_str().unwrap(), "--emit"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("valid"));
    assert!(!stdout.contains("FAILED"));
    let ir_start = stdout
        .find("define")
        .or_else(|| stdout.find("declare"))
        .unwrap();
    let optimized = tmpfile("a_opt.cll");
    std::fs::write(&optimized, &stdout[ir_start..]).unwrap();

    // diff: a module equals itself; differs from another seed.
    let out = run(&["diff", prog.to_str().unwrap(), prog.to_str().unwrap()]);
    assert!(out.status.success());
    let other = tmpfile("b.cll");
    let out = run(&[
        "gen",
        "--seed",
        "12",
        "--functions",
        "2",
        "--out",
        other.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = run(&["diff", prog.to_str().unwrap(), other.to_str().unwrap()]);
    assert!(!out.status.success());
}

#[test]
fn opt_with_bugs_reports_failures_and_exits_nonzero() {
    let prog = tmpfile("buggy.cll");
    std::fs::write(
        &prog,
        r#"
        declare @bar(ptr, ptr)
        define @main(ptr %p) {
        entry:
          %q1 = gep inbounds ptr %p, i64 10
          %q2 = gep ptr %p, i64 10
          call void @bar(ptr %q1, ptr %q2)
          ret void
        }
        "#,
    )
    .unwrap();
    let out = run(&[
        "opt",
        prog.to_str().unwrap(),
        "--pass",
        "gvn",
        "--bugs",
        "3.7.1",
    ]);
    assert!(!out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAILED"), "{stdout}");
    assert!(stdout.contains("reason:"), "{stdout}");

    // The fixed compiler on the same program validates and exits zero.
    let out = run(&[
        "opt",
        prog.to_str().unwrap(),
        "--pass",
        "gvn",
        "--bugs",
        "none",
    ]);
    assert!(out.status.success());
}

#[test]
fn proof_dump_and_independent_check() {
    let dir = std::env::temp_dir().join("crellvm_cli_proofs");
    let _ = std::fs::remove_dir_all(&dir);
    let prog = tmpfile("chk.cll");
    let out = run(&[
        "gen",
        "--seed",
        "21",
        "--functions",
        "2",
        "--out",
        prog.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    // Dump proofs in both formats while optimizing.
    for (flag, ext) in [(None, "json"), (Some("--binary"), "cpb")] {
        let sub = dir.join(ext);
        let mut args = vec![
            "opt",
            prog.to_str().unwrap(),
            "--pass",
            "mem2reg",
            "--proof-dir",
            sub.to_str().unwrap(),
        ];
        if let Some(f) = flag {
            args.push(f);
        }
        assert!(run(&args).status.success());
        let proofs: Vec<_> = std::fs::read_dir(&sub)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == ext))
            .collect();
        assert!(!proofs.is_empty(), "no .{ext} proofs written");

        // The separate checker process validates each file.
        let args: Vec<&str> = std::iter::once("check")
            .chain(proofs.iter().map(|p| p.to_str().unwrap()))
            .collect();
        let out = run(&args);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stdout)
        );
        assert!(String::from_utf8_lossy(&out.stdout).contains("valid"));
    }

    // Binary proofs are smaller than their JSON counterparts.
    let jlen: u64 = std::fs::read_dir(dir.join("json"))
        .unwrap()
        .map(|e| e.unwrap().metadata().unwrap().len())
        .sum();
    let blen: u64 = std::fs::read_dir(dir.join("cpb"))
        .unwrap()
        .map(|e| e.unwrap().metadata().unwrap().len())
        .sum();
    assert!(blen < jlen, "binary {blen} not smaller than json {jlen}");

    // A corrupted proof file is a clean error, not a crash.
    let bad = dir.join("bad.cpb");
    std::fs::write(&bad, [0xff, 0xff, 0xff]).unwrap();
    let out = run(&["check", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn metrics_trace_and_report() {
    let prog = tmpfile("tel.cll");
    let out = run(&[
        "gen",
        "--seed",
        "31",
        "--functions",
        "2",
        "--out",
        prog.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    let metrics = tmpfile("tel_metrics.json");
    let trace = tmpfile("tel_trace.jsonl");
    let out = run(&[
        "opt",
        prog.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // The metrics file is a parseable registry snapshot with live data.
    let snap_json = std::fs::read_to_string(&metrics).unwrap();
    let snap = crellvm::telemetry::Snapshot::from_json(&snap_json).expect("metrics file parses");
    assert!(snap.counters.get("pipeline.steps").copied().unwrap_or(0) > 0);
    assert!(snap.timers.contains_key("time.pcheck"));

    // The trace is JSON-lines with one validation.step event per step.
    let steps = std::fs::read_to_string(&trace)
        .unwrap()
        .lines()
        .map(|l| crellvm::telemetry::Event::from_json_line(l).expect("trace line parses"))
        .filter(|e| e.kind == "validation.step")
        .count();
    assert_eq!(steps as u64, snap.counters["pipeline.steps"]);

    // `report` renders the tables with a non-zero #V.
    let out = run(&["report", metrics.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("#V"), "{stdout}");
    assert!(stdout.contains("PCheck"), "{stdout}");
    assert!(stdout.contains("inference rule"), "{stdout}");
    let v_row = stdout.lines().nth(1).expect("counts row");
    let v: u64 = v_row
        .split_whitespace()
        .next()
        .expect("#V value")
        .parse()
        .expect("#V is a number");
    assert!(v > 0, "#V must be non-zero: {stdout}");

    // A missing or malformed metrics file is a clean error.
    let out = run(&["report", "/nonexistent.json"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn cache_dir_serves_warm_runs_with_identical_verdicts() {
    let prog = tmpfile("cache.cll");
    let out = run(&[
        "gen",
        "--seed",
        "41",
        "--functions",
        "3",
        "--out",
        prog.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    let dir = std::env::temp_dir().join("crellvm_cli_cache");
    let _ = std::fs::remove_dir_all(&dir);
    let metrics_cold = tmpfile("cache_cold.json");
    let metrics_warm = tmpfile("cache_warm.json");

    let run_cached = |metrics: &PathBuf| {
        run(&[
            "opt",
            prog.to_str().unwrap(),
            "--cache-dir",
            dir.to_str().unwrap(),
            "--metrics",
            metrics.to_str().unwrap(),
        ])
    };
    let cold = run_cached(&metrics_cold);
    assert!(
        cold.status.success(),
        "{}",
        String::from_utf8_lossy(&cold.stdout)
    );
    let warm = run_cached(&metrics_warm);
    assert!(warm.status.success());

    // Same verdict lines, cold and warm.
    assert_eq!(cold.stdout, warm.stdout, "verdicts differ on a warm run");

    let snap = |p: &PathBuf| {
        crellvm::telemetry::Snapshot::from_json(&std::fs::read_to_string(p).unwrap()).unwrap()
    };
    let (cold_snap, warm_snap) = (snap(&metrics_cold), snap(&metrics_warm));
    let steps = cold_snap.counters["pipeline.steps"];
    assert!(steps > 0);
    assert_eq!(cold_snap.counters.get("cache.misses"), Some(&steps));
    assert_eq!(warm_snap.counters.get("cache.hits"), Some(&steps));
    assert_eq!(
        cold_snap.deterministic().to_json(),
        warm_snap.deterministic().to_json(),
        "deterministic metrics differ between cold and warm --cache-dir runs"
    );

    // The report renders the cache and io byte columns.
    let out = run(&["report", metrics_warm.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cache.hits"), "{stdout}");
    assert!(stdout.contains("cache.hit_rate"), "{stdout}");
    assert!(stdout.contains("io.bytes.v2"), "{stdout}");

    // `check --cache-dir`: a proof checked twice hits on the second run.
    let pdir = std::env::temp_dir().join("crellvm_cli_cache_proofs");
    let _ = std::fs::remove_dir_all(&pdir);
    let out = run(&[
        "opt",
        prog.to_str().unwrap(),
        "--pass",
        "mem2reg",
        "--proof-dir",
        pdir.to_str().unwrap(),
        "--binary",
    ]);
    assert!(out.status.success());
    let proofs: Vec<String> = std::fs::read_dir(&pdir)
        .unwrap()
        .map(|e| e.unwrap().path().to_str().unwrap().to_string())
        .collect();
    assert!(!proofs.is_empty());
    let cdir = std::env::temp_dir().join("crellvm_cli_cache_check");
    let _ = std::fs::remove_dir_all(&cdir);
    let mut args: Vec<&str> = vec!["check", "--cache-dir", cdir.to_str().unwrap()];
    args.extend(proofs.iter().map(String::as_str));
    let first = run(&args);
    assert!(first.status.success());
    let second = run(&args);
    assert!(second.status.success());
    assert_eq!(first.stdout, second.stdout);
}

#[test]
fn bad_usage_is_reported() {
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["opt"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["opt", "/nonexistent.cll"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn parse_errors_carry_line_numbers() {
    let prog = tmpfile("broken.cll");
    std::fs::write(&prog, "define @f() {\nentry:\n  %x = bogus i32 1\n}\n").unwrap();
    let out = run(&["run", prog.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 3"), "{stderr}");
}

#[test]
fn forensics_flow_bundles_replay_and_export() {
    // A program that trips PR28562 under the 3.7.1 bug population.
    let prog = tmpfile("pr28562.cll");
    std::fs::write(
        &prog,
        "declare @bar(ptr, ptr)\n\
         define @main(ptr %p) {\n\
         entry:\n\
         \x20 %q1 = gep inbounds ptr %p, i64 10\n\
         \x20 %q2 = gep ptr %p, i64 10\n\
         \x20 call void @bar(ptr %q1, ptr %q2)\n\
         \x20 ret void\n\
         }\n",
    )
    .unwrap();
    let fdir = tmpfile("forensic_out");
    let _ = std::fs::remove_dir_all(&fdir);
    let spans = tmpfile("spans.json");
    let metrics = tmpfile("forensic_metrics.json");

    // opt exits 1 (validation failure) and writes a bundle + span file.
    let out = run(&[
        "opt",
        prog.to_str().unwrap(),
        "--pass",
        "gvn",
        "--bugs",
        "3.7.1",
        "--forensics-dir",
        fdir.to_str().unwrap(),
        "--spans",
        spans.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "the miscompilation is caught");
    let bundle_path = fdir.join("gvn.main.forensic.json");
    assert!(bundle_path.exists(), "bundle file written");

    // The bundle is well-formed and its minimized core is strictly smaller.
    let bundle = crellvm::telemetry::forensics::ForensicBundle::from_json(
        &std::fs::read_to_string(&bundle_path).unwrap(),
    )
    .expect("bundle parses");
    assert!(bundle.minimized.len() < bundle.commands.len());

    // `forensics` replays it to the same failure class and exits 0.
    let out = run(&["forensics", bundle_path.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("CONFIRMED"), "{stdout}");
    assert!(stdout.contains(bundle.class.as_str()), "{stdout}");

    // The span file renders as Chrome trace_event JSON.
    let out = run(&[
        "report",
        "--format",
        "chrome-trace",
        spans.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"traceEvents\""), "{stdout}");
    assert!(stdout.contains("\"ph\":\"X\""), "{stdout}");

    // The metrics snapshot renders as OpenMetrics text.
    let out = run(&[
        "report",
        "--format",
        "openmetrics",
        metrics.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.ends_with("# EOF\n"), "{stdout}");
    assert!(
        stdout.contains("# TYPE pipeline_failed counter"),
        "{stdout}"
    );
    assert!(stdout.contains("pipeline_failed_total 1"), "{stdout}");

    // Text report now carries the histogram quantile table.
    let out = run(&["report", metrics.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("p95"), "{stdout}");
    assert!(stdout.contains("histogram"), "{stdout}");

    // Unknown format is a clean usage error.
    let out = run(&["report", "--format", "yaml", metrics.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    // A malformed bundle is a clean error too.
    let out = run(&["forensics", prog.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
}
