//! The parallel validation engine must be a pure performance knob: at any
//! worker count the pipeline produces the same transformed modules, the
//! same step records, and the same measurement metrics. Scheduling may
//! only show up in wall-clock timers and the explicitly schedule-scoped
//! counters (`pipeline.jobs`, `validate.steal.*`), which
//! `Snapshot::deterministic` excludes.

use crellvm::gen::{corpus, generate_module, FeatureMix, GenConfig};
use crellvm::ir::printer::print_module;
use crellvm::ir::Module;
use crellvm::passes::{
    run_pipeline_parallel, ParallelOptions, PassConfig, PipelineReport, ProofFormat,
};
use crellvm::telemetry::{Snapshot, Telemetry};

/// A small slice of the paper-shaped generated corpus plus a few
/// free-standing modules with CSmith-style feature mix.
fn test_corpus() -> Vec<Module> {
    let mut modules: Vec<Module> = corpus(0.002, 9)
        .into_iter()
        .take(6)
        .flat_map(|(_, ms)| ms)
        .collect();
    for seed in [11, 12, 13] {
        modules.push(generate_module(&GenConfig {
            seed,
            functions: 5,
            feature_mix: FeatureMix::Csmith,
            ..GenConfig::default()
        }));
    }
    modules
}

fn run_at(modules: &[Module], jobs: usize) -> (Vec<String>, PipelineReport, Snapshot) {
    let tel = Telemetry::disabled();
    let opts = ParallelOptions {
        jobs,
        format: ProofFormat::Json,
        ..ParallelOptions::default()
    };
    let mut merged = PipelineReport::default();
    let mut outputs = Vec::with_capacity(modules.len());
    for m in modules {
        let (out, report) = run_pipeline_parallel(m, &PassConfig::default(), &opts, &tel);
        merged.merge(report);
        outputs.push(print_module(&out));
    }
    (outputs, merged, tel.registry().snapshot())
}

#[test]
fn pipeline_observables_identical_at_1_2_and_8_threads() {
    let modules = test_corpus();
    let (out1, rep1, snap1) = run_at(&modules, 1);
    assert!(rep1.validations() > 0, "corpus produced no validations");

    for jobs in [2, 8] {
        let (out, rep, snap) = run_at(&modules, jobs);

        // Output modules are byte-identical.
        assert_eq!(out1, out, "transformed modules differ at jobs={jobs}");

        // Pipeline reports agree step for step, in function order.
        assert_eq!(rep1.steps.len(), rep.steps.len());
        for (a, b) in rep1.steps.iter().zip(&rep.steps) {
            assert_eq!(a.pass, b.pass, "pass order differs at jobs={jobs}");
            assert_eq!(a.func, b.func, "function order differs at jobs={jobs}");
            assert_eq!(a.outcome, b.outcome, "verdict differs at jobs={jobs}");
            assert_eq!(a.proof_bytes, b.proof_bytes);
        }
        assert_eq!(rep1.validations(), rep.validations());
        assert_eq!(rep1.failures(), rep.failures());
        assert_eq!(rep1.not_supported(), rep.not_supported());

        // Metrics snapshots agree on every measurement metric.
        assert_eq!(
            snap1.deterministic(),
            snap.deterministic(),
            "measurement metrics differ at jobs={jobs}"
        );
    }
}

#[test]
fn schedule_scoped_metrics_are_the_only_difference() {
    // One module: `pipeline.jobs` accumulates once per pipeline run, so a
    // single run keeps the counter equal to the requested worker count.
    let modules = &test_corpus()[..1];
    let (_, _, snap1) = run_at(modules, 1);
    let (_, _, snap8) = run_at(modules, 8);

    // The raw snapshots DO differ in schedule-scoped shape: eight steal
    // counters versus one.
    let steals = |s: &Snapshot| {
        s.counters
            .keys()
            .filter(|k| k.starts_with("validate.steal."))
            .count()
    };
    assert_eq!(steals(&snap1), 1);
    assert!(steals(&snap8) > 1);
    assert_eq!(snap1.counters.get("pipeline.jobs"), Some(&1));
    assert_eq!(snap8.counters.get("pipeline.jobs"), Some(&8));

    // Scrubbing exactly those plus the timers makes them equal.
    assert_eq!(snap1.deterministic(), snap8.deterministic());
}
