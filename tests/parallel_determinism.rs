//! The parallel validation engine must be a pure performance knob: at any
//! worker count the pipeline produces the same transformed modules, the
//! same step records, and the same measurement metrics. Scheduling may
//! only show up in wall-clock timers and the explicitly schedule-scoped
//! counters (`pipeline.jobs`, `validate.steal.*`), which
//! `Snapshot::deterministic` excludes.

use crellvm::gen::{corpus, generate_module, FeatureMix, GenConfig};
use crellvm::ir::printer::print_module;
use crellvm::ir::Module;
use crellvm::passes::{
    run_pipeline_parallel, ParallelOptions, PassConfig, PipelineReport, ProofFormat,
};
use crellvm::telemetry::{Snapshot, Telemetry};

/// A small slice of the paper-shaped generated corpus plus a few
/// free-standing modules with CSmith-style feature mix.
fn test_corpus() -> Vec<Module> {
    let mut modules: Vec<Module> = corpus(0.002, 9)
        .into_iter()
        .take(6)
        .flat_map(|(_, ms)| ms)
        .collect();
    for seed in [11, 12, 13] {
        modules.push(generate_module(&GenConfig {
            seed,
            functions: 5,
            feature_mix: FeatureMix::Csmith,
            ..GenConfig::default()
        }));
    }
    modules
}

fn run_with(
    modules: &[Module],
    jobs: usize,
    format: ProofFormat,
) -> (Vec<String>, PipelineReport, Snapshot) {
    let tel = Telemetry::disabled();
    let opts = ParallelOptions {
        jobs,
        format,
        ..ParallelOptions::default()
    };
    let mut merged = PipelineReport::default();
    let mut outputs = Vec::with_capacity(modules.len());
    for m in modules {
        let (out, report) = run_pipeline_parallel(m, &PassConfig::default(), &opts, &tel);
        merged.merge(report);
        outputs.push(print_module(&out));
    }
    (outputs, merged, tel.registry().snapshot())
}

fn run_at(modules: &[Module], jobs: usize) -> (Vec<String>, PipelineReport, Snapshot) {
    run_with(modules, jobs, ProofFormat::Json)
}

#[test]
fn pipeline_observables_identical_at_1_2_and_8_threads() {
    let modules = test_corpus();
    let (out1, rep1, snap1) = run_at(&modules, 1);
    assert!(rep1.validations() > 0, "corpus produced no validations");

    for jobs in [2, 8] {
        let (out, rep, snap) = run_at(&modules, jobs);

        // Output modules are byte-identical.
        assert_eq!(out1, out, "transformed modules differ at jobs={jobs}");

        // Pipeline reports agree step for step, in function order.
        assert_eq!(rep1.steps.len(), rep.steps.len());
        for (a, b) in rep1.steps.iter().zip(&rep.steps) {
            assert_eq!(a.pass, b.pass, "pass order differs at jobs={jobs}");
            assert_eq!(a.func, b.func, "function order differs at jobs={jobs}");
            assert_eq!(a.outcome, b.outcome, "verdict differs at jobs={jobs}");
            assert_eq!(a.proof_bytes, b.proof_bytes);
        }
        assert_eq!(rep1.validations(), rep.validations());
        assert_eq!(rep1.failures(), rep.failures());
        assert_eq!(rep1.not_supported(), rep.not_supported());

        // Metrics snapshots agree on every measurement metric.
        assert_eq!(
            snap1.deterministic(),
            snap.deterministic(),
            "measurement metrics differ at jobs={jobs}"
        );
    }
}

#[test]
fn schedule_scoped_metrics_are_the_only_difference() {
    // One module: `pipeline.jobs` accumulates once per pipeline run, so a
    // single run keeps the counter equal to the requested worker count.
    let modules = &test_corpus()[..1];
    let (_, _, snap1) = run_at(modules, 1);
    let (_, _, snap8) = run_at(modules, 8);

    // The raw snapshots DO differ in schedule-scoped shape: eight steal
    // counters versus one.
    let steals = |s: &Snapshot| {
        s.counters
            .keys()
            .filter(|k| k.starts_with("validate.steal."))
            .count()
    };
    assert_eq!(steals(&snap1), 1);
    assert!(steals(&snap8) > 1);
    assert_eq!(snap1.counters.get("pipeline.jobs"), Some(&1));
    assert_eq!(snap8.counters.get("pipeline.jobs"), Some(&8));

    // Scrubbing exactly those plus the timers makes them equal.
    assert_eq!(snap1.deterministic(), snap8.deterministic());
}

#[test]
fn determinism_holds_with_the_default_v2_wire_format() {
    // The default on-the-wire format is binary v2 (dictionary-coded
    // string table); the engine must stay a pure performance knob there
    // too, and v2 must report strictly smaller proofs than JSON.
    let modules = &test_corpus()[..3];
    let (out1, rep1, snap1) = run_with(modules, 1, ProofFormat::default());
    let (out8, rep8, snap8) = run_with(modules, 8, ProofFormat::default());
    assert_eq!(out1, out8);
    assert_eq!(snap1.deterministic(), snap8.deterministic());
    assert!(snap1.counters.get("io.bytes.v2").copied().unwrap_or(0) > 0);

    let (_, repj, _) = run_with(modules, 1, ProofFormat::Json);
    let v2_bytes: usize = rep1.steps.iter().map(|s| s.proof_bytes).sum();
    let json_bytes: usize = repj.steps.iter().map(|s| s.proof_bytes).sum();
    assert!(
        v2_bytes < json_bytes,
        "v2 ({v2_bytes}) not smaller than JSON ({json_bytes})"
    );
    assert_eq!(rep1.steps.len(), rep8.steps.len());
}

#[test]
fn two_worker_steals_stay_under_the_seeding_bound() {
    // With interleaved size-rank seeding at jobs=2, the two deques start
    // balanced to within one item, and an item is stolen at most once —
    // only after the thief's own deque ran dry. Once a deque is empty it
    // stays empty, so all steals in one pass run drain from a single
    // sibling deque: at most ⌈n/2⌉ per (module, pass). A contiguous-chunk
    // seeding regression (one worker owning the module's expensive head)
    // shows up here as a steal count blowing past the bound.
    let modules = test_corpus();
    let tel = Telemetry::disabled();
    let opts = ParallelOptions {
        jobs: 2,
        format: ProofFormat::Json,
        ..ParallelOptions::default()
    };
    let mut bound = 0u64;
    for m in &modules {
        let _ = run_pipeline_parallel(m, &PassConfig::default(), &opts, &tel);
        // Four passes per pipeline, each reseeding both deques.
        bound += 4 * (m.functions.len() as u64).div_ceil(2);
    }
    let snap = tel.registry().snapshot();
    let steals: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("validate.steal."))
        .map(|(_, v)| *v)
        .sum();
    assert!(
        steals <= bound,
        "steals {steals} exceed the seeding bound {bound}"
    );
}
