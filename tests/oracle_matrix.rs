//! The oracle matrix: every injector mutation class must be caught by
//! *both* independent oracles.
//!
//! For each mutation class the suite finds a generated `(program, pass,
//! mutation)` instance and asserts:
//!
//! * **(a)** the sound ERHL checker rejects the mutated translation under
//!   the honest pass's proof — the checker leg works;
//! * **(b)** with the checker deliberately weakened to accept everything
//!   (`CheckerConfig::weakened_accept_all()`, a test-only knob), the
//!   *other* leg still catches the same mutation: interpreter-based
//!   refinement for the interp-catchable classes, the structural diff for
//!   `StripInbounds` (which is refinement-preserving by construction —
//!   dropping `inbounds` only removes poison).
//!
//! Pinning (b) under a checker that accepts everything is what makes the
//! matrix meaningful: it proves the two oracles are genuinely
//! independent, so a checker soundness bug cannot hide a miscompilation
//! from the campaign.

use crellvm::erhl::{validate, validate_with_config, CheckerConfig};
use crellvm::fuzz::oracle::{
    diff_leg, refinement_leg, DiffSummary, OracleConfig, RefinementSummary,
};
use crellvm::gen::{generate_module, mutation_sites, BugClass, GenConfig, Mutation, MutationPlan};
use crellvm::ir::Module;
use crellvm::passes::pipeline::PASS_ORDER;
use crellvm::passes::{gvn, instcombine, licm, mem2reg, PassConfig, PassOutcome};

fn run_pass(name: &str, m: &Module, config: &PassConfig) -> PassOutcome {
    match name {
        "mem2reg" => mem2reg(m, config),
        "instcombine" => instcombine(m, config),
        "gvn" => gvn(m, config),
        "licm" => licm(m, config),
        other => panic!("unknown pass {other}"),
    }
}

/// Discriminant key for grouping mutations into their class rows.
fn variant(m: &Mutation) -> &'static str {
    match m {
        Mutation::DropStore { .. } => "drop_store",
        Mutation::UndefizeLoad { .. } => "undefize_load",
        Mutation::StripInbounds { .. } => "strip_inbounds",
        Mutation::AddInbounds { .. } => "add_inbounds",
        Mutation::FlipIcmpPred { .. } => "flip_icmp_pred",
        Mutation::SwapNonCommutative { .. } => "swap_non_commutative",
        Mutation::PerturbPhiIncoming { .. } => "perturb_phi_incoming",
    }
}

/// The full class table: every injector variant, its paper bug class,
/// and which independent oracle must catch it when the checker is
/// weakened.
const MATRIX: [(&str, BugClass, /* diff-only */ bool); 7] = [
    ("drop_store", BugClass::Pr24179, false),
    ("perturb_phi_incoming", BugClass::Pr24179, false),
    ("undefize_load", BugClass::Pr33673, false),
    ("strip_inbounds", BugClass::Pr28562, true),
    ("add_inbounds", BugClass::Pr28562, false),
    ("flip_icmp_pred", BugClass::Pr29057, false),
    ("swap_non_commutative", BugClass::Pr29057, false),
];

#[test]
fn every_mutation_class_is_caught_by_both_oracles() {
    let honest = PassConfig::default();
    let weakened = CheckerConfig::weakened_accept_all();
    let oracle = OracleConfig::default();
    let mut caught: std::collections::BTreeMap<&str, bool> =
        MATRIX.iter().map(|(v, _, _)| (*v, false)).collect();

    'seeds: for seed in 0..120u64 {
        let mut cur = generate_module(&GenConfig {
            seed,
            bug_bait_rate: 0.5,
            ..GenConfig::default()
        });
        for pass in PASS_ORDER {
            let out = run_pass(pass, &cur, &honest);
            for (fi, f) in out.module.functions.iter().enumerate() {
                for m in mutation_sites(f) {
                    let row = variant(&m);
                    if caught[row] {
                        continue;
                    }
                    let (_, _, diff_only) = MATRIX
                        .iter()
                        .find(|(v, _, _)| *v == row)
                        .expect("variant in matrix");

                    // Build the mutated translation: pass output function
                    // and the matching proof unit's target.
                    let plan = MutationPlan {
                        mutations: vec![m.clone()],
                    };
                    let mutated_f = plan.applied(f);
                    let mut observed = out.module.clone();
                    observed.functions[fi] = mutated_f.clone();
                    let Some(unit) = out.proofs.iter().find(|u| u.src.name == mutated_f.name)
                    else {
                        continue;
                    };
                    let mut unit = unit.clone();
                    unit.tgt = mutated_f;

                    // (a) the sound checker must reject the mutation.
                    if validate(&unit).is_ok() {
                        continue;
                    }

                    // (b) the weakened checker must NOT reject it (the
                    // knob really does disable the checker leg) …
                    assert!(
                        matches!(
                            validate_with_config(&unit, &weakened),
                            Ok(crellvm::erhl::Verdict::Valid)
                        ),
                        "weakened checker still rejected seed {seed} {pass} {m:?}"
                    );

                    // … and the independent leg must catch it anyway.
                    let independent_catch = if *diff_only {
                        matches!(diff_leg(&out.module, &observed), DiffSummary::Differs(_))
                    } else {
                        matches!(
                            refinement_leg(&cur, &observed, &oracle),
                            RefinementSummary::Fails { .. }
                        )
                    };
                    if independent_catch {
                        *caught.get_mut(row).unwrap() = true;
                        if caught.values().all(|c| *c) {
                            break 'seeds;
                        }
                    }
                }
            }
            cur = out.module;
        }
    }

    let missing: Vec<&str> = caught
        .iter()
        .filter(|(_, c)| !**c)
        .map(|(v, _)| *v)
        .collect();
    assert!(
        missing.is_empty(),
        "mutation classes never caught by both oracles: {missing:?}"
    );
}

#[test]
fn differential_tier_is_clean_over_the_matrix_corpus() {
    // Acceptance gate for the bytecode tier: over the same corpus the
    // matrix sweeps — generated modules, every pass output, and a sample
    // of mutated translations — `Tier::Differential` must report zero
    // divergences. The lowering has to stay faithful on adversarial
    // modules (mutated IR) just as much as on healthy ones, because the
    // fuzz oracle executes both.
    use crellvm::interp::{run_main_tiered, RunConfig, Tier};
    let honest = PassConfig::default();
    let mut modules = 0u32;
    let mut check = |m: &Module| {
        for env_seed in [0xC0FFEE_u64, 3] {
            let cfg = RunConfig {
                tier: Tier::Differential,
                env_seed,
                ..RunConfig::default()
            };
            let run = run_main_tiered(m, &cfg, None);
            assert!(
                run.divergence.is_none(),
                "tier divergence on the matrix corpus: {}",
                run.divergence.unwrap().mismatch
            );
        }
        modules += 1;
    };
    for seed in 0..40u64 {
        let mut cur = generate_module(&GenConfig {
            seed,
            bug_bait_rate: 0.5,
            ..GenConfig::default()
        });
        check(&cur);
        for pass in PASS_ORDER {
            let out = run_pass(pass, &cur, &honest);
            check(&out.module);
            if let Some(f0) = out.module.functions.first() {
                if let Some(m) = mutation_sites(f0).into_iter().next() {
                    let plan = MutationPlan { mutations: vec![m] };
                    let mut observed = out.module.clone();
                    observed.functions[0] = plan.applied(f0);
                    check(&observed);
                }
            }
            cur = out.module;
        }
    }
    assert!(modules > 100, "matrix corpus unexpectedly small: {modules}");
}

#[test]
fn mutation_classes_map_to_paper_bugs() {
    for (variant_name, class, _) in MATRIX {
        // The table itself must agree with the injector's own tagging.
        let tagged = match variant_name {
            "drop_store" => Mutation::DropStore { block: 0, stmt: 0 }.bug_class(),
            "perturb_phi_incoming" => Mutation::PerturbPhiIncoming {
                block: 0,
                phi: 0,
                incoming: 0,
            }
            .bug_class(),
            "undefize_load" => Mutation::UndefizeLoad { block: 0, stmt: 0 }.bug_class(),
            "strip_inbounds" => Mutation::StripInbounds { block: 0, stmt: 0 }.bug_class(),
            "add_inbounds" => Mutation::AddInbounds { block: 0, stmt: 0 }.bug_class(),
            "flip_icmp_pred" => Mutation::FlipIcmpPred { block: 0, stmt: 0 }.bug_class(),
            "swap_non_commutative" => {
                Mutation::SwapNonCommutative { block: 0, stmt: 0 }.bug_class()
            }
            other => panic!("unknown variant {other}"),
        };
        assert_eq!(
            tagged, class,
            "{variant_name} tagged with the wrong bug class"
        );
    }
}

#[test]
fn strip_inbounds_is_refinement_preserving() {
    // The diff-only row is diff-only for a reason: stripping `inbounds`
    // can only *remove* poison, so refinement must hold — pin that the
    // refinement leg genuinely cannot catch this class (if it ever could,
    // the row should be tightened instead).
    let oracle = OracleConfig::default();
    let honest = PassConfig::default();
    let mut checked = 0;
    for seed in 0..40u64 {
        let cur = generate_module(&GenConfig {
            seed,
            bug_bait_rate: 0.5,
            ..GenConfig::default()
        });
        let out = run_pass("mem2reg", &cur, &honest);
        for (fi, f) in out.module.functions.iter().enumerate() {
            for m in mutation_sites(f) {
                if !matches!(m, Mutation::StripInbounds { .. }) {
                    continue;
                }
                let plan = MutationPlan { mutations: vec![m] };
                let mut observed = out.module.clone();
                observed.functions[fi] = plan.applied(f);
                assert!(
                    matches!(
                        refinement_leg(&cur, &observed, &oracle),
                        RefinementSummary::Holds
                    ),
                    "seed {seed}: strip-inbounds changed observable behaviour"
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 0, "no strip-inbounds sites found in 40 seeds");
}
