//! Warm-cache byte-identity, end to end: replaying verdicts from a
//! populated `--cache-dir` must produce *exactly* the bytes of a cold
//! uncached run — at every worker count, with the decode-ahead pipeline
//! on, and whether proof artifacts are read from the heap or through the
//! mmap reader — both for offline `crellvm opt` stdout and for served
//! `Accept: text/plain` responses.

use crellvm::serve::http::call;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_crellvm")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crellvm_warmid_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str]) -> Output {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "crellvm {:?} failed:\n{}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Generate a deterministic test module file, returning its path.
fn gen_module(dir: &std::path::Path, seed: u64) -> PathBuf {
    let path = dir.join(format!("m{seed}.cll"));
    run(&[
        "gen",
        "--seed",
        &seed.to_string(),
        "--functions",
        "3",
        "--out",
        path.to_str().unwrap(),
    ]);
    path
}

#[test]
fn warm_opt_stdout_is_byte_identical_across_jobs_and_mmap() {
    let dir = tmpdir("opt");
    let module = gen_module(&dir, 97);
    let module = module.to_str().unwrap();

    // The uncached single-worker run is the reference output.
    let reference = run(&["opt", module, "--jobs", "1"]).stdout;

    for mmap in [false, true] {
        let cache_dir = dir.join(format!("cache_mmap_{mmap}"));
        let cache = cache_dir.to_str().unwrap();
        let mut base = vec!["opt", module, "--cache-dir", cache];
        if mmap {
            base.push("--mmap");
        }

        // Cold run fills the cache; its stdout must already match.
        let cold = run(&[&base[..], &["--jobs", "2"]].concat()).stdout;
        assert_eq!(cold, reference, "cold cached run diverges (mmap={mmap})");

        // Warm runs replay every verdict from disk — through the mapping
        // when --mmap is on — and must not change a byte at any jobs
        // count, nor when the replaying side has --mmap toggled.
        for jobs in ["1", "2", "8"] {
            let warm = run(&[&base[..], &["--jobs", jobs]].concat()).stdout;
            assert_eq!(
                warm, reference,
                "warm stdout diverges at jobs={jobs} mmap={mmap}"
            );
        }
        let other = if mmap {
            run(&["opt", module, "--cache-dir", cache, "--jobs", "2"]).stdout
        } else {
            run(&["opt", module, "--cache-dir", cache, "--jobs", "2", "--mmap"]).stdout
        };
        assert_eq!(
            other, reference,
            "toggling --mmap over a warm cache diverges"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A daemon child process whose port was scraped from its stdout.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn start(extra_args: &[&str]) -> Daemon {
        let mut child = Command::new(bin())
            .arg("serve")
            .args(["--addr", "127.0.0.1:0"])
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("daemon spawns");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("daemon announces its address");
        let addr = line
            .trim()
            .strip_prefix("listening on http://")
            .unwrap_or_else(|| panic!("unexpected announce line: {line:?}"))
            .to_string();
        Daemon { child, addr }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn warm_served_text_responses_are_byte_identical_with_and_without_mmap() {
    let dir = tmpdir("serve");
    let module = gen_module(&dir, 98);
    let ir = std::fs::read(&module).unwrap();
    let reference = run(&["opt", module.to_str().unwrap(), "--jobs", "1"]).stdout;

    for mmap in [false, true] {
        let cache_dir = dir.join(format!("srv_cache_{mmap}"));
        let cache = cache_dir.to_str().unwrap();
        let mut args = vec!["--jobs", "2", "--cache-dir", cache];
        if mmap {
            args.push("--mmap");
        }
        let daemon = Daemon::start(&args);
        let post = || {
            let (status, _, body) = call(
                &daemon.addr,
                "POST",
                "/v1/validate",
                &[("Accept", "text/plain")],
                &ir,
            )
            .unwrap();
            assert_eq!(status, 200);
            body
        };
        let cold = post();
        assert_eq!(cold, reference, "cold served bytes diverge (mmap={mmap})");
        // The replay reads cached verdicts back — via the mapping when
        // --mmap is on — and must reproduce the cold bytes exactly.
        let warm = post();
        assert_eq!(warm, reference, "warm served bytes diverge (mmap={mmap})");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
