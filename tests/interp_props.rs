//! Property tests for the reference interpreter — the guarantees the
//! differential-testing framework silently relies on: determinism, fuel
//! monotonicity, refinement reflexivity, and event-trace prefix stability
//! under fuel cuts.

use crellvm::gen::{generate_module, FeatureMix, GenConfig};
use crellvm::interp::{check_refinement, run_main, End, RunConfig, UndefPolicy};
use proptest::prelude::*;

fn gen(seed: u64) -> crellvm::ir::Module {
    generate_module(&GenConfig {
        seed,
        functions: 2,
        max_depth: 3,
        feature_mix: if seed.is_multiple_of(2) {
            FeatureMix::Benchmarks
        } else {
            FeatureMix::Csmith
        },
        memory: true,
        loops: true,
        ..GenConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The interpreter is a pure function of (module, config): two runs
    /// agree event-for-event. Without this, "the target's trace differs
    /// from the source's" would be meaningless.
    #[test]
    fn runs_are_deterministic(seed in 0u64..5000, env in 0u64..8, undef in 0u64..4) {
        let m = gen(seed);
        let cfg = RunConfig {
            env_seed: env,
            undef: if undef == 0 { UndefPolicy::Zero } else { UndefPolicy::Seeded(undef) },
            ..RunConfig::default()
        };
        prop_assert_eq!(run_main(&m, &cfg), run_main(&m, &cfg));
    }

    /// Every run refines itself (reflexivity of the refinement checker).
    #[test]
    fn refinement_is_reflexive(seed in 0u64..5000) {
        let a = run_main(&gen(seed), &RunConfig::default());
        prop_assert!(check_refinement(&a, &a).is_ok(), "run does not refine itself");
    }

    /// Fuel is monotone: a run that finished within `f` steps is
    /// reproduced exactly by any larger fuel budget.
    #[test]
    fn fuel_is_monotone(seed in 0u64..5000, extra in 1u64..10_000) {
        let m = gen(seed);
        let base = run_main(&m, &RunConfig::default());
        if base.end == End::OutOfFuel {
            return Ok(());
        }
        let more = run_main(&m, &RunConfig { fuel: RunConfig::default().fuel + extra, ..RunConfig::default() });
        prop_assert_eq!(base, more);
    }

    /// Cutting fuel mid-run yields a *prefix* of the full trace: the
    /// interpreter never reorders or retracts an emitted event.
    #[test]
    fn short_runs_emit_trace_prefixes(seed in 0u64..5000, frac in 0.0f64..1.0) {
        let m = gen(seed);
        let full = run_main(&m, &RunConfig::default());
        let cut = ((full.steps as f64) * frac) as u64;
        let partial = run_main(&m, &RunConfig { fuel: cut.max(1), ..RunConfig::default() });
        prop_assert!(
            partial.events.len() <= full.events.len()
                && full.events[..partial.events.len()] == partial.events[..],
            "partial trace is not a prefix: {:?} vs {:?}",
            partial.events,
            full.events
        );
    }

    /// The refinement checker is total: it never panics, whatever pair of
    /// runs it is handed — runs of unrelated programs, different undef
    /// policies, or truncated (out-of-fuel) runs.
    #[test]
    fn refinement_checker_is_total(s1 in 0u64..2000, s2 in 0u64..2000, fuel in 1u64..500, us in 0u64..4) {
        let policy = if us == 0 { UndefPolicy::Zero } else { UndefPolicy::Seeded(us) };
        let a = run_main(&gen(s1), &RunConfig { undef: policy, ..RunConfig::default() });
        let b = run_main(&gen(s2), &RunConfig { fuel, ..RunConfig::default() });
        let _ = check_refinement(&a, &b); // any Result is fine; panics are not
        let _ = check_refinement(&b, &a);
    }
}
