//! Golden tests for the `--progress json` heartbeat: the line format is
//! machine-consumed (dashboards, CI log scrapers), so its schema — key
//! set, key order, types — is pinned here byte-for-byte. Breaking it
//! silently would break every consumer; breaking this test first makes
//! the change deliberate.

use crellvm::telemetry::json::{parse, Value};
use crellvm::telemetry::{Progress, ProgressMode};
use std::process::Command;
use std::time::Duration;

/// The exact serialized heartbeat for a fixed state and elapsed time.
/// Keys are alphabetically ordered (BTreeMap) and floats render via
/// Rust's shortest-representation `to_string`.
#[test]
fn json_heartbeat_bytes_are_golden() {
    let p = Progress::new(ProgressMode::Json, "opt", 8);
    p.add_done(4);
    p.add_cache_hit();
    p.add_cache_miss();
    let line = p.line_at(Duration::from_secs(2));
    assert_eq!(
        line,
        "{\"cache_hits\":1,\"cache_misses\":1,\"done\":4,\"elapsed_ms\":2000,\
         \"eta_s\":2,\"label\":\"opt\",\"rate_per_s\":2,\"total\":8}"
    );
}

/// The alarm-reporting variant (fuzz) adds exactly one key.
#[test]
fn json_heartbeat_with_alarms_is_golden() {
    let p = Progress::new_with_alarms(ProgressMode::Json, "fuzz", 10);
    p.add_done(5);
    p.add_alarms(1);
    let line = p.line_at(Duration::from_secs(1));
    assert_eq!(
        line,
        "{\"alarms\":1,\"cache_hits\":0,\"cache_misses\":0,\"done\":5,\
         \"elapsed_ms\":1000,\"eta_s\":1,\"label\":\"fuzz\",\"rate_per_s\":5,\"total\":10}"
    );
}

/// When the run is complete or rate is zero, `eta_s` must be JSON null —
/// never a sentinel number.
#[test]
fn json_heartbeat_eta_null_when_done() {
    let p = Progress::new(ProgressMode::Json, "opt", 4);
    p.add_done(4);
    let line = p.line_at(Duration::from_secs(1));
    let doc = parse(&line).unwrap();
    assert_eq!(doc.get("eta_s"), Some(&Value::Null));
}

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_crellvm")
}

/// End to end: every heartbeat line a real `opt --progress json` run
/// emits on stderr conforms to the schema, stdout stays byte-identical
/// to a silent run, and the final line reports completion.
#[test]
fn opt_progress_json_lines_conform_and_leave_stdout_untouched() {
    let dir = std::env::temp_dir().join(format!("crellvm_prog_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let module = dir.join("m.cll");
    let out = Command::new(bin())
        .args([
            "gen",
            "--seed",
            "5",
            "--functions",
            "4",
            "--out",
            module.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    let silent = Command::new(bin())
        .args(["opt", module.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(silent.status.success());

    let noisy = Command::new(bin())
        .args(["opt", module.to_str().unwrap(), "--progress", "json"])
        .output()
        .unwrap();
    assert!(noisy.status.success());
    assert_eq!(
        silent.stdout, noisy.stdout,
        "--progress must never perturb stdout"
    );

    let stderr = String::from_utf8(noisy.stderr).unwrap();
    let lines: Vec<&str> = stderr.lines().filter(|l| l.starts_with('{')).collect();
    assert!(!lines.is_empty(), "no heartbeat lines on stderr: {stderr}");
    const REQUIRED: [&str; 8] = [
        "label",
        "done",
        "total",
        "rate_per_s",
        "eta_s",
        "elapsed_ms",
        "cache_hits",
        "cache_misses",
    ];
    for line in &lines {
        let doc = parse(line).unwrap_or_else(|e| panic!("bad heartbeat {line}: {e}"));
        let obj = doc.as_obj().expect("heartbeat is an object");
        for key in REQUIRED {
            assert!(obj.contains_key(key), "missing {key} in {line}");
        }
        assert_eq!(obj.len(), REQUIRED.len(), "unexpected extra keys: {line}");
        assert_eq!(doc.get("label").and_then(Value::as_str), Some("opt"));
        // done/total/elapsed_ms/cache counters are unsigned integers.
        for key in ["done", "total", "elapsed_ms", "cache_hits", "cache_misses"] {
            assert!(
                doc.get(key).and_then(Value::as_u64).is_some(),
                "{key} not a u64 in {line}"
            );
        }
    }
    // The final heartbeat reports the run complete: done == total > 0.
    let last = parse(lines.last().unwrap()).unwrap();
    let done = last.get("done").and_then(Value::as_u64).unwrap();
    let total = last.get("total").and_then(Value::as_u64).unwrap();
    assert_eq!(done, total);
    assert!(total > 0);
    std::fs::remove_dir_all(&dir).unwrap();
}
