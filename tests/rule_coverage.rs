//! Rule-exercise audit: a fixed 100-seed corpus must fire ≥90% of the
//! registered inference rules.
//!
//! The corpus is the first 100 generator seeds run through the full
//! pipeline under both compiler models (honest, and the LLVM 3.7.1 bug
//! population — some rules, like the PR33673 `intro_lessdef_undef`
//! shape, only appear on buggy proof paths). Coverage is read from the
//! campaign's merged `checker.rule.*` telemetry counters, so this test
//! also pins that the fuzzing engine's accounting sees every rule the
//! checker applies.
//!
//! When the assertion fails, the unexercised remainder is printed so a
//! regression in the generator mix is immediately visible.

use crellvm::erhl::all_rule_names;
use crellvm::fuzz::{run_campaign, CampaignConfig};
use crellvm::telemetry::Telemetry;
use std::collections::BTreeSet;

#[test]
fn corpus_fires_at_least_90_percent_of_rules() {
    let mut fired: BTreeSet<String> = BTreeSet::new();
    for compiler in ["none", "3.7.1"] {
        let cfg = CampaignConfig {
            seed_start: 0,
            seed_end: 100,
            jobs: 0,
            mutate_rate: 0.0,
            bugs: CampaignConfig::bugs_for_compiler(compiler).unwrap(),
            compiler: compiler.into(),
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg, &Telemetry::disabled());
        assert!(
            report.rule_coverage.values().all(|n| *n > 0),
            "coverage table contains zero-count rules"
        );
        fired.extend(report.rule_coverage.keys().cloned());
    }

    let registered: BTreeSet<String> = all_rule_names().iter().map(|s| s.to_string()).collect();
    let unknown: Vec<&String> = fired.difference(&registered).collect();
    assert!(
        unknown.is_empty(),
        "telemetry counted rules missing from all_rule_names(): {unknown:?}"
    );

    let unexercised: Vec<&String> = registered.difference(&fired).collect();
    let needed = (registered.len() * 9).div_ceil(10);
    println!(
        "rule coverage: {}/{} fired (need {needed}); unexercised: {unexercised:?}",
        fired.len(),
        registered.len()
    );
    assert!(
        fired.len() >= needed,
        "only {}/{} registered inference rules fired (need {needed}); \
         unexercised remainder: {unexercised:?}",
        fired.len(),
        registered.len()
    );
}
