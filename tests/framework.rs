//! The full Fig 1 framework flow, end to end:
//!
//! 1. compile `src.cll` with the "original" optimizer → `tgt.cll`;
//! 2. compile again with the proof-generating optimizer → `tgt'.cll` +
//!    proof (serialized to JSON on disk, as the paper does);
//! 3. the proof checker validates `src → tgt'`;
//! 4. `llvm-diff` confirms `tgt` and `tgt'` are alpha-equivalent.
//!
//! Plus parser/printer and serialization round-trips over the generated
//! corpus.

use crellvm::diff::diff_modules;
use crellvm::erhl::{proof_from_json, proof_to_json, validate, Verdict};
use crellvm::gen::{generate_module, GenConfig};
use crellvm::ir::{parse_module, printer::print_module, verify_module};
use crellvm::passes::pipeline::PASS_ORDER;
use crellvm::passes::{gvn, instcombine, licm, mem2reg, PassConfig, PassOutcome};

fn run_pass(name: &str, m: &crellvm::ir::Module, config: &PassConfig) -> PassOutcome {
    match name {
        "mem2reg" => mem2reg(m, config),
        "gvn" => gvn(m, config),
        "licm" => licm(m, config),
        "instcombine" => instcombine(m, config),
        other => panic!("unknown pass {other}"),
    }
}

#[test]
fn fig1_framework_flow() {
    let dir = std::env::temp_dir().join("crellvm_framework_test");
    std::fs::create_dir_all(&dir).unwrap();
    let config = PassConfig::default();

    for seed in 0..8u64 {
        let src = generate_module(&GenConfig {
            seed,
            functions: 3,
            ..GenConfig::default()
        });

        // Step 1: the "original" compiler.
        let mut tgt = src.clone();
        for pass in PASS_ORDER {
            tgt = run_pass(pass, &tgt, &config).module;
        }

        // Step 2: the proof-generating compiler, writing everything to
        // disk as the paper's pipeline does.
        let mut tgt_prime = src.clone();
        let mut proof_files = Vec::new();
        for pass in PASS_ORDER {
            let out = run_pass(pass, &tgt_prime, &config);
            for (i, unit) in out.proofs.iter().enumerate() {
                let path = dir.join(format!("s{seed}_{pass}_{i}.proof.json"));
                std::fs::write(&path, proof_to_json(unit).unwrap()).unwrap();
                proof_files.push(path);
            }
            tgt_prime = out.module;
        }
        std::fs::write(dir.join(format!("s{seed}_src.cll")), print_module(&src)).unwrap();
        std::fs::write(
            dir.join(format!("s{seed}_tgt.cll")),
            print_module(&tgt_prime),
        )
        .unwrap();

        // Step 3: an independent process (simulated: fresh parse of
        // everything from disk) checks the proofs.
        for path in &proof_files {
            let json = std::fs::read_to_string(path).unwrap();
            let unit = proof_from_json(&json).unwrap();
            match validate(&unit) {
                Ok(Verdict::Valid | Verdict::NotSupported(_)) => {}
                Err(e) => panic!("seed {seed}: {e}"),
            }
        }

        // Step 4: llvm-diff between tgt and tgt'.
        diff_modules(&tgt, &tgt_prime).expect("tgt and tgt' are alpha-equivalent");

        // And the on-disk IR round-trips.
        let reparsed =
            parse_module(&std::fs::read_to_string(dir.join(format!("s{seed}_tgt.cll"))).unwrap())
                .expect("printed target parses");
        verify_module(&reparsed).unwrap();
        diff_modules(&reparsed, &tgt_prime).expect("round-tripped target is alpha-equivalent");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Printer/parser round-trip over the generated corpus (beyond the unit
/// tests' hand-written samples).
#[test]
fn print_parse_roundtrip_corpus() {
    for seed in 0..25u64 {
        let m = generate_module(&GenConfig {
            seed,
            functions: 3,
            unsupported_rate: 0.2,
            ..GenConfig::default()
        });
        let text = print_module(&m);
        let m2 = parse_module(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
        verify_module(&m2).unwrap();
        // Printing is a fixpoint after one round trip.
        assert_eq!(print_module(&m2), text, "seed {seed}");
        // And alpha-equivalent to the original.
        diff_modules(&m, &m2).unwrap();
    }
}

/// Proof serialization round-trips for every pass over the corpus.
#[test]
fn proof_serialization_roundtrip_corpus() {
    let config = PassConfig::default();
    for seed in 0..10u64 {
        let m = generate_module(&GenConfig {
            seed,
            functions: 2,
            ..GenConfig::default()
        });
        for pass in PASS_ORDER {
            let out = run_pass(pass, &m, &config);
            for unit in &out.proofs {
                let json = proof_to_json(unit).unwrap();
                let back = proof_from_json(&json).unwrap();
                assert_eq!(unit.assertions, back.assertions);
                assert_eq!(unit.infrules, back.infrules);
                assert_eq!(unit.alignment, back.alignment);
                assert_eq!(validate(unit).is_ok(), validate(&back).is_ok());
            }
        }
    }
}
