//! End-to-end campaign properties: the reproducibility contract, the
//! historical-bug detection requirement, and the soundness-alarm exit
//! path under a deliberately weakened checker.

use crellvm::erhl::CheckerConfig;
use crellvm::fuzz::{run_campaign, write_findings, CampaignConfig, FindingKind, OracleConfig};
use crellvm::gen::GEN_PRNG_VERSION;
use crellvm::interp::Tier;
use crellvm::telemetry::Telemetry;

fn campaign(compiler: &str, seeds: std::ops::Range<u64>, mutate: f64) -> CampaignConfig {
    CampaignConfig {
        seed_start: seeds.start,
        seed_end: seeds.end,
        jobs: 2,
        mutate_rate: mutate,
        bugs: CampaignConfig::bugs_for_compiler(compiler).unwrap(),
        compiler: compiler.into(),
        ..CampaignConfig::default()
    }
}

#[test]
fn reports_are_byte_identical_across_jobs_and_tiers() {
    // The report is a pure function of (seed range, config): neither the
    // worker count nor the interpreter tier executing the refinement leg
    // may leak into a single byte of it.
    let mut texts = Vec::new();
    for tier in [Tier::Tree, Tier::Bytecode] {
        for jobs in [1, 2, 8] {
            let cfg = CampaignConfig {
                jobs,
                oracle: OracleConfig {
                    tier,
                    ..OracleConfig::default()
                },
                ..campaign("3.7.1", 0..25, 0.3)
            };
            texts.push(run_campaign(&cfg, &Telemetry::disabled()).to_json());
        }
    }
    for (i, t) in texts.iter().enumerate().skip(1) {
        assert_eq!(
            &texts[0], t,
            "report {i} (tier x jobs grid) differs from the tree/jobs=1 baseline"
        );
    }
}

#[test]
fn miscompiled_lowering_surfaces_as_tier_divergence_finding() {
    // End-to-end negative control for the differential tier: a sabotaged
    // bytecode lowering (sub compiled as add) must surface as a
    // TierDivergence finding with a minimized, replayable repro — not be
    // silently absorbed by the oracle verdict lattice.
    let cfg = CampaignConfig {
        bc_miscompile: true,
        oracle: OracleConfig {
            tier: Tier::Differential,
            ..OracleConfig::default()
        },
        ..campaign("none", 0..6, 0.0)
    };
    let report = run_campaign(&cfg, &Telemetry::disabled());
    assert!(
        report.verdicts["tier_divergence"] > 0,
        "sub-as-add sabotage must diverge somewhere in 6 seeds: {:?}",
        report.verdicts
    );
    let f = report
        .findings_of(FindingKind::TierDivergence)
        .next()
        .expect("divergence verdicts must file findings");
    assert!(f.minimized, "divergence at seed {} not minimized", f.seed);
    assert!(
        f.repro.ends_with("--tier differential"),
        "repro must replay under the differential tier: {}",
        f.repro
    );
    let bundle = f
        .forensic_bundle_json
        .as_deref()
        .expect("divergence finding lacks a forensic bundle");
    assert!(bundle.contains("minimized_module"));
    // The same seeds with a healthy lowering are divergence-free.
    let clean = run_campaign(
        &CampaignConfig {
            bc_miscompile: false,
            ..cfg.clone()
        },
        &Telemetry::disabled(),
    );
    assert_eq!(clean.verdicts["tier_divergence"], 0);
}

#[test]
fn buggy_compiler_yields_attributed_minimized_findings() {
    // A bounded slice of the acceptance campaign: each historical bug
    // must be caught and attributed, and every organic finding must carry
    // a replayable ddmin forensic bundle. (The full 0..500 criterion runs
    // in CI's fuzz-smoke job where the release binary is available.)
    let report = run_campaign(&campaign("3.7.1", 0..120, 0.25), &Telemetry::disabled());
    assert!(!report.has_soundness_alarm());
    for bug in ["pr24179", "pr33673", "pr28562", "d38619"] {
        assert!(
            report.attributed.get(bug).copied().unwrap_or(0) >= 1,
            "historical bug {bug} not caught in 120 seeds; attributed: {:?}",
            report.attributed
        );
    }
    for f in report.findings_of(FindingKind::Rejection) {
        assert!(f.minimized, "unminimized rejection at seed {}", f.seed);
        assert!(
            f.forensic_bundle_json.is_some(),
            "rejection at seed {} lacks a forensic bundle",
            f.seed
        );
        assert!(
            f.repro
                .starts_with(&format!("crellvm fuzz --seeds {}..{}", f.seed, f.seed + 1)),
            "repro line does not replay the single seed: {}",
            f.repro
        );
        assert_eq!(f.gen_prng_version, GEN_PRNG_VERSION);
    }
}

#[test]
fn clean_compiler_yields_no_findings() {
    let report = run_campaign(&campaign("none", 0..120, 0.25), &Telemetry::disabled());
    assert!(!report.has_soundness_alarm());
    assert_eq!(report.verdicts["completeness_gap"], 0);
    assert_eq!(report.verdicts["soundness_alarm"], 0);
    assert!(
        report.findings.is_empty(),
        "clean compiler produced findings: {:?}",
        report
            .findings
            .iter()
            .map(|f| (f.seed, f.pass.clone(), f.kind))
            .collect::<Vec<_>>()
    );
}

#[test]
fn weakened_checker_trips_the_soundness_alarm_path() {
    // With the checker forced to accept everything, injected
    // miscompilations must surface as soundness alarms (the interpreter
    // leg catching what the checker leg waved through), each minimized by
    // ddmin over its mutation plan and carrying a one-seed repro line.
    let cfg = CampaignConfig {
        checker: CheckerConfig::weakened_accept_all(),
        ..campaign("none", 0..40, 0.6)
    };
    let report = run_campaign(&cfg, &Telemetry::disabled());
    assert!(
        report.has_soundness_alarm(),
        "no soundness alarm in 40 seeds at mutate-rate 0.6 under an accept-all checker"
    );
    for f in report.findings_of(FindingKind::SoundnessAlarm) {
        assert!(f.minimized);
        assert!(
            !f.mutations.is_empty(),
            "alarm at seed {} minimized to an empty plan (organic alarm under accept-all?)",
            f.seed
        );
        assert!(
            !f.mutation_classes.is_empty(),
            "alarm at seed {} lost its bug-class tags",
            f.seed
        );
        assert!(f
            .repro
            .contains(&format!("--seeds {}..{}", f.seed, f.seed + 1)));
    }
    // Minimization must have actually shrunk or kept plans 1-minimal:
    // every kept mutation is necessary, so the smallest alarms are single
    // mutations — assert at least one alarm minimized down to one.
    assert!(
        report
            .findings_of(FindingKind::SoundnessAlarm)
            .any(|f| f.mutations.len() == 1),
        "no alarm minimized to a single mutation"
    );
}

#[test]
fn findings_directory_roundtrips() {
    let dir = std::env::temp_dir().join(format!("crellvm-fuzz-test-{}", std::process::id()));
    let report = run_campaign(&campaign("3.7.1", 0..40, 0.25), &Telemetry::disabled());
    let written = write_findings(&report, &dir).unwrap();
    assert_eq!(written.len(), report.findings.len() + 1);
    let text = std::fs::read_to_string(dir.join("report.json")).unwrap();
    let back = crellvm::fuzz::CampaignReport::from_json(&text).unwrap();
    assert_eq!(back.to_json(), report.to_json());
    std::fs::remove_dir_all(&dir).ok();
}
