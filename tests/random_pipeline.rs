//! Randomized end-to-end testing: generated programs go through the full
//! validated pipeline; every proof must check, and the optimized program
//! must refine the original under the reference interpreter.
//!
//! This is the CSmith-style experiment of the paper's §7 in miniature
//! (the full 1000-program run lives in the benchmark harness).

use crellvm::gen::{generate_module, FeatureMix, GenConfig};
use crellvm::interp::{check_refinement, run_main, RunConfig, UndefPolicy};
use crellvm::ir::verify_module;
use crellvm::passes::pipeline::{run_pipeline, StepOutcome};
use crellvm::passes::PassConfig;

fn exercise(seed: u64, unsupported_rate: f64, mix: FeatureMix) {
    let cfg = GenConfig {
        seed,
        functions: 4,
        unsupported_rate,
        feature_mix: mix,
        ..GenConfig::default()
    };
    let m = generate_module(&cfg);
    verify_module(&m).unwrap_or_else(|e| panic!("seed {seed}: generated module invalid: {e}"));

    let (out, report) = run_pipeline(&m, &PassConfig::default());
    verify_module(&out)
        .unwrap_or_else(|e| panic!("seed {seed}: optimized module invalid: {e}\n{out}"));

    for step in &report.steps {
        if let StepOutcome::Failed(reason) = &step.outcome {
            panic!(
                "seed {seed}: validation failed for @{} in {}: {reason}\n--- source ---\n{}\n--- optimized ---\n{}",
                step.func,
                step.pass,
                m,
                out
            );
        }
    }

    // Differential execution under two undef policies.
    for policy in [UndefPolicy::Zero, UndefPolicy::Seeded(seed ^ 0xABCD)] {
        let rc = RunConfig {
            undef: policy,
            ..RunConfig::default()
        };
        let src_run = run_main(&m, &rc);
        let tgt_run = run_main(&out, &rc);
        check_refinement(&src_run, &tgt_run).unwrap_or_else(|e| {
            panic!(
                "seed {seed}: behaviour NOT preserved ({e})\n--- source ---\n{m}\n--- optimized ---\n{out}"
            )
        });
    }
}

#[test]
fn random_programs_validate_and_refine() {
    for seed in 0..40 {
        exercise(seed, 0.0, FeatureMix::Benchmarks);
    }
}

#[test]
fn random_programs_with_unsupported_features() {
    for seed in 100..120 {
        exercise(seed, 0.3, FeatureMix::Benchmarks);
    }
}

#[test]
fn random_programs_csmith_mix() {
    for seed in 200..215 {
        exercise(seed, 0.28, FeatureMix::Csmith);
    }
}

#[test]
fn unsupported_rate_produces_ns_only_in_affected_passes() {
    // CSmith mix (lifetime intrinsics): NS must show up for mem2reg only.
    let cfg = GenConfig {
        seed: 9,
        functions: 20,
        unsupported_rate: 1.0,
        feature_mix: FeatureMix::Csmith,
        ..GenConfig::default()
    };
    let m = generate_module(&cfg);
    let (_, report) = run_pipeline(&m, &PassConfig::default());
    let ns_passes: std::collections::HashSet<&str> = report
        .steps
        .iter()
        .filter(|s| matches!(s.outcome, StepOutcome::NotSupported(_)))
        .map(|s| s.pass.as_str())
        .collect();
    assert!(ns_passes.contains("mem2reg"));
    assert!(
        !ns_passes.contains("gvn"),
        "lifetime intrinsics only block mem2reg"
    );
    assert_eq!(report.failures(), 0);
}
