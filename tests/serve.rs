//! End-to-end tests of the serving plane: a real `crellvm serve` daemon
//! process, spoken to over loopback HTTP, cross-checked against the
//! offline `crellvm opt` path byte for byte.

use crellvm::serve::http::call;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_crellvm")
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crellvm_serve_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A daemon child process whose port was scraped from its stdout.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn start(extra_args: &[&str]) -> Daemon {
        let mut child = Command::new(bin())
            .arg("serve")
            .args(["--addr", "127.0.0.1:0"])
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("daemon spawns");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("daemon announces its address");
        let addr = line
            .trim()
            .strip_prefix("listening on http://")
            .unwrap_or_else(|| panic!("unexpected announce line: {line:?}"))
            .to_string();
        Daemon { child, addr }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Generate a deterministic test module file, returning its path.
fn gen_module(dir: &std::path::Path, seed: u64) -> PathBuf {
    let path = dir.join(format!("m{seed}.cll"));
    let out = Command::new(bin())
        .args([
            "gen",
            "--seed",
            &seed.to_string(),
            "--functions",
            "3",
            "--out",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    path
}

#[test]
fn served_verdicts_are_byte_identical_to_offline_opt_warm_and_cold() {
    let dir = tmpdir("identity");
    let module = gen_module(&dir, 42);
    let ir = std::fs::read(&module).unwrap();

    // The offline reference: `crellvm opt` at two thread counts.
    let offline = Command::new(bin())
        .args(["opt", module.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(offline.status.success());
    let offline_j1 = Command::new(bin())
        .args(["opt", module.to_str().unwrap(), "--jobs", "1"])
        .output()
        .unwrap();
    assert_eq!(
        offline.stdout, offline_j1.stdout,
        "offline output must already be jobs-stable"
    );

    let daemon = Daemon::start(&["--jobs", "3"]);
    let post = || {
        let (status, _, body) = call(
            &daemon.addr,
            "POST",
            "/v1/validate",
            &[("Accept", "text/plain")],
            &ir,
        )
        .unwrap();
        assert_eq!(status, 200);
        body
    };
    let cold = post();
    assert_eq!(
        cold, offline.stdout,
        "cold served verdicts differ from offline opt"
    );
    // Second request replays from the content-addressed cache; the bytes
    // must not change.
    let warm = post();
    assert_eq!(warm, offline.stdout, "warm served verdicts differ");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn daemon_probes_metrics_and_access_log_work_end_to_end() {
    let dir = tmpdir("plane");
    let module = gen_module(&dir, 7);
    let ir = std::fs::read(&module).unwrap();
    let access_log = dir.join("access.jsonl");
    let daemon = Daemon::start(&["--access-log", access_log.to_str().unwrap()]);

    let (h, _, _) = call(&daemon.addr, "GET", "/healthz", &[], &[]).unwrap();
    assert_eq!(h, 200);
    let (r, _, body) = call(&daemon.addr, "GET", "/readyz", &[], &[]).unwrap();
    assert_eq!(r, 200);
    assert_eq!(body, b"ready\n");

    let (status, headers, _) = call(
        &daemon.addr,
        "POST",
        "/v1/validate",
        &[("X-Crellvm-Tenant", "acme")],
        &ir,
    )
    .unwrap();
    assert_eq!(status, 200);
    let trace_id = headers.get("x-crellvm-trace-id").unwrap().clone();

    // /metrics parses as OpenMetrics and shows the request.
    let (status, _, body) = call(&daemon.addr, "GET", "/metrics", &[], &[]).unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    let view = crellvm::serve::top::parse_openmetrics(&text).unwrap();
    assert_eq!(view.counter("serve_requests"), 1);
    assert_eq!(view.counter("serve_tenant_acme_requests"), 1);
    assert!(view.histograms.contains_key("serve_latency_us"));
    assert_eq!(view.gauge("serve_ready"), 1);

    // The access log carries the same trace id, structured.
    let log = std::fs::read_to_string(&access_log).unwrap();
    let line = log.lines().next().expect("one access line");
    let doc = crellvm::telemetry::json::parse(line).unwrap();
    assert_eq!(
        doc.get("trace_id").and_then(|v| v.as_str()),
        Some(trace_id.as_str())
    );
    assert_eq!(doc.get("tenant").and_then(|v| v.as_str()), Some("acme"));
    assert_eq!(doc.get("status").and_then(|v| v.as_u64()), Some(200));
    assert!(doc.get("latency_us").and_then(|v| v.as_u64()).is_some());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn top_once_renders_a_fleet_view_from_a_live_daemon() {
    let dir = tmpdir("top");
    let module = gen_module(&dir, 9);
    let ir = std::fs::read(&module).unwrap();
    let daemon = Daemon::start(&[]);
    let (status, _, _) = call(&daemon.addr, "POST", "/v1/validate", &[], &ir).unwrap();
    assert_eq!(status, 200);

    let out = Command::new(bin())
        .args(["top", "--addr", &daemon.addr, "--once"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let screen = String::from_utf8_lossy(&out.stdout);
    assert!(screen.contains("fleet view"), "{screen}");
    assert!(screen.contains("requests"), "{screen}");
    assert!(screen.contains("verdicts:"), "{screen}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn serve_bench_writes_report_and_history() {
    let dir = tmpdir("bench");
    let out_path = dir.join("BENCH_serve.json");
    let history_path = dir.join("BENCH_history.jsonl");
    let out = Command::new(bin())
        .args([
            "serve",
            "--bench",
            "--requests",
            "4",
            "--modules",
            "2",
            "--scale",
            "0.0005",
            "--out",
            out_path.to_str().unwrap(),
            "--history",
            history_path.to_str().unwrap(),
        ])
        .env("CRELLVM_GIT_SHA", "testsha")
        .env("CRELLVM_BENCH_TIMESTAMP", "2026-01-01T00:00:00Z")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stdout: {} stderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let report = std::fs::read_to_string(&out_path).unwrap();
    for key in ["\"rps\"", "\"p50\"", "\"p95\"", "\"p99\"", "\"cache_hits\""] {
        assert!(report.contains(key), "missing {key} in {report}");
    }
    let history = crellvm::bench::history::load(&history_path).unwrap();
    assert_eq!(history.len(), 1);
    assert_eq!(history[0].git_sha, "testsha");
    assert!(history[0].metrics.contains_key("serve.rps"));
    assert!(history[0].metrics.contains_key("serve.p99_ms"));

    // The sentinel understands the new metrics (throughput is
    // higher-is-better): an identical second record passes compare.
    let out2 = Command::new(bin())
        .args([
            "serve",
            "--bench",
            "--requests",
            "4",
            "--modules",
            "2",
            "--scale",
            "0.0005",
            "--out",
            out_path.to_str().unwrap(),
            "--history",
            history_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out2.status.success());
    let cmp = Command::new(bin())
        .args([
            "bench",
            "compare",
            "--history",
            history_path.to_str().unwrap(),
            // Loopback micro-latencies jitter hard in CI; the identity
            // property under test is schema/direction, not noise.
            "--rel-tol",
            "1000",
        ])
        .output()
        .unwrap();
    let cmp_out = String::from_utf8_lossy(&cmp.stdout);
    assert!(cmp.status.success(), "{cmp_out}");
    assert!(cmp_out.contains("serve.rps"), "{cmp_out}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn queue_capacity_zero_turns_requests_away_with_retry_after() {
    let dir = tmpdir("backpressure");
    let module = gen_module(&dir, 3);
    let ir = std::fs::read(&module).unwrap();
    let daemon = Daemon::start(&["--queue", "0"]);
    let (status, headers, _) = call(&daemon.addr, "POST", "/v1/validate", &[], &ir).unwrap();
    assert_eq!(status, 429);
    assert!(headers.contains_key("retry-after"));
    let (r, _, _) = call(&daemon.addr, "GET", "/readyz", &[], &[]).unwrap();
    assert_eq!(r, 503, "a saturated daemon must not report ready");
    std::fs::remove_dir_all(&dir).unwrap();
}
