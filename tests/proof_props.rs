//! Property tests for proofs as *artifacts*: JSON round-trips of real
//! generated proofs, and robustness of the deserializer and checker
//! against corrupted or truncated proofs (a validator consuming
//! compiler-produced files must never panic on a bad one).

use crellvm::erhl::{
    proof_from_bytes, proof_from_json, proof_to_bytes, proof_to_bytes_v2, proof_to_json, validate,
    ProofUnit, Verdict,
};
use crellvm::gen::{generate_module, FeatureMix, GenConfig};
use crellvm::passes::{gvn, instcombine, licm, mem2reg, PassConfig};
use proptest::prelude::*;

/// Run the four passes in pipeline order, collecting every proof unit.
fn proofs_for_seed(seed: u64) -> Vec<ProofUnit> {
    let cfg = GenConfig {
        seed,
        functions: 2,
        max_depth: 3,
        feature_mix: if seed.is_multiple_of(2) {
            FeatureMix::Benchmarks
        } else {
            FeatureMix::Csmith
        },
        ..GenConfig::default()
    };
    let pc = PassConfig::default();
    let mut m = generate_module(&cfg);
    let mut proofs = Vec::new();
    for pass in [mem2reg, instcombine, gvn, licm] {
        let out = pass(&m, &pc);
        proofs.extend(out.proofs);
        m = out.module;
    }
    proofs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Serializing a generated proof and reading it back yields a unit
    /// that (a) re-serializes to the same bytes and (b) gets the same
    /// verdict from the checker.
    #[test]
    fn json_roundtrip_preserves_verdict(seed in 0u64..4000) {
        for unit in proofs_for_seed(seed) {
            let json = proof_to_json(&unit).unwrap();
            let back = proof_from_json(&json).unwrap();
            prop_assert_eq!(proof_to_json(&back).unwrap(), json.clone());
            let (v1, v2) = (validate(&unit), validate(&back));
            match (&v1, &v2) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "verdicts diverge: {v1:?} vs {v2:?}"),
            }
        }
    }

    /// The compact binary format (the paper's §7 remedy for the I/O
    /// bottleneck) round-trips every generated proof with the same
    /// verdict, and is consistently smaller than the JSON encoding.
    #[test]
    fn binary_roundtrip_preserves_verdict_and_shrinks(seed in 0u64..4000) {
        for unit in proofs_for_seed(seed) {
            let bytes = proof_to_bytes(&unit).unwrap();
            let back = proof_from_bytes(&bytes).unwrap();
            prop_assert_eq!(proof_to_bytes(&back).unwrap(), bytes.clone());
            match (validate(&unit), validate(&back)) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(_), Err(_)) => {}
                other => prop_assert!(false, "verdicts diverge: {other:?}"),
            }
            let json = proof_to_json(&unit).unwrap();
            prop_assert!(
                bytes.len() < json.len(),
                "binary ({}) not smaller than JSON ({})", bytes.len(), json.len()
            );
        }
    }

    /// One-byte corruption of a binary proof never panics the
    /// deserializer, and whatever still decodes never panics the checker.
    #[test]
    fn corrupted_proof_bytes_never_panic(seed in 0u64..400, frac in 0.0f64..1.0, byte in any::<u8>()) {
        let Some(unit) = proofs_for_seed(seed).into_iter().next() else { return Ok(()) };
        let mut bytes = proof_to_bytes(&unit).unwrap();
        if bytes.is_empty() { return Ok(()) }
        let pos = ((bytes.len() - 1) as f64 * frac) as usize;
        bytes[pos] = byte;
        if let Ok(mutated) = proof_from_bytes(&bytes) {
            let _ = validate(&mutated); // any Result is fine; panics are not
        }
    }

    /// One-character corruption of proof JSON never panics the
    /// deserializer, and whatever still parses never panics the checker.
    #[test]
    fn corrupted_proof_json_never_panics(seed in 0u64..400, frac in 0.0f64..1.0, ch in any::<char>()) {
        let Some(unit) = proofs_for_seed(seed).into_iter().next() else { return Ok(()) };
        let mut json = proof_to_json(&unit).unwrap();
        let nchars = json.chars().count();
        let pos = ((nchars.saturating_sub(1)) as f64 * frac) as usize;
        let Some((idx, old)) = json.char_indices().nth(pos) else { return Ok(()) };
        json.replace_range(idx..idx + old.len_utf8(), &ch.to_string());
        if let Ok(mutated) = proof_from_json(&json) {
            let _ = validate(&mutated); // any Result is fine; panics are not
        }
    }

    /// Truncating proof JSON at any byte boundary is a clean parse error,
    /// never a panic.
    #[test]
    fn truncated_proof_json_is_clean_error(seed in 0u64..400, frac in 0.0f64..1.0) {
        let Some(unit) = proofs_for_seed(seed).into_iter().next() else { return Ok(()) };
        let json = proof_to_json(&unit).unwrap();
        let mut cut = (json.len() as f64 * frac) as usize;
        while cut > 0 && !json.is_char_boundary(cut) {
            cut -= 1;
        }
        if cut < json.len() {
            prop_assert!(proof_from_json(&json[..cut]).is_err());
        }
    }

    /// Deleting one inference-rule bundle from a valid proof never panics
    /// the checker: either the rule was redundant (still `Valid`) or the
    /// checker reports a clean inclusion/derivation failure.
    #[test]
    fn dropping_a_rule_bundle_fails_cleanly(seed in 0u64..2000, pick in 0usize..64) {
        for unit in proofs_for_seed(seed) {
            if unit.not_supported.is_some() || unit.infrules.is_empty() {
                continue;
            }
            if validate(&unit) != Ok(Verdict::Valid) {
                continue; // only mutate proofs that start out valid
            }
            let mut mutated = unit.clone();
            let key = mutated.infrules.keys().nth(pick % mutated.infrules.len()).cloned().unwrap();
            mutated.infrules.remove(&key);
            let _ = validate(&mutated); // must not panic; Err or Valid both fine
        }
    }

    /// Wire format v2 (dictionary-coded string table, deduplicated block
    /// and assertion tables) is a *lossless* recoding: every generated
    /// proof decodes back field-for-field identical, re-encodes to the
    /// same bytes, and keeps its verdict. `proof_from_bytes` sniffs the
    /// version, so v1 streams keep decoding unchanged.
    #[test]
    fn v2_roundtrip_is_the_identity_and_v1_still_sniffs(seed in 0u64..4000) {
        for unit in proofs_for_seed(seed) {
            let v2 = proof_to_bytes_v2(&unit).unwrap();
            let back = proof_from_bytes(&v2).unwrap();
            prop_assert_eq!(&back.pass, &unit.pass);
            prop_assert_eq!(&back.src, &unit.src);
            prop_assert_eq!(&back.tgt, &unit.tgt);
            prop_assert_eq!(&back.alignment, &unit.alignment);
            prop_assert_eq!(&back.assertions, &unit.assertions);
            prop_assert_eq!(&back.infrules, &unit.infrules);
            prop_assert_eq!(&back.autos, &unit.autos);
            prop_assert_eq!(&back.not_supported, &unit.not_supported);
            prop_assert_eq!(proof_to_bytes_v2(&back).unwrap(), v2.clone());
            match (validate(&unit), validate(&back)) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(_), Err(_)) => {}
                other => prop_assert!(false, "verdicts diverge: {other:?}"),
            }
            // Version sniffing: the v1 encoding of the same proof still
            // decodes through the same entry point.
            let v1 = proof_to_bytes(&unit).unwrap();
            let back1 = proof_from_bytes(&v1).unwrap();
            prop_assert_eq!(proof_to_bytes(&back1).unwrap(), v1);
        }
    }

    /// Truncating a v2 proof at any byte boundary is a clean decode
    /// error — the checksum in the container header catches every cut
    /// before the body is interpreted.
    #[test]
    fn truncated_v2_proof_is_a_clean_error(seed in 0u64..400, frac in 0.0f64..1.0) {
        let Some(unit) = proofs_for_seed(seed).into_iter().next() else { return Ok(()) };
        let bytes = proof_to_bytes_v2(&unit).unwrap();
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert!(proof_from_bytes(&bytes[..cut]).is_err());
    }

    /// Single-bit corruption anywhere in a v2 proof — header, string
    /// table, or body — never panics; past the 2-byte magic it is always
    /// a clean error thanks to the whole-stream checksum.
    #[test]
    fn bit_flipped_v2_proof_never_panics(seed in 0u64..400, frac in 0.0f64..1.0, bit in 0u32..8) {
        let Some(unit) = proofs_for_seed(seed).into_iter().next() else { return Ok(()) };
        let mut bytes = proof_to_bytes_v2(&unit).unwrap();
        let pos = ((bytes.len() - 1) as f64 * frac) as usize;
        bytes[pos] ^= 1 << bit;
        // A flip inside the magic can re-route the stream to the v1
        // sniffing path, where decoding may (rarely) succeed; any
        // decoded unit must still be checkable without panicking.
        if let Ok(mutated) = proof_from_bytes(&bytes) {
            let _ = validate(&mutated);
        }
        if pos >= 2 {
            // Past the magic the checksum makes corruption a hard error.
            prop_assert!(proof_from_bytes(&bytes).is_err());
        }
    }

    /// Erasing a mid-function assertion (keeping the slot, emptying its
    /// content) weakens the proof; the checker must handle the weaker
    /// invariant without panicking.
    #[test]
    fn weakening_an_assertion_fails_cleanly(seed in 0u64..2000, pick in 0usize..64) {
        for unit in proofs_for_seed(seed) {
            if unit.not_supported.is_some() || unit.assertions.len() < 2 {
                continue;
            }
            let mut mutated = unit.clone();
            let key = mutated.assertions.keys().nth(pick % mutated.assertions.len()).cloned().unwrap();
            if let Some(a) = mutated.assertions.get_mut(&key) {
                a.src.retain(|p| !matches!(p, crellvm::erhl::Pred::Lessdef(..)));
                a.tgt.retain(|p| !matches!(p, crellvm::erhl::Pred::Lessdef(..)));
            }
            let _ = validate(&mutated); // must not panic
        }
    }
}
