//! Additional interpreter semantics coverage: undef policies, switch on
//! indeterminate values, recursion limits, type-punned loads, and the
//! determinism guarantees the differential framework relies on.
//!
//! Every scenario here runs under *both* interpreter tiers: `run_with`
//! executes the tree-walk reference and the bytecode baseline and
//! asserts full `RunResult` equality before returning, so each semantic
//! assertion below implicitly covers the lowering too.

use crellvm::interp::{
    check_refinement, run_function, run_main, End, RunConfig, Tier, UndefPolicy, Val,
};
use crellvm::ir::{parse_module, Type};

fn run_with(src: &str, cfg: &RunConfig) -> crellvm::interp::RunResult {
    let m = parse_module(src).expect("parse");
    crellvm::ir::verify_module(&m).expect("verify");
    let tree = run_main(
        &m,
        &RunConfig {
            tier: Tier::Tree,
            ..cfg.clone()
        },
    );
    let bc = run_main(
        &m,
        &RunConfig {
            tier: Tier::Bytecode,
            ..cfg.clone()
        },
    );
    assert_eq!(tree, bc, "interpreter tiers disagree on this scenario");
    tree
}

#[test]
fn seeded_undef_policy_is_deterministic_but_seed_sensitive() {
    let src = r#"
        declare @print(i32)
        define @main() {
        entry:
          %p = alloca i32
          %u = load i32, ptr %p
          %v = add i32 %u, 1
          call void @print(i32 %v)
          ret void
        }
    "#;
    let a1 = run_with(
        src,
        &RunConfig {
            undef: UndefPolicy::Seeded(1),
            ..RunConfig::default()
        },
    );
    let a2 = run_with(
        src,
        &RunConfig {
            undef: UndefPolicy::Seeded(1),
            ..RunConfig::default()
        },
    );
    assert_eq!(a1, a2, "same seed, same run");
    let b = run_with(
        src,
        &RunConfig {
            undef: UndefPolicy::Seeded(2),
            ..RunConfig::default()
        },
    );
    assert_ne!(
        a1.events, b.events,
        "different seeds resolve undef differently"
    );
    // Both resolutions are tainted, so either refines the other.
    check_refinement(&a1, &b).unwrap();
    check_refinement(&b, &a1).unwrap();
}

#[test]
fn switch_on_poison_is_ub() {
    let r = run_with(
        r#"
        define @main() {
        entry:
          %p = alloca i32, 2
          %q = gep inbounds ptr %p, i64 9
          %i = ptrtoint ptr %q to i32
          switch i32 %i, label a [ 1: a ]
        a:
          ret void
        }
        "#,
        &RunConfig::default(),
    );
    assert!(matches!(r.end, End::Ub(_)), "{:?}", r.end);
}

#[test]
fn recursion_is_bounded_by_depth() {
    let r = run_with(
        r#"
        define @rec(i32 %n) -> i32 {
        entry:
          %m = add i32 %n, 1
          %r = call i32 @rec(i32 %m)
          ret i32 %r
        }
        define @main() {
        entry:
          %x = call i32 @rec(i32 0)
          ret void
        }
        "#,
        &RunConfig {
            fuel: 1_000_000,
            ..RunConfig::default()
        },
    );
    assert_eq!(
        r.end,
        End::OutOfFuel,
        "deep recursion is inconclusive, not a crash"
    );
}

#[test]
fn type_punned_load_yields_undef() {
    let r = run_with(
        r#"
        declare @print(i32)
        define @main() {
        entry:
          %p = alloca i64
          store i64 7, ptr %p
          %v = load i32, ptr %p
          call void @print(i32 %v)
          ret void
        }
        "#,
        &RunConfig::default(),
    );
    assert_eq!(r.end, End::Ret(None));
    assert!(r.events[0].args[0].is_undef_derived() || matches!(r.events[0].args[0], Val::Undef(_)));
}

#[test]
fn run_function_with_arguments() {
    let m = parse_module(
        r#"
        define @sq(i32 %x) -> i32 {
        entry:
          %y = mul i32 %x, %x
          ret i32 %y
        }
        "#,
    )
    .unwrap();
    for tier in [Tier::Tree, Tier::Bytecode] {
        let cfg = RunConfig {
            tier,
            ..RunConfig::default()
        };
        let r = run_function(&m, "sq", vec![Val::int(Type::I32, 9)], &cfg);
        assert_eq!(r.end, End::Ret(Some(Val::int(Type::I32, 81))));
        // Missing function is UB, not a panic.
        let r = run_function(&m, "nope", vec![], &cfg);
        assert!(matches!(r.end, End::Ub(_)));
    }
}

#[test]
fn store_to_global_persists_across_calls() {
    let r = run_with(
        r#"
        global @G : i32[1] = 1
        declare @print(i32)
        define @bump() {
        entry:
          %v = load i32, ptr @G
          %w = add i32 %v, 10
          store i32 %w, ptr @G
          ret void
        }
        define @main() {
        entry:
          call void @bump()
          call void @bump()
          %v = load i32, ptr @G
          call void @print(i32 %v)
          ret void
        }
        "#,
        &RunConfig::default(),
    );
    assert_eq!(r.events[0].args, vec![Val::int(Type::I32, 21)]);
}

#[test]
fn null_pointer_dereference_is_ub() {
    let r = run_with(
        "define @main() {\nentry:\n  store i32 1, ptr null\n  ret void\n}\n",
        &RunConfig::default(),
    );
    assert!(matches!(r.end, End::Ub(_)));
}

#[test]
fn events_count_against_fuel_consistently() {
    // The same program under different fuel: the lower-fuel run's trace is
    // a prefix of the higher-fuel run's.
    let src = r#"
        declare @print(i32)
        define @main() {
        entry:
          br label loop
        loop:
          %i = phi i32 [ 0, entry ], [ %i2, loop ]
          call void @print(i32 %i)
          %i2 = add i32 %i, 1
          %c = icmp slt i32 %i2, 50
          br i1 %c, label loop, label exit
        exit:
          ret void
        }
    "#;
    let small = run_with(
        src,
        &RunConfig {
            fuel: 40,
            ..RunConfig::default()
        },
    );
    let big = run_with(
        src,
        &RunConfig {
            fuel: 100_000,
            ..RunConfig::default()
        },
    );
    assert_eq!(small.end, End::OutOfFuel);
    assert_eq!(big.end, End::Ret(None));
    assert!(big.events.len() > small.events.len());
    assert_eq!(&big.events[..small.events.len()], &small.events[..]);
    // An out-of-fuel source makes the comparison inconclusive (Ok).
    check_refinement(&small, &big).unwrap();
}
