//! Correctness of the content-addressed validation cache: a warm run must
//! be observably identical to a cold one at any worker count, and the key
//! must fold every input the verdict depends on — so mutating one
//! function, the pass configuration, or the checker version invalidates
//! exactly the affected entries.

use crellvm::erhl::{CacheKey, CheckerConfig, ValidationCache, CHECKER_VERSION};
use crellvm::ir::printer::print_module;
use crellvm::ir::{parse_module, Module};
use crellvm::passes::{
    run_pipeline_parallel, run_validated_pass_parallel, BugSet, ParallelOptions, PassConfig,
    PipelineReport,
};
use crellvm::telemetry::{Snapshot, Telemetry};
use std::sync::Arc;

const BASE: &str = r#"
    declare @print(i32)
    define @f(i32 %n) -> i32 {
    entry:
      %p = alloca i32
      store i32 0, ptr %p
      %a = load i32, ptr %p
      %b = add i32 %a, %n
      ret i32 %b
    }
    define @g(i32 %n) -> i32 {
    entry:
      %x = mul i32 %n, 1
      %y = add i32 %x, 0
      ret i32 %y
    }
    define @h(i32 %n) -> i32 {
    entry:
      %q = alloca i32
      store i32 %n, ptr %q
      %v = load i32, ptr %q
      ret i32 %v
    }
    define @main() {
    entry:
      %r = call i32 @f(i32 3)
      %s = call i32 @g(i32 %r)
      call void @print(i32 %s)
      ret void
    }
"#;

/// `BASE` with one edited constant in `@g` — every other function is
/// byte-identical.
const MUTATED: &str = r#"
    declare @print(i32)
    define @f(i32 %n) -> i32 {
    entry:
      %p = alloca i32
      store i32 0, ptr %p
      %a = load i32, ptr %p
      %b = add i32 %a, %n
      ret i32 %b
    }
    define @g(i32 %n) -> i32 {
    entry:
      %x = mul i32 %n, 1
      %y = add i32 %x, 7
      ret i32 %y
    }
    define @h(i32 %n) -> i32 {
    entry:
      %q = alloca i32
      store i32 %n, ptr %q
      %v = load i32, ptr %q
      ret i32 %v
    }
    define @main() {
    entry:
      %r = call i32 @f(i32 3)
      %s = call i32 @g(i32 %r)
      call void @print(i32 %s)
      ret void
    }
"#;

fn run(
    m: &Module,
    cache: Option<&Arc<ValidationCache>>,
    jobs: usize,
    config: &PassConfig,
) -> (String, PipelineReport, Snapshot) {
    let tel = Telemetry::disabled();
    let opts = ParallelOptions {
        jobs,
        cache: cache.map(Arc::clone),
        ..ParallelOptions::default()
    };
    let (out, report) = run_pipeline_parallel(m, config, &opts, &tel);
    (print_module(&out), report, tel.registry().snapshot())
}

fn counter(snap: &Snapshot, name: &str) -> u64 {
    snap.counters.get(name).copied().unwrap_or(0)
}

#[test]
fn warm_runs_are_byte_identical_to_cold_at_any_jobs_count() {
    let m = parse_module(BASE).unwrap();
    let config = PassConfig::default();

    // Baseline without any cache, then a cold run that populates one.
    let (plain_out, _plain_rep, plain_snap) = run(&m, None, 1, &config);
    let cache = Arc::new(ValidationCache::new());
    let (cold_out, cold_rep, cold_snap) = run(&m, Some(&cache), 1, &config);

    assert_eq!(plain_out, cold_out);
    assert_eq!(
        plain_snap.deterministic().to_json(),
        cold_snap.deterministic().to_json(),
        "a cold cached run must record exactly what an uncached run does"
    );
    let steps = cold_rep.steps.len() as u64;
    assert!(steps > 0);
    assert_eq!(counter(&cold_snap, "cache.misses"), steps);
    assert_eq!(counter(&cold_snap, "cache.hits"), 0);

    for jobs in [1, 2, 8] {
        let (warm_out, warm_rep, warm_snap) = run(&m, Some(&cache), jobs, &config);
        assert_eq!(cold_out, warm_out, "module differs at jobs={jobs}");
        assert_eq!(counter(&warm_snap, "cache.hits"), steps);
        assert_eq!(counter(&warm_snap, "cache.misses"), 0);
        assert_eq!(
            cold_snap.deterministic().to_json(),
            warm_snap.deterministic().to_json(),
            "deterministic metrics differ on a warm run at jobs={jobs}"
        );
        assert_eq!(cold_rep.steps.len(), warm_rep.steps.len());
        for (a, b) in cold_rep.steps.iter().zip(&warm_rep.steps) {
            assert_eq!((&a.pass, &a.func), (&b.pass, &b.func));
            assert_eq!(a.outcome, b.outcome, "verdict differs at jobs={jobs}");
            assert_eq!(a.proof_bytes, b.proof_bytes);
        }
    }
}

#[test]
fn mutating_one_function_invalidates_exactly_its_entries() {
    let config = PassConfig::default();
    let cache = Arc::new(ValidationCache::new());
    let base = parse_module(BASE).unwrap();
    let (_, _, cold) = run(&base, Some(&cache), 1, &config);
    let steps = counter(&cold, "cache.misses");

    // Only @g changed: its four per-pass units miss, everything else hits.
    let mutated = parse_module(MUTATED).unwrap();
    let (_, rep, snap) = run(&mutated, Some(&cache), 2, &config);
    assert_eq!(
        counter(&snap, "cache.misses"),
        4,
        "one function, four passes"
    );
    assert_eq!(counter(&snap, "cache.hits"), steps - 4);
    assert!(rep
        .steps
        .iter()
        .all(|s| matches!(s.outcome, crellvm::passes::StepOutcome::Valid)));
}

#[test]
fn pass_configuration_invalidates_the_whole_cache() {
    let m = parse_module(BASE).unwrap();
    let cache = Arc::new(ValidationCache::new());
    let (_, _, cold) = run(&m, Some(&cache), 1, &PassConfig::default());
    let steps = counter(&cold, "cache.misses");

    // A different bug population transforms (and proves) differently, so
    // every key changes — no stale verdict can leak across configurations.
    let buggy = PassConfig::with_bugs(BugSet::llvm_3_7_1());
    let (_, _, snap) = run(&m, Some(&cache), 1, &buggy);
    assert_eq!(counter(&snap, "cache.misses"), steps);
    assert_eq!(counter(&snap, "cache.hits"), 0);

    // Re-running the original configuration still hits its own entries.
    let (_, _, again) = run(&m, Some(&cache), 1, &PassConfig::default());
    assert_eq!(counter(&again, "cache.hits"), steps);
}

#[test]
fn checker_configuration_and_version_change_the_key() {
    let m = parse_module(BASE).unwrap();
    let config = PassConfig::default();
    let cache = Arc::new(ValidationCache::new());
    let tel = Telemetry::disabled();
    let mk_opts = |cache: &Arc<ValidationCache>| ParallelOptions {
        jobs: 1,
        cache: Some(Arc::clone(cache)),
        ..ParallelOptions::default()
    };

    let mut report = PipelineReport::default();
    let sound = CheckerConfig::sound();
    run_validated_pass_parallel(
        "mem2reg",
        &m,
        &config,
        &sound,
        &mk_opts(&cache),
        &tel,
        &mut report,
    );
    let cold = tel.registry().snapshot();
    let steps = counter(&cold, "cache.misses");
    assert!(steps > 0);

    // A checker with a different trust switch must miss everywhere.
    let tel2 = Telemetry::disabled();
    let mut report2 = PipelineReport::default();
    let trusting = CheckerConfig::with_unsound_constexpr_rule();
    run_validated_pass_parallel(
        "mem2reg",
        &m,
        &config,
        &trusting,
        &mk_opts(&cache),
        &tel2,
        &mut report2,
    );
    let snap2 = tel2.registry().snapshot();
    assert_eq!(counter(&snap2, "cache.misses"), steps);
    assert_eq!(counter(&snap2, "cache.hits"), 0);

    // Bumping the checker version changes every unit key even when the
    // configuration bits are identical.
    let fb = vec![1u8, 2, 3];
    let now = sound.cache_token_versioned(CHECKER_VERSION);
    let next = sound.cache_token_versioned(CHECKER_VERSION + 1);
    assert_ne!(now, next);
    assert_ne!(
        CacheKey::for_unit(&fb, "mem2reg", config.cache_token(), now, 2),
        CacheKey::for_unit(&fb, "mem2reg", config.cache_token(), next, 2),
    );
}

#[test]
fn disk_backed_cache_hits_across_processes() {
    let dir = std::env::temp_dir().join(format!("crellvm_cache_it_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let m = parse_module(BASE).unwrap();
    let config = PassConfig::default();

    let cold_cache = Arc::new(ValidationCache::with_dir(&dir).unwrap());
    let (cold_out, _, cold_snap) = run(&m, Some(&cold_cache), 2, &config);
    let steps = counter(&cold_snap, "cache.misses");
    drop(cold_cache);

    // A brand-new cache over the same directory (a fresh process, in
    // effect) serves every unit from disk.
    let warm_cache = Arc::new(ValidationCache::with_dir(&dir).unwrap());
    let (warm_out, _, warm_snap) = run(&m, Some(&warm_cache), 2, &config);
    assert_eq!(cold_out, warm_out);
    assert_eq!(counter(&warm_snap, "cache.hits"), steps);
    assert_eq!(counter(&warm_snap, "cache.misses"), 0);
    assert_eq!(
        cold_snap.deterministic().to_json(),
        warm_snap.deterministic().to_json()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spans_and_forensics_bypass_the_cache() {
    let m = parse_module(BASE).unwrap();
    let cache = Arc::new(ValidationCache::new());
    let (_, _, _) = run(&m, Some(&cache), 1, &PassConfig::default());

    // With span collection on, the units must actually run: no hits, and
    // the span tree still reaches the proof level.
    let tel = Telemetry::disabled();
    let opts = ParallelOptions {
        jobs: 2,
        spans: true,
        cache: Some(Arc::clone(&cache)),
        ..ParallelOptions::default()
    };
    let (_, report) = run_pipeline_parallel(&m, &PassConfig::default(), &opts, &tel);
    let snap = tel.registry().snapshot();
    assert_eq!(counter(&snap, "cache.hits"), 0);
    assert_eq!(counter(&snap, "cache.misses"), 0);
    assert!(!report.span_items.is_empty());
}
