//! The four miscompilation bugs of the paper, reproduced end-to-end:
//! each bug switch makes the corresponding pass miscompile a triggering
//! program, the reference interpreter *observes* the miscompilation
//! (where it is observable), and validation pinpoints it — while the
//! fixed pass both validates and preserves behaviour.
//!
//! Also reproduces §8.2's maintainability matrix: the LLVM 3.7.1 /
//! 5.0.1-prepatch / 5.0.1-postpatch bug populations.

use crellvm::erhl::{validate, Verdict};
use crellvm::interp::{check_refinement, run_main, End, RunConfig, Val};
use crellvm::ir::{parse_module, verify_module, Module, Type};
use crellvm::passes::{gvn, mem2reg, BugSet, PassConfig};

fn ints(run: &crellvm::interp::RunResult) -> Vec<Option<i64>> {
    run.events
        .iter()
        .filter(|e| e.callee == "print")
        .map(|e| match &e.args[0] {
            Val::Int {
                ty,
                bits,
                tainted: false,
            } => Some(ty.sext(*bits)),
            _ => None, // undef-ish
        })
        .collect()
}

/// §B: the diffsqr program. `prev = cur` reads `cur` before the block's
/// store to `cur`, but a store from the *previous iteration* reaches it —
/// the exact PR24179 single-block pattern.
fn diffsqr_program() -> Module {
    parse_module(
        r#"
        declare @print(i32)
        define @main() {
        entry:
          %arr = alloca i32, 3
          %a1 = gep ptr %arr, i64 1
          %a2 = gep ptr %arr, i64 2
          store i32 1, ptr %arr
          store i32 2, ptr %a1
          store i32 5, ptr %a2
          %prev = alloca i32
          %cur = alloca i32
          %sqrsum = alloca i32
          %diffsqrsum = alloca i32
          store i32 0, ptr %sqrsum
          store i32 0, ptr %diffsqrsum
          br label loop
        loop:
          %i = phi i32 [ 0, entry ], [ %i2, loop ]
          ; prev = cur  (loads cur BEFORE this block's store to cur)
          %cur_old = load i32, ptr %cur
          store i32 %cur_old, ptr %prev
          ; cur = arr[i]
          %i64v = zext i32 %i to i64
          %ai = gep ptr %arr, i64 %i64v
          %av = load i32, ptr %ai
          store i32 %av, ptr %cur
          ; sqrsum += cur * cur
          %c = load i32, ptr %cur
          %sq = mul i32 %c, %c
          %ss = load i32, ptr %sqrsum
          %ss2 = add i32 %ss, %sq
          store i32 %ss2, ptr %sqrsum
          ; diffsqrsum += (i == 0) ? 0 : (cur - prev)^2
          %p = load i32, ptr %prev
          %d = sub i32 %c, %p
          %dsq = mul i32 %d, %d
          %z = icmp eq i32 %i, 0
          %contrib = select i1 %z, i32 0, i32 %dsq
          %ds = load i32, ptr %diffsqrsum
          %ds2 = add i32 %ds, %contrib
          store i32 %ds2, ptr %diffsqrsum
          %i2 = add i32 %i, 1
          %cc = icmp slt i32 %i2, 3
          br i1 %cc, label loop, label exit
        exit:
          %r1 = load i32, ptr %sqrsum
          %r2 = load i32, ptr %diffsqrsum
          call void @print(i32 %r1)
          call void @print(i32 %r2)
          ret void
        }
        "#,
    )
    .unwrap()
}

#[test]
fn diffsqr_source_behaviour() {
    // 30 = 1² + 2² + 5²; 10 = (2-1)² + (5-2)².
    let m = diffsqr_program();
    verify_module(&m).unwrap();
    let r = run_main(&m, &RunConfig::default());
    assert_eq!(r.end, End::Ret(None));
    assert_eq!(ints(&r), vec![Some(30), Some(10)]);
}

#[test]
fn pr24179_end_to_end() {
    let m = diffsqr_program();
    let rc = RunConfig::default();
    let src_run = run_main(&m, &rc);

    // Fixed mem2reg: promotes correctly, validates, preserves behaviour.
    let fixed = mem2reg(&m, &PassConfig::default());
    verify_module(&fixed.module).unwrap();
    for unit in &fixed.proofs {
        assert_eq!(validate(unit), Ok(Verdict::Valid));
    }
    let fixed_run = run_main(&fixed.module, &rc);
    check_refinement(&src_run, &fixed_run).unwrap();
    assert_eq!(ints(&fixed_run), vec![Some(30), Some(10)]);

    // Buggy mem2reg (LLVM 3.7.1): promotes `cur` through the single-block
    // fast path, feeding undef to every `prev = cur`.
    let config = PassConfig::with_bugs(BugSet {
        pr24179: true,
        ..BugSet::default()
    });
    let buggy = mem2reg(&m, &config);
    verify_module(&buggy.module).unwrap();
    // (a) Validation catches the bug with a loop-located reason.
    let err = buggy
        .proofs
        .iter()
        .find_map(|u| validate(u).err())
        .expect("the miscompilation must fail validation");
    assert!(err.at.contains("loop"), "failure at {}", err.at);
    // (b) The interpreter observes the wrong output: diffsqrsum is
    // derived from undef (the paper's "prints 30 and 0").
    let buggy_run = run_main(&buggy.module, &rc);
    let printed = ints(&buggy_run);
    assert_eq!(printed[0], Some(30), "sqrsum is unaffected");
    assert_ne!(printed[1], Some(10), "diffsqrsum is corrupted: {printed:?}");
    // (c) And the refinement checker flags it.
    assert!(check_refinement(&src_run, &buggy_run).is_err());
}

/// §1.2's gvn example: `bar(q1, q2)` with an inbounds and a plain gep.
#[test]
fn pr28562_end_to_end() {
    let m = parse_module(
        r#"
        declare @bar(ptr, ptr)
        define @main() {
        entry:
          %p = alloca i32, 4
          %q1 = gep inbounds ptr %p, i64 10
          %q2 = gep ptr %p, i64 10
          call void @bar(ptr %q1, ptr %q2)
          ret void
        }
        "#,
    )
    .unwrap();
    let rc = RunConfig::default();
    let src_run = run_main(&m, &rc);

    // Fixed gvn: flags differ → no merge; validates.
    let fixed = gvn(&m, &PassConfig::default());
    for unit in &fixed.proofs {
        assert_eq!(validate(unit), Ok(Verdict::Valid));
    }
    check_refinement(&src_run, &run_main(&fixed.module, &rc)).unwrap();

    // Buggy gvn: q2 := q1 — the target passes poison where the source
    // passed a concrete (if out-of-bounds) address.
    let config = PassConfig::with_bugs(BugSet {
        pr28562: true,
        ..BugSet::default()
    });
    let buggy = gvn(&m, &config);
    verify_module(&buggy.module).unwrap();
    assert!(
        buggy.proofs.iter().any(|u| validate(u).is_err()),
        "validation must fail"
    );
    let buggy_run = run_main(&buggy.module, &rc);
    // Source: arg 1 is a concrete pointer; target: poison.
    assert!(matches!(src_run.events[0].args[1], Val::Ptr { .. }));
    assert!(matches!(buggy_run.events[0].args[1], Val::Poison(_)));
    assert!(check_refinement(&src_run, &buggy_run).is_err());
}

/// §1.1's mem2reg example: the trapping constant expression
/// `1 / ((i32)G - (i32)G)` propagated to a load the store does not
/// dominate.
#[test]
fn pr33673_end_to_end() {
    let m = parse_module(
        r#"
        global @G : i32[1]
        declare @foo(i32)
        define @main(i1 %c) {
        entry:
          %p = alloca i32
          br i1 %c, label uses, label stores
        uses:
          %r = load i32, ptr %p
          call void @foo(i32 %r)
          ret void
        stores:
          store i32 sdiv(i32 1, sub(i32 ptrtoint(@G to i32), ptrtoint(@G to i32))), ptr %p
          ret void
        }
        "#,
    )
    .unwrap();
    // The fixed compiler replaces the load with undef — fine.
    let fixed = mem2reg(&m, &PassConfig::default());
    for unit in &fixed.proofs {
        assert_eq!(validate(unit), Ok(Verdict::Valid));
    }

    // The buggy compiler propagates the trapping constant.
    let config = PassConfig::with_bugs(BugSet {
        pr33673: true,
        ..BugSet::default()
    });
    let buggy = mem2reg(&m, &config);
    verify_module(&buggy.module).unwrap();
    let err = buggy
        .proofs
        .iter()
        .find_map(|u| validate(u).err())
        .expect("must fail validation");
    assert!(
        err.reason.contains("trapping") || err.reason.contains("undefined behaviour"),
        "reason: {}",
        err.reason
    );

    // End-to-end: with %c = true the source never executes the division
    // (foo receives undef); the target traps evaluating the call argument.
    let mut src_true = m.clone();
    // Drive main(true) by wrapping: replace parameter use with a constant.
    let main = src_true.function_mut("main").unwrap();
    let c = main.params[0].1;
    main.params.clear();
    main.replace_all_uses(c, &crellvm::ir::Value::int(Type::I1, 1));
    let mut buggy_true = buggy.module.clone();
    let main = buggy_true.function_mut("main").unwrap();
    let c = main.params[0].1;
    main.params.clear();
    main.replace_all_uses(c, &crellvm::ir::Value::int(Type::I1, 1));

    let rc = RunConfig::default();
    let src_run = run_main(&src_true, &rc);
    assert_eq!(src_run.end, End::Ret(None), "source is well-defined");
    let buggy_run = run_main(&buggy_true, &rc);
    assert!(
        matches!(buggy_run.end, End::Ub(_)),
        "target raises UB evaluating the trapping constexpr: {:?}",
        buggy_run.end
    );
    assert!(check_refinement(&src_run, &buggy_run).is_err());
}

/// The D38619-style PRE bug: the branch-implied constant leaks onto the
/// wrong edge.
#[test]
fn d38619_end_to_end() {
    let m = parse_module(
        r#"
        declare @print(i32)
        define @main(i32 %n, i1 %c1) {
        entry:
          br i1 %c1, label left, label right
        left:
          %w = mul i32 %n, 3
          %cmp = icmp eq i32 %w, 12
          br i1 %cmp, label other, label exit
        other:
          call void @print(i32 1)
          ret void
        right:
          %l = mul i32 %n, 3
          call void @print(i32 %l)
          br label exit
        exit:
          %x = mul i32 %n, 3
          call void @print(i32 %x)
          ret void
        }
        "#,
    )
    .unwrap();
    // Fixed: validates.
    let fixed = gvn(&m, &PassConfig::default());
    for unit in &fixed.proofs {
        assert_eq!(validate(unit), Ok(Verdict::Valid));
    }
    // Buggy: the false edge left→exit wrongly carries "w == 12".
    let config = PassConfig::with_bugs(BugSet {
        d38619: true,
        ..BugSet::default()
    });
    let buggy = gvn(&m, &config);
    verify_module(&buggy.module).unwrap();
    assert!(buggy.proofs.iter().any(|u| validate(u).is_err()));
    // End-to-end: drive main(5, true): w = 15 ≠ 12, so the false edge is
    // taken and the correct print is 15 — the buggy phi feeds 12.
    let drive = |m: &Module| {
        let mut m = m.clone();
        let f = m.function_mut("main").unwrap();
        let (n, c) = (f.params[0].1, f.params[1].1);
        f.params.clear();
        f.replace_all_uses(n, &crellvm::ir::Value::int(Type::I32, 5));
        f.replace_all_uses(c, &crellvm::ir::Value::int(Type::I1, 1));
        m
    };
    let rc = RunConfig::default();
    let src_run = run_main(&drive(&m), &rc);
    let buggy_run = run_main(&drive(&buggy.module), &rc);
    assert_eq!(ints(&src_run), vec![Some(15)]);
    assert_eq!(ints(&buggy_run), vec![Some(12)], "the miscompiled constant");
    assert!(check_refinement(&src_run, &buggy_run).is_err());
}

/// §8.2: the per-LLVM-version bug matrices. The same corpus-triggering
/// programs fail under 3.7.1, partially under 5.0.1-prepatch, and not at
/// all after the patch.
#[test]
fn llvm_version_matrix() {
    let trigger_gvn = parse_module(
        r#"
        declare @bar(ptr, ptr)
        define @main(ptr %p) {
        entry:
          %q1 = gep inbounds ptr %p, i64 10
          %q2 = gep ptr %p, i64 10
          call void @bar(ptr %q1, ptr %q2)
          ret void
        }
        "#,
    )
    .unwrap();
    let fails_gvn = |bugs: BugSet| {
        let out = gvn(&trigger_gvn, &PassConfig::with_bugs(bugs));
        out.proofs.iter().any(|u| validate(u).is_err())
    };
    assert!(fails_gvn(BugSet::llvm_3_7_1()), "3.7.1 has PR28562");
    assert!(
        !fails_gvn(BugSet::llvm_5_0_1_prepatch()),
        "5.0.1 fixed PR28562"
    );
    assert!(!fails_gvn(BugSet::llvm_5_0_1_postpatch()));

    let trigger_m2r = diffsqr_program();
    let fails_m2r = |bugs: BugSet| {
        let out = mem2reg(&trigger_m2r, &PassConfig::with_bugs(bugs));
        out.proofs.iter().any(|u| validate(u).is_err())
    };
    assert!(fails_m2r(BugSet::llvm_3_7_1()), "3.7.1 has PR24179");
    assert!(
        !fails_m2r(BugSet::llvm_5_0_1_prepatch()),
        "5.0.1 fixed PR24179"
    );
    assert!(!fails_m2r(BugSet::llvm_5_0_1_postpatch()));
}
