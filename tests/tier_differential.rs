//! Differential tests for the tiered interpreter: the bytecode baseline
//! tier must be observably *identical* to the tree-walk reference — same
//! `End`, same UB reason, same event trace, same fuel and step counts,
//! same undef resolutions — on generated modules and on hand-written
//! kernels that stress the lowering's sharp edges (phi back-edges, the
//! fused icmp+br superinstruction, gep/load/store, poison, traps).
//!
//! The tree-walker is the trusted reference (inside the TCB); the
//! bytecode tier is a performance substitution checked *by* these tests
//! and by the fuzz oracle's `Differential` mode, not by inspection.

use crellvm::gen::{generate_module, GenConfig};
use crellvm::interp::{
    compile_module, compile_module_with, run_main, run_main_tiered, CompileOptions, End, RunConfig,
    Tier, UndefPolicy,
};
use crellvm::ir::{parse_module, Module};

/// Run under both tiers and insist on full `RunResult` equality
/// (including steps and fuel), then re-run under `Differential` and
/// insist the built-in comparator agrees there is nothing to report.
fn assert_tier_parity(m: &Module, cfg: &RunConfig) {
    let tree = run_main(
        m,
        &RunConfig {
            tier: Tier::Tree,
            ..cfg.clone()
        },
    );
    let bc = run_main(
        m,
        &RunConfig {
            tier: Tier::Bytecode,
            ..cfg.clone()
        },
    );
    assert_eq!(tree, bc, "tree vs bytecode results differ");
    let diff = run_main_tiered(
        m,
        &RunConfig {
            tier: Tier::Differential,
            ..cfg.clone()
        },
        None,
    );
    assert!(
        diff.divergence.is_none(),
        "differential tier reported: {}",
        diff.divergence.unwrap().mismatch
    );
    assert_eq!(
        diff.result, tree,
        "differential must act on the tree result"
    );
}

fn parity_src(src: &str, cfg: &RunConfig) {
    let m = parse_module(src).expect("parse");
    crellvm::ir::verify_module(&m).expect("verify");
    assert_tier_parity(&m, cfg);
}

/// The property the whole tier rests on: over random generated modules
/// (the fuzz oracle's exact workload family), across input seeds and
/// both undef policies, the tiers are bit-for-bit identical.
#[test]
fn generated_modules_are_tier_identical() {
    for seed in 0..24u64 {
        let m = generate_module(&GenConfig {
            seed: 0x9e3779b9 + seed,
            functions: 3,
            ..GenConfig::default()
        });
        for env_seed in [0xC0FFEE, 7] {
            for undef in [UndefPolicy::Zero, UndefPolicy::Seeded(env_seed)] {
                assert_tier_parity(
                    &m,
                    &RunConfig {
                        fuel: 200_000,
                        env_seed,
                        undef,
                        ..RunConfig::default()
                    },
                );
            }
        }
    }
}

/// Out-of-fuel truncation must happen at the *same step* in both tiers:
/// sweep fuel through a loop so every instruction position is the last.
#[test]
fn fuel_exhaustion_is_step_exact() {
    let m = generate_module(&GenConfig {
        seed: 0x51ee7,
        functions: 2,
        ..GenConfig::default()
    });
    for fuel in (1..200).step_by(7) {
        assert_tier_parity(
            &m,
            &RunConfig {
                fuel,
                ..RunConfig::default()
            },
        );
    }
}

/// Dispatch-bound arithmetic loop: phi back-edge every iteration plus a
/// trailing `icmp`/`br i1` pair, which the compiler fuses into the
/// `IcmpBr` superinstruction — parity here proves the fusion burns fuel
/// twice and still writes the icmp destination slot.
#[test]
fn arith_loop_with_fused_icmp_br() {
    parity_src(
        r#"
        declare @print(i64)
        define @main() {
        entry:
          br label loop
        loop:
          %i = phi i64 [ 0, entry ], [ %i2, loop ]
          %acc = phi i64 [ 1, entry ], [ %acc3, loop ]
          %m = mul i64 %acc, 31
          %x = xor i64 %m, %i
          %s = shl i64 %x, 1
          %acc3 = add i64 %s, 7
          %i2 = add i64 %i, 1
          %c = icmp slt i64 %i2, 500
          br i1 %c, label loop, label exit
        exit:
          call void @print(i64 %acc3)
          %c2 = icmp eq i64 %acc3, %acc3
          call void @print(i64 %i2)
          ret void
        }
        "#,
        &RunConfig {
            fuel: 1_000_000,
            ..RunConfig::default()
        },
    );
}

/// Memory kernel: alloca / gep / store / load round-trips in a loop.
#[test]
fn memory_loop_gep_load_store() {
    parity_src(
        r#"
        declare @print(i64)
        define @main() {
        entry:
          %buf = alloca i64, 64
          br label loop
        loop:
          %i = phi i64 [ 0, entry ], [ %i2, loop ]
          %slot = and i64 %i, 63
          %p = gep inbounds ptr %buf, i64 %slot
          %v = load i64, ptr %p
          %v2 = add i64 %v, %i
          store i64 %v2, ptr %p
          %i2 = add i64 %i, 1
          %c = icmp ult i64 %i2, 300
          br i1 %c, label loop, label exit
        exit:
          %p0 = gep inbounds ptr %buf, i64 7
          %r = load i64, ptr %p0
          call void @print(i64 %r)
          ret void
        }
        "#,
        &RunConfig {
            fuel: 1_000_000,
            ..RunConfig::default()
        },
    );
}

/// Poison propagation: `gep inbounds` past the allocation poisons the
/// pointer, the load on it is UB — identically in both tiers.
#[test]
fn out_of_bounds_inbounds_gep_poisons_identically() {
    parity_src(
        r#"
        define @main() {
        entry:
          %p = alloca i32, 2
          %q = gep inbounds ptr %p, i64 9
          %v = load i32, ptr %q
          ret void
        }
        "#,
        &RunConfig::default(),
    );
}

/// Branching on a poisoned condition is UB with the same reason in both
/// tiers (this exercises the fused IcmpBr slow path: the icmp operand is
/// not a concrete int).
#[test]
fn branch_on_poison_is_ub_in_both_tiers() {
    let src = r#"
        define @main() {
        entry:
          %p = alloca i32, 2
          %q = gep inbounds ptr %p, i64 9
          %i = ptrtoint ptr %q to i64
          %c = icmp eq i64 %i, 0
          br i1 %c, label a, label b
        a:
          ret void
        b:
          ret void
        }
    "#;
    parity_src(src, &RunConfig::default());
    let m = parse_module(src).unwrap();
    let r = run_main(
        &m,
        &RunConfig {
            tier: Tier::Bytecode,
            ..RunConfig::default()
        },
    );
    assert!(matches!(r.end, End::Ub(_)), "{:?}", r.end);
}

/// Trapping ops take the slow (shared-core) path in the bytecode tier;
/// division by zero must be the same UB either way, and a non-trapping
/// division the same quotient.
#[test]
fn division_traps_and_quotients_match() {
    parity_src(
        r#"
        declare @print(i32)
        define @main() {
        entry:
          %q = sdiv i32 -8, 2
          call void @print(i32 %q)
          %r = srem i32 7, 3
          call void @print(i32 %r)
          ret void
        }
        "#,
        &RunConfig::default(),
    );
    parity_src(
        "define @main() {\nentry:\n  %z = sub i32 1, 1\n  %q = udiv i32 5, %z\n  ret void\n}\n",
        &RunConfig::default(),
    );
}

/// Undef resolution draws from a per-run counter; the tiers must consume
/// the counter in the same order so `Seeded` runs resolve identically.
#[test]
fn seeded_undef_resolution_order_matches() {
    parity_src(
        r#"
        declare @print(i32)
        define @main() {
        entry:
          %p = alloca i32, 4
          %a = load i32, ptr %p
          %q = gep ptr %p, i64 2
          %b = load i32, ptr %q
          %s = add i32 %a, %b
          call void @print(i32 %s)
          call void @print(i32 %a)
          ret void
        }
        "#,
        &RunConfig {
            undef: UndefPolicy::Seeded(0xDECAF),
            ..RunConfig::default()
        },
    );
}

/// Calls and external events: internal calls push frames, externals emit
/// events whose deterministic return values depend on the event index —
/// both must line up across tiers, including through recursion depth UB.
#[test]
fn calls_events_and_recursion_match() {
    parity_src(
        r#"
        declare @read() -> i32
        declare @print(i32)
        define @twice(i32 %x) -> i32 {
        entry:
          %d = add i32 %x, %x
          ret i32 %d
        }
        define @main() {
        entry:
          %a = call i32 @read()
          %b = call i32 @twice(i32 %a)
          call void @print(i32 %b)
          %c = call i32 @read()
          call void @print(i32 %c)
          ret void
        }
        "#,
        &RunConfig {
            env_seed: 42,
            ..RunConfig::default()
        },
    );
    parity_src(
        r#"
        define @rec(i32 %n) -> i32 {
        entry:
          %m = add i32 %n, 1
          %r = call i32 @rec(i32 %m)
          ret i32 %r
        }
        define @main() {
        entry:
          %x = call i32 @rec(i32 0)
          ret void
        }
        "#,
        &RunConfig {
            fuel: 1_000_000,
            ..RunConfig::default()
        },
    );
}

/// A switch over computed values, including the default edge and phi
/// moves on the case edges.
#[test]
fn switch_dispatch_matches() {
    parity_src(
        r#"
        declare @print(i32)
        define @main() {
        entry:
          br label loop
        loop:
          %i = phi i32 [ 0, entry ], [ %i2, next ]
          %k = and i32 %i, 3
          switch i32 %k, label d [ 0: a, 1: b, 2: c ]
        a:
          br label next
        b:
          br label next
        c:
          br label next
        d:
          br label next
        next:
          %tag = phi i32 [ 10, a ], [ 20, b ], [ 30, c ], [ 40, d ]
          call void @print(i32 %tag)
          %i2 = add i32 %i, 1
          %more = icmp slt i32 %i2, 9
          br i1 %more, label loop, label exit
        exit:
          ret void
        }
        "#,
        &RunConfig::default(),
    );
}

/// The negative control: a deliberately miscompiled lowering (`sub`
/// lowered as `add`) must be *caught* by the differential tier, proving
/// these parity tests cannot pass vacuously.
#[test]
fn sabotaged_lowering_is_detected() {
    let m = parse_module(
        r#"
        declare @print(i32)
        define @main() {
        entry:
          %d = sub i32 90, 48
          call void @print(i32 %d)
          ret void
        }
        "#,
    )
    .unwrap();
    let healthy = compile_module(&m);
    let broken = compile_module_with(
        &m,
        CompileOptions {
            miscompile_sub_as_add: true,
        },
    );
    let cfg = RunConfig {
        tier: Tier::Differential,
        ..RunConfig::default()
    };
    assert!(run_main_tiered(&m, &cfg, Some(&healthy))
        .divergence
        .is_none());
    let div = run_main_tiered(&m, &cfg, Some(&broken))
        .divergence
        .expect("sub-as-add must diverge observably");
    assert!(
        div.mismatch.contains("event"),
        "first mismatch should be the printed value: {}",
        div.mismatch
    );
    assert_ne!(div.tree.events, div.bytecode.events);
}
