//! End-to-end tests of the provenance layer: causal span trees through
//! the parallel pipeline, forensic bundles for real checker rejections,
//! and the two standard-format exporters.

use crellvm::erhl::{replay, CheckerConfig};
use crellvm::ir::parse_module;
use crellvm::passes::{run_pipeline_parallel, BugSet, ParallelOptions, PassConfig, PipelineReport};
use crellvm::telemetry::export::{chrome_trace, openmetrics};
use crellvm::telemetry::{json, Registry, SpanTree, Telemetry};
use std::sync::Arc;

const PROGRAM: &str = r#"
    declare @print(i32)
    define @main(i32 %n) {
    entry:
      %p = alloca i32
      store i32 0, ptr %p
      br label loop
    loop:
      %i = phi i32 [ 0, entry ], [ %i2, loop ]
      %acc = load i32, ptr %p
      %inv = mul i32 %n, 4
      %t = add i32 %inv, 0
      %acc2 = add i32 %acc, %t
      store i32 %acc2, ptr %p
      %i2 = add i32 %i, 1
      %c = icmp slt i32 %i2, 5
      br i1 %c, label loop, label exit
    exit:
      %r = load i32, ptr %p
      call void @print(i32 %r)
      ret void
    }
    define @helper(i32 %a) {
    entry:
      %x = add i32 %a, 1
      %y = mul i32 %x, 2
      call void @print(i32 %y)
      ret void
    }
"#;

/// The gep program that trips PR28562 when the bug is switched on.
const GEP_PROGRAM: &str = r#"
    declare @bar(ptr, ptr)
    define @main(ptr %p) {
    entry:
      %q1 = gep inbounds ptr %p, i64 10
      %q2 = gep ptr %p, i64 10
      call void @bar(ptr %q1, ptr %q2)
      ret void
    }
"#;

fn run(
    src: &str,
    config: &PassConfig,
    jobs: usize,
    forensics: bool,
) -> (PipelineReport, Telemetry) {
    let m = parse_module(src).expect("parse");
    let tel = Telemetry::with_registry(Arc::new(Registry::new()));
    let opts = ParallelOptions {
        jobs,
        spans: true,
        forensics,
        ..ParallelOptions::default()
    };
    let (_, report) = run_pipeline_parallel(&m, config, &opts, &tel);
    (report, tel)
}

#[test]
fn span_trace_is_byte_identical_at_any_thread_count() {
    let at = |jobs: usize| {
        let (report, _) = run(PROGRAM, &PassConfig::default(), jobs, false);
        report.span_tree("m").deterministic().to_json()
    };
    let one = at(1);
    assert_eq!(one, at(2), "span trace differs between --jobs 1 and 2");
    assert_eq!(one, at(8), "span trace differs between --jobs 1 and 8");

    // The trace is deep: module -> function -> pass -> phase/proof rows.
    let tree = SpanTree::from_json(&one).expect("span JSON roundtrips");
    assert!(
        tree.max_depth() >= 4,
        "tree too shallow: {}",
        tree.max_depth()
    );
    assert!(tree.records.iter().any(|r| r.cat == "proof"));
    assert!(tree.records.iter().any(|r| r.cat == "phase"));
    // Both functions appear, in module order.
    let funcs: Vec<&str> = tree
        .records
        .iter()
        .filter(|r| r.cat == "function")
        .map(|r| r.name.as_str())
        .collect();
    assert_eq!(funcs, ["@main", "@helper"]);
}

#[test]
fn chrome_trace_nesting_matches_the_span_tree() {
    let (report, _) = run(PROGRAM, &PassConfig::default(), 4, false);
    let tree = report.span_tree("m");
    let out = chrome_trace(&tree);
    let doc = json::parse(&out).expect("chrome trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(json::Value::as_arr)
        .expect("traceEvents array");
    assert_eq!(events.len(), tree.records.len(), "one event per span");

    // Every event is a complete event contained in its parent's interval,
    // so the viewer's stacking depth reproduces the span tree's depth.
    let field = |e: &json::Value, k: &str| e.get(k).and_then(json::Value::as_u64).unwrap();
    for e in events {
        assert_eq!(e.get("ph").and_then(json::Value::as_str), Some("X"));
        let args = e.get("args").expect("args");
        let id = field(args, "span_id");
        if let Some(parent) = args.get("span_parent").and_then(json::Value::as_u64) {
            let p = &events[parent as usize];
            assert!(field(p, "ts") <= field(e, "ts"));
            assert!(
                field(e, "ts") + field(e, "dur") <= field(p, "ts") + field(p, "dur"),
                "span {id} leaks out of parent {parent}"
            );
        }
        // The synthetic timeline keeps the recorded duration available.
        assert!(args.get("recorded_dur_ns").is_some());
    }
}

/// A minimal structural validator for the OpenMetrics text exposition
/// format: `# TYPE` metadata precedes samples, histogram buckets are
/// cumulative and end at `+Inf == _count`, and the exposition terminates
/// with `# EOF`.
fn check_openmetrics(text: &str) {
    assert!(text.ends_with("# EOF\n"), "missing # EOF terminator");
    let mut families: Vec<String> = Vec::new();
    let mut bucket_last: Option<u64> = None;
    let mut bucket_family = String::new();
    for line in text.lines() {
        if line == "# EOF" {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut words = rest.split_whitespace();
            let keyword = words.next().unwrap();
            assert!(
                matches!(keyword, "TYPE" | "UNIT" | "HELP"),
                "bad metadata line: {line}"
            );
            let name = words.next().expect("metadata names a metric");
            if keyword == "TYPE" {
                families.push(name.to_string());
            }
            continue;
        }
        let (name, value) = line.split_once(' ').expect("sample is `name value`");
        let bare = name.split('{').next().unwrap();
        assert!(
            families.iter().any(|f| {
                bare == f
                    || ["_total", "_bucket", "_sum", "_count", "_created"]
                        .iter()
                        .any(|s| bare == format!("{f}{s}"))
            }),
            "sample {name} has no preceding # TYPE"
        );
        assert!(
            bare.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "invalid metric name {bare}"
        );
        if bare.ends_with("_bucket") {
            let fam = bare.trim_end_matches("_bucket").to_string();
            if fam != bucket_family {
                bucket_family = fam;
                bucket_last = None;
            }
            let v: u64 = value.parse().expect("bucket count is an integer");
            if let Some(prev) = bucket_last {
                assert!(v >= prev, "buckets not cumulative at {line}");
            }
            bucket_last = Some(v);
            if name.contains("le=\"+Inf\"") {
                bucket_last = Some(v); // checked against _count below via text
            }
        } else {
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("bad sample value: {line}"));
        }
    }
    assert!(!families.is_empty(), "no metric families at all");
}

#[test]
fn openmetrics_export_is_structurally_valid() {
    let (_, tel) = run(PROGRAM, &PassConfig::default(), 2, false);
    let snap = tel.registry().snapshot();
    assert!(!snap.histograms.is_empty(), "need histogram coverage");
    assert!(!snap.timers.is_empty(), "need timer coverage");
    check_openmetrics(&openmetrics(&snap));
}

#[test]
fn broken_proof_yields_a_minimized_replayable_bundle() {
    let config = PassConfig::with_bugs(BugSet {
        pr28562: true,
        ..BugSet::default()
    });
    let (report, tel) = run(GEP_PROGRAM, &config, 2, true);
    assert!(report.failures() >= 1);
    assert_eq!(report.bundles.len(), report.failures());
    assert_eq!(
        tel.registry().counter_value("forensics.bundles"),
        report.bundles.len() as u64
    );

    let bundle = &report.bundles[0];
    assert_eq!(bundle.pass, "gvn");
    assert_eq!(bundle.func, "main");
    assert!(
        bundle.minimized.len() < bundle.commands.len(),
        "minimization removed nothing: {:?}",
        bundle.commands
    );
    assert!(bundle.src_ir.contains("gep inbounds"));
    assert!(!bundle.rule_history.is_empty() || bundle.failing_assertion.is_some());

    // The bundle replays, through its own JSON, to the same failure class.
    let back = crellvm::telemetry::forensics::ForensicBundle::from_json(&bundle.to_json())
        .expect("bundle JSON roundtrips");
    let verdict = replay(&back, &CheckerConfig::sound()).expect("replay runs");
    assert!(verdict.confirms(), "replay diverged: {verdict:?}");
    assert_eq!(verdict.recorded_class, bundle.class);
}

#[test]
fn healthy_runs_produce_no_bundles() {
    let (report, tel) = run(PROGRAM, &PassConfig::default(), 2, true);
    assert_eq!(report.failures(), 0);
    assert!(report.bundles.is_empty());
    assert_eq!(tel.registry().counter_value("forensics.bundles"), 0);
}
