//! End-to-end tests of the regression sentinel: synthetic bench
//! histories through the library API and through `crellvm bench compare`
//! exit codes.

use crellvm::bench::history::{self, compare, CompareConfig, HistoryRecord};
use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_crellvm")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmpfile(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("crellvm_sentinel_{name}"))
}

fn record(sha: &str, metrics: &[(&str, f64)]) -> HistoryRecord {
    let mut r = HistoryRecord::new(sha, "2026-01-01T00:00:00Z", 4, "binary-v2");
    for (k, v) in metrics {
        r.metric(k, *v);
    }
    r
}

/// A history of `n` runs with deterministic MAD-scale jitter around the
/// given phase medians.
fn noisy_history(n: usize, pcheck: f64, wall: f64) -> Vec<HistoryRecord> {
    (0..n)
        .map(|i| {
            // ±4% triangle-ish wobble, deterministic per index.
            let wobble = 1.0 + 0.04 * (((i * 7 + 3) % 9) as f64 - 4.0) / 4.0;
            record(
                &format!("sha{i}"),
                &[
                    ("pcheck_ms.j1", pcheck * wobble),
                    ("wall_ms.j1", wall * wobble),
                    ("fuzz.exec_per_s", 5000.0 / wobble),
                ],
            )
        })
        .collect()
}

#[test]
fn sentinel_flags_a_2x_pcheck_regression() {
    let baseline = noisy_history(10, 100.0, 400.0);
    let current = record(
        "bad",
        &[
            ("pcheck_ms.j1", 200.0),
            ("wall_ms.j1", 404.0),
            ("fuzz.exec_per_s", 5010.0),
        ],
    );
    let report = compare(&current, &baseline, &CompareConfig::default());
    assert!(report.has_regression());
    let pcheck = report
        .deltas
        .iter()
        .find(|d| d.metric == "pcheck_ms.j1")
        .expect("pcheck judged");
    assert!(pcheck.regressed, "2x pcheck must regress: {pcheck:?}");
    // The co-reported healthy metrics stay clean.
    assert!(report
        .deltas
        .iter()
        .filter(|d| d.metric != "pcheck_ms.j1")
        .all(|d| !d.regressed));
    // And the rendered table names the culprit.
    let rendered = report.render();
    assert!(rendered.contains("REGRESSED"), "{rendered}");
    assert!(rendered.contains("pcheck_ms.j1"), "{rendered}");
}

#[test]
fn sentinel_tolerates_mad_level_noise() {
    let baseline = noisy_history(10, 100.0, 400.0);
    // A run at the noisy edge of the historical distribution.
    let current = record(
        "ok",
        &[
            ("pcheck_ms.j1", 104.0),
            ("wall_ms.j1", 416.0),
            ("fuzz.exec_per_s", 4800.0),
        ],
    );
    let report = compare(&current, &baseline, &CompareConfig::default());
    assert!(
        !report.has_regression(),
        "noise flagged as regression: {}",
        report.render()
    );
}

#[test]
fn sentinel_handles_first_run_and_unseen_metrics() {
    let cfg = CompareConfig::default();
    // Empty history: nothing to compare, nothing to flag.
    let report = compare(&record("first", &[("wall_ms.j1", 100.0)]), &[], &cfg);
    assert!(!report.has_regression());
    assert_eq!(report.baseline_runs, 0);
    // A brand-new metric rides along without being judged.
    let baseline = noisy_history(5, 100.0, 400.0);
    let current = record("new", &[("pcheck_ms.j1", 101.0), ("shiny.new_ms", 123.0)]);
    let report = compare(&current, &baseline, &cfg);
    assert!(!report.has_regression());
    assert_eq!(report.new_metrics, vec!["shiny.new_ms".to_string()]);
    assert!(report.render().contains("no baseline yet"));
}

/// Lower-is-better vs higher-is-better: a throughput collapse regresses
/// even though the number went down.
#[test]
fn sentinel_judges_rates_in_the_right_direction() {
    let baseline = noisy_history(8, 100.0, 400.0);
    let current = record(
        "slowfuzz",
        &[
            ("pcheck_ms.j1", 100.0),
            ("wall_ms.j1", 400.0),
            ("fuzz.exec_per_s", 2000.0),
        ],
    );
    let report = compare(&current, &baseline, &CompareConfig::default());
    let fuzz = report
        .deltas
        .iter()
        .find(|d| d.metric == "fuzz.exec_per_s")
        .expect("fuzz judged");
    assert!(fuzz.regressed, "halved exec/s must regress: {fuzz:?}");
}

fn write_history(name: &str, records: &[HistoryRecord]) -> PathBuf {
    let path = tmpfile(name);
    let _ = std::fs::remove_file(&path);
    for r in records {
        history::append(&path, r).expect("append");
    }
    path
}

#[test]
fn bench_compare_cli_exits_nonzero_on_injected_regression() {
    let mut records = noisy_history(10, 100.0, 400.0);
    records.push(record(
        "bad",
        &[
            ("pcheck_ms.j1", 200.0),
            ("wall_ms.j1", 404.0),
            ("fuzz.exec_per_s", 5010.0),
        ],
    ));
    let path = write_history("regressed.jsonl", &records);
    let out = run(&["bench", "compare", "--history", path.to_str().unwrap()]);
    assert!(
        !out.status.success(),
        "regression not flagged: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("REGRESSION"), "{stderr}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bench_compare_cli_exits_zero_on_healthy_history() {
    let records = noisy_history(10, 100.0, 400.0);
    let path = write_history("healthy.jsonl", &records);
    let out = run(&["bench", "compare", "--history", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "healthy history flagged: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("regression sentinel"), "{stdout}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bench_compare_cli_passes_on_empty_and_single_record_history() {
    let missing = tmpfile("missing.jsonl");
    let _ = std::fs::remove_file(&missing);
    let out = run(&["bench", "compare", "--history", missing.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("no baseline yet"));

    let single = write_history("single.jsonl", &[record("only", &[("wall_ms.j1", 100.0)])]);
    let out = run(&["bench", "compare", "--history", single.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("first record"));
    let _ = std::fs::remove_file(&single);
}

/// `--baseline FILE`: judge this branch's newest run against a separate
/// (e.g. main-branch) history file.
#[test]
fn bench_compare_cli_against_external_baseline_file() {
    let main_history = write_history("main.jsonl", &noisy_history(10, 100.0, 400.0));
    let branch = write_history(
        "branch.jsonl",
        &[record(
            "branch",
            &[
                ("pcheck_ms.j1", 205.0),
                ("wall_ms.j1", 401.0),
                ("fuzz.exec_per_s", 4990.0),
            ],
        )],
    );
    let out = run(&[
        "bench",
        "compare",
        "--history",
        branch.to_str().unwrap(),
        "--baseline",
        main_history.to_str().unwrap(),
    ]);
    assert!(
        !out.status.success(),
        "cross-file regression not flagged: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    for p in [&main_history, &branch] {
        let _ = std::fs::remove_file(p);
    }
}
