//! Wide randomized sweeps of the full validated pipeline.
//!
//! Every generated program must (a) validate at every pass and (b) refine
//! its source under the reference interpreter. A larger sweep is behind
//! `--ignored` (run with `cargo test --release --test stress -- --ignored`).

use crellvm::gen::{generate_module, FeatureMix, GenConfig};
use crellvm::interp::{check_refinement, run_main, RunConfig, UndefPolicy};
use crellvm::passes::pipeline::{run_pipeline, StepOutcome};
use crellvm::passes::PassConfig;

fn sweep(range: std::ops::Range<u64>) {
    let mut fails = Vec::new();
    for seed in range {
        let rate = if seed % 3 == 0 { 0.2 } else { 0.0 };
        let mix = if seed % 2 == 0 {
            FeatureMix::Benchmarks
        } else {
            FeatureMix::Csmith
        };
        let cfg = GenConfig {
            seed,
            functions: 3,
            max_depth: 3,
            chunks: 4,
            unsupported_rate: rate,
            feature_mix: mix,
            ..GenConfig::default()
        };
        let m = generate_module(&cfg);
        let (out, report) = run_pipeline(&m, &PassConfig::default());
        for step in &report.steps {
            if let StepOutcome::Failed(reason) = &step.outcome {
                fails.push(format!(
                    "seed {seed}: {} @{}: {reason}",
                    step.pass, step.func
                ));
            }
        }
        let rc = RunConfig {
            undef: UndefPolicy::Seeded(seed),
            ..RunConfig::default()
        };
        let (a, b) = (run_main(&m, &rc), run_main(&out, &rc));
        if let Err(e) = check_refinement(&a, &b) {
            fails.push(format!("seed {seed}: refinement violated: {e}"));
        }
    }
    assert!(fails.is_empty(), "{}", fails.join("\n"));
}

#[test]
fn sweep_300_seeds() {
    sweep(1000..1300);
}

#[test]
#[ignore = "long: 2000 seeds; run with --release -- --ignored"]
fn sweep_2000_seeds() {
    sweep(1000..3000);
}
