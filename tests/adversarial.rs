//! Adversarial soundness canaries: take *valid* translations with their
//! generated proofs, then corrupt the target program in
//! behaviour-changing ways while keeping the proof — the checker must
//! reject every corruption. A checker that accepts any of these would be
//! unsound (the paper's whole point is that the proof checker, not the
//! proof generator, is trusted).

use crellvm::erhl::{validate, ProofUnit, Verdict};
use crellvm::gen::{generate_module, GenConfig};
use crellvm::ir::{Const, Inst, Value};
use crellvm::passes::{gvn, instcombine, mem2reg, PassConfig};

/// Collect validated units from a few generated modules.
fn valid_units() -> Vec<ProofUnit> {
    let mut units = Vec::new();
    for seed in [5u64, 17, 23, 31, 49, 66, 92] {
        let m = generate_module(&GenConfig {
            seed,
            functions: 3,
            ..GenConfig::default()
        });
        for out in [
            mem2reg(&m, &PassConfig::default()),
            gvn(&m, &PassConfig::default()),
            instcombine(&m, &PassConfig::default()),
        ] {
            for u in out.proofs {
                if validate(&u) == Ok(Verdict::Valid) {
                    units.push(u);
                }
            }
        }
    }
    assert!(units.len() >= 20, "need a corpus of valid units");
    units
}

/// Apply `mutate` to the first matching spot of each unit's target; count
/// how many mutated units the checker accepts. Must be zero.
fn assert_all_rejected(name: &str, mutate: impl Fn(&mut ProofUnit) -> bool) {
    let mut mutated = 0;
    let mut accepted = Vec::new();
    for mut unit in valid_units() {
        if !mutate(&mut unit) {
            continue;
        }
        mutated += 1;
        if validate(&unit) == Ok(Verdict::Valid) {
            accepted.push(unit.src.name.clone());
        }
    }
    assert!(mutated > 0, "{name}: mutation never applied");
    assert!(
        accepted.is_empty(),
        "{name}: checker accepted corrupted targets for {accepted:?}"
    );
}

/// Changing a constant argument of an observable call must be caught.
#[test]
fn mutated_call_argument_rejected() {
    assert_all_rejected("call-arg", |unit| {
        for b in &mut unit.tgt.blocks {
            for s in &mut b.stmts {
                if let Inst::Call { callee, args, .. } = &mut s.inst {
                    if callee == "print" {
                        for (_, v) in args.iter_mut() {
                            if let Value::Const(Const::Int { ty, bits }) = v {
                                *v = Value::Const(Const::Int {
                                    ty: *ty,
                                    bits: ty.truncate(bits.wrapping_add(1)),
                                });
                                return true;
                            }
                        }
                    }
                }
            }
        }
        false
    });
}

/// Swapping a conditional branch's targets must be caught (CheckCFG).
#[test]
fn swapped_branch_targets_rejected() {
    assert_all_rejected("cond-br-swap", |unit| {
        for b in &mut unit.tgt.blocks {
            if let crellvm::ir::Term::CondBr {
                if_true, if_false, ..
            } = &mut b.term
            {
                if if_true != if_false {
                    std::mem::swap(if_true, if_false);
                    return true;
                }
            }
        }
        false
    });
}

/// Adding `inbounds` to a plain gep introduces poison: must be caught.
#[test]
fn added_inbounds_flag_rejected() {
    assert_all_rejected("gep-inbounds", |unit| {
        for b in &mut unit.tgt.blocks {
            for s in &mut b.stmts {
                if let Inst::Gep {
                    inbounds: inbounds @ false,
                    ..
                } = &mut s.inst
                {
                    *inbounds = true;
                    return true;
                }
            }
        }
        false
    });
}

/// Flipping a binary operator on a value that flows onwards must be
/// caught.
#[test]
fn flipped_operator_rejected() {
    assert_all_rejected("binop-flip", |unit| {
        // Only flip instructions whose result is actually used (a dead
        // flipped instruction could legitimately still validate).
        let used = unit.tgt.use_counts();
        for b in &mut unit.tgt.blocks {
            for s in &mut b.stmts {
                let Some(r) = s.result else { continue };
                if used.get(&r).copied().unwrap_or(0) == 0 {
                    continue;
                }
                if let Inst::Bin {
                    op: op @ crellvm::ir::BinOp::Add,
                    ..
                } = &mut s.inst
                {
                    *op = crellvm::ir::BinOp::Sub;
                    return true;
                }
            }
        }
        false
    });
}

/// Rewiring a phi's incoming value to a different constant must be caught.
#[test]
fn mutated_phi_incoming_rejected() {
    assert_all_rejected("phi-incoming", |unit| {
        // Only live phis: mutating a dead phi (mem2reg inserts some at the
        // dominance frontier even when no load consumes them) is a sound
        // no-op and may legitimately validate.
        let used = unit.tgt.use_counts();
        for b in &mut unit.tgt.blocks {
            for (r, phi) in &mut b.phis {
                if used.get(r).copied().unwrap_or(0) == 0 {
                    continue;
                }
                for (_, slot) in &mut phi.incoming {
                    if let Some(Value::Const(Const::Int { ty, bits })) = slot {
                        *slot = Some(Value::Const(Const::Int {
                            ty: *ty,
                            bits: ty.truncate(bits.wrapping_add(3)),
                        }));
                        return true;
                    }
                }
            }
        }
        false
    });
}

/// Deleting a store from the target (without privacy evidence) must be
/// caught.
#[test]
fn deleted_store_rejected() {
    assert_all_rejected("store-drop", |unit| {
        // Find a Both row whose instruction is a store to a NON-private
        // location (escaping allocas survive mem2reg) and delete it from
        // the target, marking the row SrcOnly.
        for (bi, b) in unit.tgt.blocks.iter().enumerate() {
            for (ti, s) in b.stmts.iter().enumerate() {
                if matches!(s.inst, Inst::Store { .. }) {
                    // Locate the corresponding row.
                    let mut t = 0usize;
                    for (row, shape) in unit.alignment[bi].iter().enumerate() {
                        let has_tgt = !matches!(shape, crellvm::erhl::RowShape::SrcOnly);
                        if has_tgt {
                            if t == ti {
                                if matches!(shape, crellvm::erhl::RowShape::Both) {
                                    unit.alignment[bi][row] = crellvm::erhl::RowShape::SrcOnly;
                                    unit.tgt.blocks[bi].stmts.remove(ti);
                                    return true;
                                }
                                return false;
                            }
                            t += 1;
                        }
                    }
                }
            }
        }
        false
    });
}

/// A completely empty proof for a *changed* program must never validate
/// (while it must validate for the identity translation) — the base case.
#[test]
fn empty_proof_only_validates_identity() {
    use crellvm::erhl::ProofBuilder;
    let m = generate_module(&GenConfig {
        seed: 3,
        functions: 2,
        ..GenConfig::default()
    });
    for f in &m.functions {
        let unit = ProofBuilder::new("identity", f).finish();
        assert_eq!(validate(&unit), Ok(Verdict::Valid), "@{}", f.name);
    }
    // Now the same with one instruction deleted from the target.
    for f in &m.functions {
        let mut pb = ProofBuilder::new("bogus", f);
        let mut deleted = false;
        'outer: for (bi, b) in f.blocks.iter().enumerate() {
            for (i, s) in b.stmts.iter().enumerate() {
                let Some(r) = s.result else { continue };
                if s.inst.is_pure() && f.use_counts().get(&r).copied().unwrap_or(0) > 0 {
                    pb.delete_tgt(bi, i);
                    deleted = true;
                    break 'outer;
                }
            }
        }
        if deleted {
            let unit = pb.finish();
            assert!(
                validate(&unit).is_err(),
                "@{}: deleting a used instruction with no proof must fail",
                f.name
            );
        }
    }
}
