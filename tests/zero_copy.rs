//! Equivalence of the zero-copy decode paths with the owned ones: the
//! arena-backed v2 scratch decoder must produce field-identical units
//! (and identical seeded-interner statistics — they feed deterministic
//! counters and thus cache entries), and the mmap file reader must be
//! observationally identical to a heap read, including on truncated or
//! bit-flipped files, where the whole-stream checksum must turn every
//! corruption into a clean error *through the mapping*.

use crellvm::erhl::serialize_bin::DecodeScratch;
use crellvm::erhl::{
    proof_from_bytes, proof_from_bytes_v2, proof_from_bytes_v2_with, proof_to_bytes_v2,
    proof_to_json, read_bytes, seed_interner, validate, ProofUnit,
};
use crellvm::gen::{generate_module, FeatureMix, GenConfig};
use crellvm::passes::{gvn, instcombine, licm, mem2reg, PassConfig};
use proptest::prelude::*;
use std::path::PathBuf;

/// Run the four passes in pipeline order, collecting every proof unit.
fn proofs_for_seed(seed: u64) -> Vec<ProofUnit> {
    let cfg = GenConfig {
        seed,
        functions: 2,
        max_depth: 3,
        feature_mix: if seed.is_multiple_of(2) {
            FeatureMix::Benchmarks
        } else {
            FeatureMix::Csmith
        },
        ..GenConfig::default()
    };
    let pc = PassConfig::default();
    let mut m = generate_module(&cfg);
    let mut proofs = Vec::new();
    for pass in [mem2reg, instcombine, gvn, licm] {
        let out = pass(&m, &pc);
        proofs.extend(out.proofs);
        m = out.module;
    }
    proofs
}

/// A scratch file under a per-process temp dir (proptest shrinks rerun
/// the closure, so the name only needs to be unique per test).
fn tmpfile(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crellvm_zc_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The scratch-arena decoder (the worker fast path, reusing one
    /// `DecodeScratch` across units like a pipeline worker does) decodes
    /// every proof identically to the owned path — same fields, same
    /// verdict, same canonical re-encoding, and the same seeded-interner
    /// statistics, which are part of the deterministic metric contract.
    #[test]
    fn scratch_decode_matches_owned_decode(seed in 0u64..2000) {
        let mut scratch = DecodeScratch::default();
        for unit in proofs_for_seed(seed) {
            let v2 = proof_to_bytes_v2(&unit).unwrap();
            let owned = proof_from_bytes_v2(&v2).unwrap();
            let zc = proof_from_bytes_v2_with(&v2, &mut scratch).unwrap();
            prop_assert_eq!(proof_to_json(&zc).unwrap(), proof_to_json(&owned).unwrap());
            prop_assert_eq!(proof_to_bytes_v2(&zc).unwrap(), v2);
            match (validate(&owned), validate(&zc)) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(_), Err(_)) => {}
                other => prop_assert!(false, "verdicts diverge: {other:?}"),
            }
            let (a, b) = (seed_interner(&owned), seed_interner(&zc));
            prop_assert_eq!(a.len(), b.len());
            prop_assert_eq!(a.hits(), b.hits());
            prop_assert_eq!(a.misses(), b.misses());
        }
    }

    /// Reading a proof file through the mmap reader yields the same bytes
    /// as a heap read, and both decode to the same unit.
    #[test]
    fn mapped_read_is_identical_to_heap_read(seed in 0u64..500) {
        let Some(unit) = proofs_for_seed(seed).into_iter().next() else { return Ok(()) };
        let bytes = proof_to_bytes_v2(&unit).unwrap();
        let path = tmpfile("mapped.cpe");
        std::fs::write(&path, &bytes).unwrap();
        let heap = read_bytes(&path, false).unwrap();
        let mapped = read_bytes(&path, true).unwrap();
        prop_assert!(!heap.is_mapped());
        if cfg!(target_os = "linux") {
            prop_assert!(mapped.is_mapped(), "non-empty file must map on linux");
        }
        prop_assert_eq!(&heap[..], &bytes[..]);
        prop_assert_eq!(&mapped[..], &bytes[..]);
        let a = proof_from_bytes(&heap).unwrap();
        let b = proof_from_bytes(&mapped).unwrap();
        prop_assert_eq!(proof_to_json(&a).unwrap(), proof_to_json(&b).unwrap());
    }

    /// Truncating a v2 proof file at any byte boundary is a clean decode
    /// error through the mmap reader — the checksum pass (the one full
    /// touch of the mapping) rejects the cut before the body is read.
    #[test]
    fn truncated_file_through_mmap_is_a_clean_error(seed in 0u64..200, frac in 0.0f64..1.0) {
        let Some(unit) = proofs_for_seed(seed).into_iter().next() else { return Ok(()) };
        let bytes = proof_to_bytes_v2(&unit).unwrap();
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        let path = tmpfile("truncated.cpe");
        std::fs::write(&path, &bytes[..cut]).unwrap();
        for mmap in [false, true] {
            let read = read_bytes(&path, mmap).unwrap();
            prop_assert_eq!(read.len(), cut);
            prop_assert!(proof_from_bytes(&read).is_err(), "mmap={mmap}");
        }
    }

    /// A single bit flip anywhere in the file never panics the decoder
    /// when read through the mapping; past the 2-byte magic the checksum
    /// makes it a hard error, identically for the heap and mapped reads.
    #[test]
    fn bit_flipped_file_through_mmap_never_panics(
        seed in 0u64..200, frac in 0.0f64..1.0, bit in 0u32..8
    ) {
        let Some(unit) = proofs_for_seed(seed).into_iter().next() else { return Ok(()) };
        let mut bytes = proof_to_bytes_v2(&unit).unwrap();
        let pos = ((bytes.len() - 1) as f64 * frac) as usize;
        bytes[pos] ^= 1 << bit;
        let path = tmpfile("flipped.cpe");
        std::fs::write(&path, &bytes).unwrap();
        let heap = read_bytes(&path, false).unwrap();
        let mapped = read_bytes(&path, true).unwrap();
        let (h, m) = (proof_from_bytes(&heap), proof_from_bytes(&mapped));
        prop_assert_eq!(h.is_err(), m.is_err(), "heap and mapped reads must agree");
        if pos >= 2 {
            prop_assert!(m.is_err(), "corruption past the magic must be rejected");
        } else if let Ok(mutated) = m {
            let _ = validate(&mutated); // may sniff as v1; must not panic
        }
    }
}

/// An empty proof file is served from the heap on every platform (there
/// is nothing to map) and still fails decoding cleanly.
#[test]
fn empty_file_reads_heap_backed_and_fails_cleanly() {
    let path = tmpfile("empty.cpe");
    std::fs::write(&path, b"").unwrap();
    for mmap in [false, true] {
        let read = read_bytes(&path, mmap).unwrap();
        assert!(!read.is_mapped());
        assert!(read.is_empty());
        assert!(proof_from_bytes(&read).is_err());
    }
}
