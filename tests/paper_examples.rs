//! The worked examples of the paper, reproduced end-to-end: each example's
//! translation is produced by the instrumented pass (or built by hand),
//! its ERHL proof is validated, and the behaviour is checked
//! differentially where applicable.

use crellvm::diff::diff_modules;
use crellvm::erhl::{
    validate, AutoKind, Expr, InfRule, Loc, Pred, ProofBuilder, Side, TValue, Verdict,
};
use crellvm::interp::{check_refinement, run_main, RunConfig};
use crellvm::ir::{parse_module, verify_module, BinOp, Inst, Type, Value};
use crellvm::passes::{gvn, instcombine, mem2reg, PassConfig};

/// Paper Fig 2: the assoc-add translation, produced by instcombine and
/// validated with the generated proof (`assoc_add` + `reduce_maydiff`).
#[test]
fn fig2_assoc_add() {
    let src = parse_module(
        r#"
        declare @foo(i32)
        define @main(i32 %a) {
        entry:
          %x = add i32 %a, 1
          %y = add i32 %x, 2
          call void @foo(i32 %y)
          ret void
        }
        "#,
    )
    .unwrap();
    let out = instcombine(&src, &PassConfig::default());
    let f = out.module.function("main").unwrap();
    // 20: y := add x 2 became y := add a 3, and the dead x := add a 1 was
    // removed by instcombine's dead-code elimination.
    assert_eq!(
        f.blocks[0].stmts[0].inst,
        Inst::Bin {
            op: BinOp::Add,
            ty: Type::I32,
            lhs: Value::Reg(f.params[0].1),
            rhs: Value::int(Type::I32, 3)
        }
    );
    for unit in &out.proofs {
        assert_eq!(validate(unit), Ok(Verdict::Valid));
        // The generated proof uses the paper's rules.
        let has_assoc = unit
            .infrules
            .values()
            .flatten()
            .any(|r| matches!(r, InfRule::Arith(crellvm::erhl::ArithRule::AddAssoc { .. })));
        assert!(has_assoc, "proof should contain the assoc_add rule");
    }
    let rc = RunConfig::default();
    check_refinement(&run_main(&src, &rc), &run_main(&out.module, &rc)).unwrap();
}

/// Paper Fig 3: register promotion through a diamond with a phi-merge of
/// the stored values, validated with the intro_ghost/transitivity proof.
#[test]
fn fig3_mem2reg() {
    let src = parse_module(
        r#"
        declare @foo(i32)
        define @main(i1 %c, i32 %x, ptr %q) {
        entry:
          %p = alloca i32
          store i32 42, ptr %p
          br i1 %c, label left, label right
        left:
          %a = load i32, ptr %p
          call void @foo(i32 %a)
          br label exit
        right:
          store i32 %x, ptr %p
          store i32 %x, ptr %q
          br label exit
        exit:
          %b = load i32, ptr %p
          store i32 %b, ptr %q
          ret void
        }
        "#,
    )
    .unwrap();
    let out = mem2reg(&src, &PassConfig::default());
    let f = out.module.function("main").unwrap();
    // p1 := φ(42, x) inserted at exit; all accesses to %p gone.
    let exit = f.block_by_name("exit").unwrap();
    let (_, phi) = &f.block(exit).phis[0];
    let left = f.block_by_name("left").unwrap();
    let right = f.block_by_name("right").unwrap();
    assert_eq!(phi.value_from(left), Some(&Value::int(Type::I32, 42)));
    assert_eq!(phi.value_from(right), Some(&Value::Reg(f.params[1].1)));
    for unit in &out.proofs {
        assert_eq!(validate(unit), Ok(Verdict::Valid));
        let has_ghost = unit
            .infrules
            .values()
            .flatten()
            .any(|r| matches!(r, InfRule::IntroGhost { .. }));
        assert!(has_ghost, "proof should introduce ghost registers");
        assert!(unit.autos.contains(&AutoKind::Transitivity));
    }
}

/// Paper §4: the fold-φ translation with its hand-built ERHL proof,
/// exercising old registers on a cyclic control flow.
#[test]
fn fold_phi_sec4() {
    // Source:                         Target:
    //   B1: x := a+1                    B1: x := a+1
    //   B2: z := φ(x, y)                B2: t := φ(a, z)
    //       w := φ(42, z)                   w := φ(42, z)
    //                                       z := t + 1          (new)
    //       print(w)                        print(w)
    //       y := z + 1                      y := z + 1
    //       c := y < n; br c B2 exit        …
    let m = parse_module(
        r#"
        declare @print(i32)
        define @main(i32 %a, i32 %n) {
        entry:
          %x = add i32 %a, 1
          br label b2
        b2:
          %z = phi i32 [ %x, entry ], [ %y, b2 ]
          %w = phi i32 [ 42, entry ], [ %z, b2 ]
          call void @print(i32 %w)
          %y = add i32 %z, 1
          %c = icmp slt i32 %y, %n
          br i1 %c, label b2, label exit
        exit:
          ret void
        }
        "#,
    )
    .unwrap();
    let f = m.functions[0].clone();
    let a = f.params[0].1;
    let x = f.blocks[0].stmts[0].result.unwrap();
    let b2 = f.block_by_name("b2").unwrap().index();
    let entry = f.block_by_name("entry").unwrap().index();
    let (z, _) = f.blocks[b2].phis[0];
    let y = f.blocks[b2].stmts[1].result.unwrap();

    let mut pb = ProofBuilder::new("instcombine.fold-phi", &f);
    // Build the target: replace the z-phi with t := φ(a, z) + z := t+1.
    let t = pb.fresh_reg("t");
    {
        let tgt = pb.tgt_mut();
        let pos = tgt.blocks[b2]
            .phis
            .iter()
            .position(|(r, _)| *r == z)
            .unwrap();
        let mut phi = tgt.blocks[b2].phis.remove(pos).1;
        phi.set_incoming(crellvm::ir::BlockId::from_index(entry), Value::Reg(a));
        phi.set_incoming(crellvm::ir::BlockId::from_index(b2), Value::Reg(z));
        tgt.blocks[b2].phis.insert(pos, (t, phi));
        tgt.blocks[b2].stmts.insert(
            0,
            crellvm::ir::Stmt {
                result: Some(z),
                inst: Inst::Bin {
                    op: BinOp::Add,
                    ty: Type::I32,
                    lhs: Value::Reg(t),
                    rhs: Value::int(Type::I32, 1),
                },
            },
        );
    }
    // Keep the alignment in sync: the inserted z := t+1 is a TgtOnly row
    // at the *start* of b2 — our builder only appends rows, so we instead
    // record the alignment directly.
    // (Row layout in b2: [TgtOnly z:=t+1, Both print, Both y, Both c].)
    let mut unit = {
        pb.auto(AutoKind::Transitivity);
        pb.auto(AutoKind::ReduceMaydiff);
        pb.global_maydiff(crellvm::erhl::TReg::Phy(t));

        // Assertions. ẑ mediates "the value z must have".
        let zhat = Expr::value(TValue::ghost("z"));
        let zv = Expr::Value(TValue::phy(z));
        let tv = TValue::phy(t);
        let t_plus_1 = Expr::bin(BinOp::Add, Type::I32, tv, TValue::int(Type::I32, 1));
        // {x ⊒ add(a,1), add(a,1) ⊒ x} to the end of entry (both sides).
        let xdef = Expr::bin(
            BinOp::Add,
            Type::I32,
            TValue::phy(a),
            TValue::int(Type::I32, 1),
        );
        for side in [Side::Src, Side::Tgt] {
            pb.range_pred(
                side,
                Pred::Lessdef(Expr::Value(TValue::phy(x)), xdef.clone()),
                Loc::AfterRow(entry, 0),
                Loc::End(entry),
            );
            pb.range_pred(
                side,
                Pred::Lessdef(xdef.clone(), Expr::Value(TValue::phy(x))),
                Loc::AfterRow(entry, 0),
                Loc::End(entry),
            );
        }
        // At the start of B2: z_src ⊒ ẑ and ẑ ⊒ t+1 (tgt); z still differs.
        pb.range_pred(
            Side::Src,
            Pred::Lessdef(zv.clone(), zhat.clone()),
            Loc::Start(b2),
            Loc::Start(b2),
        );
        pb.range_pred(
            Side::Tgt,
            Pred::Lessdef(zhat.clone(), t_plus_1.clone()),
            Loc::Start(b2),
            Loc::Start(b2),
        );
        // {y ⊒ add(z,1)} to the end of B2 in the source (feeds the back edge).
        let ydef = Expr::bin(
            BinOp::Add,
            Type::I32,
            TValue::phy(z),
            TValue::int(Type::I32, 1),
        );
        pb.range_pred(
            Side::Src,
            Pred::Lessdef(Expr::Value(TValue::phy(y)), ydef.clone()),
            Loc::AfterRow(b2, 2),
            Loc::End(b2),
        );

        // Edge entry → b2: ghost anchored on the old x.
        pb.infrule_edge(
            entry,
            b2,
            InfRule::IntroGhost {
                g: "z".into(),
                e: Expr::Value(TValue::old(x)),
            },
        );
        // ẑ ⊒ x̄ ⊒ add(ā,1) ⊒ add(t,1): substitute ā ↦ t (premise ā ⊒ t from the φ).
        pb.infrule_edge(
            entry,
            b2,
            InfRule::Substitute {
                side: Side::Tgt,
                from: TValue::old(a),
                to: TValue::phy(t),
                e: Expr::bin(
                    BinOp::Add,
                    Type::I32,
                    TValue::old(a),
                    TValue::int(Type::I32, 1),
                ),
            },
        );

        // Back edge b2 → b2: the paper's intro_ghost(ẑ, z̄+1).
        let zbar_plus_1 = Expr::bin(
            BinOp::Add,
            Type::I32,
            TValue::old(z),
            TValue::int(Type::I32, 1),
        );
        pb.infrule_edge(
            b2,
            b2,
            InfRule::IntroGhost {
                g: "z".into(),
                e: zbar_plus_1.clone(),
            },
        );
        pb.infrule_edge(
            b2,
            b2,
            InfRule::Substitute {
                side: Side::Tgt,
                from: TValue::old(z),
                to: TValue::phy(t),
                e: zbar_plus_1,
            },
        );
        pb.finish()
    };
    // Fix up the alignment for the inserted first row of b2.
    unit.alignment[b2].insert(0, crellvm::erhl::RowShape::TgtOnly);
    // Re-slot the assertions of b2 (everything shifts by one row; the map
    // was built before the insert, so rebuild the affected slots).
    let base = unit
        .assertions
        .get(&crellvm::erhl::SlotId::new(b2, 0))
        .cloned()
        .unwrap();
    let nrows = unit.alignment[b2].len();
    let mut reslotted = std::collections::BTreeMap::new();
    for (k, v) in std::mem::take(&mut unit.assertions) {
        if k.block as usize == b2 {
            continue;
        }
        reslotted.insert(k, v);
    }
    // Slot 0 keeps the edge goal; slots ≥ 1 get the base (facts after the
    // z-definition are re-derived by the checker's posts + autos); the y
    // range must persist, so re-add it to slots 4..=nrows.
    for s in 0..=nrows {
        let mut a = base.clone();
        if s >= 1 {
            // z is pinned from the z-row on; drop nothing, but allow the
            // maydiff to keep only t (z equal after its definition).
        }
        if s >= 3 {
            let (z_, y_) = (z, y);
            a.src.insert_lessdef(
                Expr::Value(TValue::phy(y_)),
                Expr::bin(
                    BinOp::Add,
                    Type::I32,
                    TValue::phy(z_),
                    TValue::int(Type::I32, 1),
                ),
            );
        }
        if s >= 1 {
            a.add_maydiff(crellvm::erhl::TReg::Phy(z));
            a.remove_maydiff(&crellvm::erhl::TReg::Phy(z));
        }
        if s == 0 {
            a.add_maydiff(crellvm::erhl::TReg::Phy(z));
        }
        reslotted.insert(crellvm::erhl::SlotId::new(b2, s), a);
    }
    unit.assertions = reslotted;
    // Move the row-anchored infrules of b2 one row down (they were placed
    // by src-row coordinates before the insert — none were, so nothing to
    // shift), and keep the edge rules as-is.

    assert_eq!(
        validate(&unit),
        Ok(Verdict::Valid),
        "fold-phi proof: {:?}",
        validate(&unit)
    );

    // Differential check.
    let mut tgt_mod = m.clone();
    *tgt_mod.function_mut("main").unwrap() = unit.tgt.clone();
    verify_module(&tgt_mod).unwrap();
    let rc = RunConfig::default();
    check_refinement(&run_main(&m, &rc), &run_main(&tgt_mod, &rc)).unwrap();
}

/// Paper Fig 15 (§C): PRE with a leader edge and a branch-constant (BCT)
/// edge, produced by the gvn pass.
#[test]
fn fig15_gvn_pre() {
    let src = parse_module(
        r#"
        declare @print(i32)
        define @main(i32 %n, i1 %c1) {
        entry:
          %x1 = sub i32 %n, 2
          br i1 %c1, label left, label right
        left:
          %y1 = add i32 %x1, 1
          %c2 = icmp eq i32 %y1, 10
          br i1 %c2, label empty, label other
        empty:
          br label exit
        other:
          call void @print(i32 1)
          br label exit
        right:
          %x2 = sub i32 %n, 2
          %y2 = add i32 %x2, 1
          call void @print(i32 %y2)
          br label exit
        exit:
          %y3 = add i32 %x1, 1
          call void @print(i32 %y3)
          ret void
        }
        "#,
    )
    .unwrap();
    let out = gvn(&src, &PassConfig::default());
    for unit in &out.proofs {
        assert_eq!(validate(unit), Ok(Verdict::Valid), "tgt:\n{}", unit.tgt);
    }
    // The icmp_to_eq rule (BCT reasoning) appears in the proof iff the
    // empty-edge used a branch constant.
    let main_unit = out.proofs.iter().find(|u| u.src.name == "main").unwrap();
    let uses_icmp_to_eq = main_unit
        .infrules
        .values()
        .flatten()
        .any(|r| matches!(r, InfRule::IcmpToEq { .. }));
    assert!(
        uses_icmp_to_eq,
        "Fig 15's branching assertion should be exercised"
    );
    let rc = RunConfig::default();
    check_refinement(&run_main(&src, &rc), &run_main(&out.module, &rc)).unwrap();
}

/// Paper §1.1's framework: the proof-generating compiler's output agrees
/// with the "original" compiler's output up to alpha-equivalence
/// (`llvm-diff`). Our passes are deterministic, so running twice and
/// diffing reproduces that check.
#[test]
fn framework_llvm_diff_check() {
    let src = parse_module(
        r#"
        declare @print(i32)
        define @main() {
        entry:
          %p = alloca i32
          store i32 7, ptr %p
          %a = load i32, ptr %p
          %b = add i32 %a, 0
          call void @print(i32 %b)
          ret void
        }
        "#,
    )
    .unwrap();
    let run1 = mem2reg(&src, &PassConfig::default());
    let run2 = mem2reg(&src, &PassConfig::default());
    diff_modules(&run1.module, &run2.module).expect("tgt and tgt' are alpha-equivalent");
}
