//! Integration tests for the telemetry layer: deterministic metrics,
//! trace round-trips, the proof-audit log on failing validations, and the
//! `gen_proofs = false` (`Orig`) mode.

use crellvm::ir::{parse_module, printer::print_module};
use crellvm::passes::{mem2reg, run_pipeline_traced, BugSet, PassConfig};
use crellvm::telemetry::{Event, Registry, Snapshot, Telemetry, Trace};
use std::sync::Arc;

const PROGRAM: &str = r#"
    declare @print(i32)
    define @main(i32 %n) {
    entry:
      %p = alloca i32
      store i32 0, ptr %p
      br label loop
    loop:
      %i = phi i32 [ 0, entry ], [ %i2, loop ]
      %acc = load i32, ptr %p
      %inv = mul i32 %n, 4
      %t = add i32 %inv, 0
      %acc2 = add i32 %acc, %t
      store i32 %acc2, ptr %p
      %i2 = add i32 %i, 1
      %c = icmp slt i32 %i2, 5
      br i1 %c, label loop, label exit
    exit:
      %r = load i32, ptr %p
      call void @print(i32 %r)
      ret void
    }
"#;

/// The gep program that trips PR28562 when the bug is switched on.
const GEP_PROGRAM: &str = r#"
    declare @bar(ptr, ptr)
    define @main(ptr %p) {
    entry:
      %q1 = gep inbounds ptr %p, i64 10
      %q2 = gep ptr %p, i64 10
      call void @bar(ptr %q1, ptr %q2)
      ret void
    }
"#;

fn traced_run(src: &str, config: &PassConfig) -> (Snapshot, String, usize) {
    let m = parse_module(src).expect("parse");
    let registry = Arc::new(Registry::new());
    let (trace, buffer) = Trace::in_memory();
    let tel = Telemetry::with_registry(registry.clone()).with_trace(trace);
    let (_, report) = run_pipeline_traced(&m, config, &tel);
    (registry.snapshot(), buffer.contents(), report.validations())
}

#[test]
fn pipeline_counters_are_deterministic_across_runs() {
    let (a, _, _) = traced_run(PROGRAM, &PassConfig::default());
    let (b, _, _) = traced_run(PROGRAM, &PassConfig::default());
    // Counters and histograms are pure functions of the input program;
    // only the wall-clock timers may differ between runs.
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.histograms, b.histograms);

    // And they are non-trivial: the pipeline ran, the checker applied
    // rules, and the passes did domain work.
    assert!(a.counters["pipeline.steps"] >= 4);
    assert_eq!(
        a.counters["pipeline.steps"],
        a.counters["checker.validations"]
    );
    assert!(a.counters["pass.mem2reg.allocas_promoted"] >= 1);
    assert!(a.counters.keys().any(|k| k.starts_with("checker.rule.")));
    assert!(a.histograms["pipeline.proof_bytes"].count >= 4);
    assert!(a.timers.contains_key("time.orig") && a.timers.contains_key("time.pcheck"));
}

#[test]
fn metrics_snapshot_roundtrips_through_json() {
    let (snap, _, _) = traced_run(PROGRAM, &PassConfig::default());
    let json = snap.to_json();
    assert_eq!(Snapshot::from_json(&json).expect("parse snapshot"), snap);
}

#[test]
fn trace_has_one_event_per_validation_step_and_roundtrips() {
    let (_, trace, validations) = traced_run(PROGRAM, &PassConfig::default());
    let events: Vec<Event> = trace
        .lines()
        .map(|line| {
            let e = Event::from_json_line(line).expect("every trace line parses");
            // JSON-lines round-trip: re-serializing reproduces the line.
            assert_eq!(e.to_json_line(), line);
            e
        })
        .collect();
    let steps: Vec<&Event> = events
        .iter()
        .filter(|e| e.kind == "validation.step")
        .collect();
    assert_eq!(
        steps.len(),
        validations,
        "one validation.step event per step"
    );
    for e in steps {
        assert!(e.field_str("pass").is_some());
        assert!(e.field_str("func").is_some());
        assert!(matches!(
            e.field_str("verdict"),
            Some("valid" | "failed" | "not_supported")
        ));
    }
}

#[test]
fn failing_validation_emits_failure_event() {
    let config = PassConfig::with_bugs(BugSet {
        pr28562: true,
        ..BugSet::default()
    });
    let (snap, trace, _) = traced_run(GEP_PROGRAM, &config);
    assert!(snap.counters["pipeline.failed"] >= 1);
    assert_eq!(
        snap.counters["pipeline.failed"],
        snap.counters["checker.failures"]
    );

    let failure = trace
        .lines()
        .map(|l| Event::from_json_line(l).expect("trace line parses"))
        .find(|e| e.kind == "validation.failure")
        .expect("a validation.failure event is in the audit log");
    assert_eq!(failure.field_str("pass"), Some("gvn"));
    assert_eq!(failure.field_str("func"), Some("main"));
    assert!(!failure.field_str("at").unwrap_or("").is_empty());
    assert!(!failure.field_str("reason").unwrap_or("").is_empty());
}

#[test]
fn disabling_proofs_transforms_identically_but_skips_proof_work() {
    let m = parse_module(PROGRAM).expect("parse");
    let with = mem2reg(&m, &PassConfig::default());
    let without = mem2reg(&m, &PassConfig::default().without_proofs());
    // The transformation itself is unchanged...
    assert_eq!(print_module(&with.module), print_module(&without.module));
    // ...but no proof obligations are produced (the honest `Orig` run).
    assert!(with.proofs.iter().any(|u| u.not_supported.is_none()));
    assert!(without.proofs.iter().all(|u| u.not_supported.is_some()));
    assert!(without
        .proofs
        .iter()
        .all(|u| u.assertions.is_empty() && u.infrules.is_empty()));
}

#[test]
fn event_from_json_line_rejects_malformed_input() {
    let malformed = [
        "",                      // empty
        "{",                     // truncated object
        "[1]",                   // not an object
        "\"x\"",                 // bare string
        "42",                    // bare number
        "{}",                    // no `kind`
        "{\"kind\": 3}",         // `kind` is not a string
        "{\"kind\": null}",      // `kind` is null
        "{\"kind\":\"k\"} junk", // trailing garbage
        "{\"kind\":\"k\",}",     // trailing comma
    ];
    for line in malformed {
        assert!(
            Event::from_json_line(line).is_err(),
            "malformed line accepted: {line:?}"
        );
    }
    // The minimal well-formed line still parses, extra fields intact.
    let ok = Event::from_json_line("{\"kind\":\"k\",\"n\":7}").expect("well-formed line");
    assert_eq!(ok.kind, "k");
    assert_eq!(ok.field_u64("n"), Some(7));
}

#[test]
fn merge_snapshot_is_commutative_on_the_deterministic_view() {
    let make = |seed: u64| {
        let r = Registry::new();
        r.add("shared.counter", seed * 3 + 1);
        r.add(&format!("only.{seed}"), seed + 10);
        for v in 0..seed * 5 + 2 {
            r.observe("shared.hist", v * v);
            r.observe(&format!("hist.{seed}"), v + seed);
        }
        r.record_duration("shared.timer", std::time::Duration::from_micros(seed + 1));
        r.snapshot()
    };
    let (a, b) = (make(2), make(7));

    let ab = Registry::new();
    ab.merge_snapshot(&a);
    ab.merge_snapshot(&b);
    let ba = Registry::new();
    ba.merge_snapshot(&b);
    ba.merge_snapshot(&a);

    // Merge order must not be observable in the deterministic view (the
    // raw view legitimately differs in wall-clock timer totals only when
    // the inputs do; here even those match, but the guarantee we rely on
    // everywhere is the deterministic one).
    assert_eq!(ab.snapshot().deterministic(), ba.snapshot().deterministic());
    // Merging is also additive: both orders see the sum of both inputs.
    assert_eq!(ab.counter_value("shared.counter"), 2 * 3 + 1 + 7 * 3 + 1);
    assert_eq!(ba.counter_value("only.2"), 12);
    assert_eq!(ba.counter_value("only.7"), 17);
}

/// A writer whose every write fails, for exercising the drop counter.
struct BrokenPipe;

impl std::io::Write for BrokenPipe {
    fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
        Err(std::io::Error::new(
            std::io::ErrorKind::BrokenPipe,
            "broken pipe",
        ))
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn failed_trace_writes_surface_as_the_dropped_counter() {
    // At the sink: emit reports the failure and counts it.
    let trace = Trace::new(Box::new(BrokenPipe));
    assert!(!trace.emit(&Event::new("x")));
    assert!(!trace.emit(&Event::new("y")));
    assert_eq!(trace.dropped(), 2);

    // Through Telemetry: every dropped event lands in `trace.dropped`, so
    // a metrics snapshot reveals an audit log with holes in it.
    let registry = Arc::new(Registry::new());
    let tel = Telemetry::with_registry(registry.clone())
        .with_trace(Arc::new(Trace::new(Box::new(BrokenPipe))));
    tel.emit(Event::new("validation.step"));
    tel.emit(Event::new("validation.step"));
    tel.emit(Event::new("validation.failure"));
    assert_eq!(registry.counter_value("trace.dropped"), 3);

    // A healthy in-memory sink drops nothing.
    let (trace, _buffer) = Trace::in_memory();
    assert!(trace.emit(&Event::new("x")));
    assert_eq!(trace.dropped(), 0);
}
