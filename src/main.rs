//! The `crellvm` command-line tool: the framework's workflows from the
//! shell.
//!
//! ```text
//! crellvm opt <file.cll> [--pass NAME]... [--bugs 3.7.1|5.0.1-pre|none]
//!     Optimize with proof generation and validate every translation.
//! crellvm run <file.cll> [--seed N]
//!     Interpret @main and print the observable trace.
//! crellvm diff <a.cll> <b.cll>
//!     Alpha-equivalence check (the llvm-diff analogue).
//! crellvm gen --seed N [--functions K] [--out FILE]
//!     Generate a random program.
//! crellvm check [--trace FILE] <proof-file>...
//!     Validate saved proofs (the separate checker process of Fig 1).
//! crellvm report [--format text|openmetrics|chrome-trace|profile|folded]
//!                [--top N] [--weight time|cost] <file>
//!     Render a metrics snapshot (or, for the span-file formats, a cost
//!     profile table / collapsed-stack flamegraph lines).
//! crellvm forensics <bundle.forensic.json>
//!     Inspect and replay a failure forensic bundle.
//! crellvm bench compare [--history FILE] [--baseline last|FILE]
//!     Judge the newest bench-history record against the recent window
//!     with MAD noise bands; exits non-zero on a regression.
//! crellvm fuzz [--seeds A..B] [--jobs N] [--mutate-rate R]
//!              [--compiler 3.7.1|5.0.1-pre|none] [--out DIR]
//!     Run a reproducible soundness fuzzing campaign: generate programs,
//!     optimize, inject seeded miscompilations, and cross-check the
//!     checker against interpreter refinement; exits non-zero iff a
//!     soundness alarm (checker accepts, refinement refutes) survives
//!     minimization.
//! crellvm serve [--addr HOST:PORT] [--queue N] [--cache-dir DIR]
//!               [--access-log FILE] [--span-log FILE] [--bench ...]
//!     Run the validation daemon: POST /v1/validate (IR text, JSON, or
//!     v2-wire module bodies) with a bounded admission queue (429 +
//!     Retry-After on overflow), tenant-namespaced verdict cache, live
//!     /metrics (OpenMetrics), /healthz + /readyz probes, per-request
//!     trace ids, and structured JSON-lines access/span logs. With
//!     --bench, replays the synthetic corpus against the daemon at a
//!     target QPS and writes BENCH_serve.json + a history record.
//! crellvm top --addr HOST:PORT [--once] [--interval-ms N]
//!     A refreshing one-screen fleet view of a running daemon, fed
//!     entirely by scraping its /metrics endpoint.
//! ```
//!
//! `opt --proof-dir DIR [--binary]` writes each translation's proof to
//! `DIR/<pass>.<function>.{json,cpb}`; `check` validates such files
//! independently of the compiler — the trust story of the paper, where
//! the checker never has to share a process with the optimizer.
//!
//! `opt --metrics FILE` snapshots the telemetry registry (counters,
//! histograms, span timers) to a JSON file after the run; `--trace FILE`
//! streams the proof-audit log — one JSON-lines event per validation
//! step — as it happens. `report <metrics.json>` renders a snapshot as
//! the paper's Fig 6/8-style tables.
//!
//! `opt --spans FILE` records the causal span tree — one hierarchical
//! trace per module → function → pass → proof command — which
//! `report --format chrome-trace` converts to Chrome `trace_event` JSON
//! for `chrome://tracing` / Perfetto. `opt --forensics-dir DIR` writes a
//! replayable forensic bundle for every checker rejection (failure class,
//! rule history, IR slice, ddmin-minimized proof-command core); the
//! `forensics` subcommand inspects a bundle and replays it, exiting
//! non-zero unless both the full and the minimized proof still fail in
//! the recorded class. `report --format openmetrics` renders a metrics
//! snapshot in OpenMetrics text exposition format.
//!
//! `opt --jobs N` and `check --jobs N` fan the per-function validation
//! work across N worker threads (default: the machine's available
//! parallelism). Validation units are independent, so the transformed
//! module, the per-step output lines, and every measurement metric are
//! identical at any thread count; only wall-clock timers and the
//! scheduling counters (`pipeline.jobs`, `validate.steal.*`) vary.
//!
//! `opt`, `check`, and `fuzz` accept `--progress human|json`: a live
//! heartbeat line (items done/total, rate, ETA, cache hit rate, alarms)
//! on stderr every 200 ms. Heartbeats never touch stdout or the
//! deterministic metrics/span views, so piped output and recorded
//! snapshots are byte-identical with or without them.

use crellvm::bench::history::{self, CompareConfig};
use crellvm::diff::diff_modules;
use crellvm::erhl::{
    proof_from_bytes, proof_from_json, proof_to_bytes, proof_to_bytes_v2, proof_to_json, replay,
    validate_with_telemetry, CacheEntry, CacheKey, CheckerConfig, ValidationCache, Verdict,
};
use crellvm::fuzz::{run_campaign_with_progress, write_findings, CampaignConfig};
use crellvm::gen::{generate_module, GenConfig};
use crellvm::interp::{run_main, RunConfig, UndefPolicy};
use crellvm::ir::{parse_module, printer::print_module, verify_module, Module};
use crellvm::passes::{
    default_jobs, run_validated_pass_parallel, BugSet, ParallelOptions, PassConfig, PipelineReport,
    ProofFormat, StepOutcome,
};
use crellvm::telemetry::export::{chrome_trace, openmetrics};
use crellvm::telemetry::forensics::ForensicBundle;
use crellvm::telemetry::{
    Profile, ProfileWeight, Progress, ProgressMode, Registry, Snapshot, SpanTree, Telemetry, Trace,
};
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Heartbeat period for `--progress`.
const PROGRESS_PERIOD: Duration = Duration::from_millis(200);

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  crellvm opt <file.cll> [--pass mem2reg|gvn|licm|instcombine]... [--bugs 3.7.1|5.0.1-pre|none] [--emit] [--proof-dir DIR] [--binary] [--format json|binary-v1|binary-v2] [--jobs N] [--decode-ahead N] [--cache-dir DIR] [--mmap] [--metrics FILE] [--trace FILE] [--spans FILE] [--forensics-dir DIR] [--progress human|json]\n  crellvm run <file.cll> [--seed N]\n  crellvm diff <a.cll> <b.cll>\n  crellvm gen --seed N [--functions K]\n  crellvm check [--trace FILE] [--jobs N] [--cache-dir DIR] [--mmap] [--progress human|json] <proof-file>...\n  crellvm report [--format text|openmetrics|chrome-trace|profile|folded] [--top N] [--weight time|cost] <file>\n  crellvm forensics <bundle.forensic.json>\n  crellvm fuzz [--seeds A..B] [--jobs N] [--mutate-rate R] [--compiler 3.7.1|5.0.1-pre|none] [--tier tree|bytecode|differential] [--out DIR] [--metrics FILE] [--progress human|json]\n  crellvm bench compare [--history FILE] [--baseline last|FILE] [--window N] [--rel-tol F] [--mad-k F]\n  crellvm serve [--addr HOST:PORT] [--jobs N] [--executors N] [--queue N] [--cache-dir DIR] [--mmap] [--access-log FILE] [--span-log FILE] [--bench] [--qps F] [--requests N] [--seed N] [--scale F] [--modules N] [--tenants A,B] [--out FILE] [--history FILE]\n  crellvm top --addr HOST:PORT [--once] [--interval-ms N]"
    );
    ExitCode::from(2)
}

/// A live registry plus a [`Telemetry`] handle over it, optionally
/// streaming trace events to `trace_path` (created eagerly so flag typos
/// fail before any work happens).
fn make_telemetry(trace_path: Option<&str>) -> Result<(Arc<Registry>, Telemetry), String> {
    let registry = Arc::new(Registry::new());
    let mut tel = Telemetry::with_registry(registry.clone());
    if let Some(path) = trace_path {
        let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        tel = tel.with_trace(Arc::new(Trace::new(Box::new(file))));
    }
    Ok((registry, tel))
}

fn load(path: &str) -> Result<Module, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let m = parse_module(&text).map_err(|e| format!("{path}: {e}"))?;
    verify_module(&m).map_err(|e| format!("{path}: {e}"))?;
    Ok(m)
}

const PASS_NAMES: [&str; 4] = ["mem2reg", "gvn", "licm", "instcombine"];

fn parse_jobs(arg: Option<&String>) -> Result<usize, String> {
    let n: usize = arg
        .ok_or("--jobs needs a count")?
        .parse()
        .map_err(|e| format!("bad job count: {e}"))?;
    Ok(if n == 0 { default_jobs() } else { n })
}

fn parse_format(arg: Option<&String>) -> Result<ProofFormat, String> {
    match arg.ok_or("--format needs a name")?.as_str() {
        "json" => Ok(ProofFormat::Json),
        "binary-v1" => Ok(ProofFormat::BinaryV1),
        "binary-v2" | "binary" => Ok(ProofFormat::Binary),
        other => Err(format!(
            "unknown proof format {other} (json|binary-v1|binary-v2)"
        )),
    }
}

fn parse_progress(arg: Option<&String>) -> Result<ProgressMode, String> {
    let name = arg.ok_or("--progress needs a mode (human|json)")?;
    ProgressMode::parse(name).ok_or_else(|| format!("unknown progress mode {name} (human|json)"))
}

fn open_cache(arg: Option<&String>, mmap: bool) -> Result<Arc<ValidationCache>, String> {
    let dir = arg.ok_or("--cache-dir needs a path")?;
    Ok(Arc::new(
        ValidationCache::with_dir(dir)
            .map_err(|e| format!("{dir}: {e}"))?
            .with_mmap(mmap),
    ))
}

fn cmd_opt(args: &[String]) -> Result<ExitCode, String> {
    let file = args.first().ok_or("opt: missing input file")?;
    let mut passes: Vec<String> = Vec::new();
    let mut bugs = BugSet::none();
    let mut emit = false;
    let mut proof_dir: Option<String> = None;
    let mut binary = false;
    let mut format = ProofFormat::default();
    let mut jobs = default_jobs();
    let mut decode_ahead: Option<usize> = None;
    let mut cache_dir: Option<String> = None;
    let mut mmap = false;
    let mut metrics: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut spans: Option<String> = None;
    let mut forensics_dir: Option<String> = None;
    let mut progress_mode: Option<ProgressMode> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--pass" => passes.push(it.next().ok_or("--pass needs a name")?.clone()),
            "--bugs" => {
                bugs = match it.next().ok_or("--bugs needs a population")?.as_str() {
                    "3.7.1" => BugSet::llvm_3_7_1(),
                    "5.0.1-pre" => BugSet::llvm_5_0_1_prepatch(),
                    "none" => BugSet::none(),
                    other => return Err(format!("unknown bug population {other}")),
                }
            }
            "--emit" => emit = true,
            "--proof-dir" => proof_dir = Some(it.next().ok_or("--proof-dir needs a path")?.clone()),
            "--binary" => binary = true,
            "--format" => {
                format = parse_format(it.next())?;
                // An explicit binary format selects binary proof dumps
                // too; plain `--proof-dir` keeps the JSON default.
                binary = !matches!(format, ProofFormat::Json);
            }
            "--jobs" => jobs = parse_jobs(it.next())?,
            "--decode-ahead" => {
                decode_ahead = Some(
                    it.next()
                        .ok_or("--decode-ahead needs a window size")?
                        .parse()
                        .map_err(|e| format!("bad --decode-ahead: {e}"))?,
                )
            }
            "--cache-dir" => cache_dir = Some(it.next().ok_or("--cache-dir needs a path")?.clone()),
            "--mmap" => mmap = true,
            "--metrics" => metrics = Some(it.next().ok_or("--metrics needs a path")?.clone()),
            "--trace" => trace = Some(it.next().ok_or("--trace needs a path")?.clone()),
            "--spans" => spans = Some(it.next().ok_or("--spans needs a path")?.clone()),
            "--forensics-dir" => {
                forensics_dir = Some(it.next().ok_or("--forensics-dir needs a path")?.clone())
            }
            "--progress" => progress_mode = Some(parse_progress(it.next())?),
            other => return Err(format!("opt: unknown flag {other}")),
        }
    }
    for dir in [&proof_dir, &forensics_dir].into_iter().flatten() {
        std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
    }
    if passes.is_empty() {
        passes = ["mem2reg", "instcombine", "gvn", "licm"]
            .map(String::from)
            .to_vec();
    }
    if let Some(bad) = passes.iter().find(|p| !PASS_NAMES.contains(&p.as_str())) {
        return Err(format!("unknown pass {bad}"));
    }
    let cache = cache_dir
        .as_ref()
        .map(|d| open_cache(Some(d), mmap))
        .transpose()?;
    let config = PassConfig::with_bugs(bugs);
    let (registry, tel) = make_telemetry(trace.as_deref())?;
    let checker = CheckerConfig::sound();
    let mut cur = load(file)?;
    // One progress unit per (pass, function) validation step.
    let progress = progress_mode.map(|mode| {
        let total = (passes.len() * cur.functions.len()) as u64;
        let p = Progress::new(mode, "opt", total);
        p.start_ticker(PROGRESS_PERIOD);
        p
    });
    let mut opts = ParallelOptions {
        jobs,
        format,
        spans: spans.is_some(),
        forensics: forensics_dir.is_some(),
        cache,
        progress: progress.clone(),
        ..ParallelOptions::default()
    };
    if let Some(window) = decode_ahead {
        opts.decode_ahead = window;
    }
    tel.count("pipeline.jobs", jobs as u64);
    let mut report = PipelineReport::default();
    let mut failures = 0usize;
    for pass in &passes {
        let steps_before = report.steps.len();
        let out =
            run_validated_pass_parallel(pass, &cur, &config, &checker, &opts, &tel, &mut report);
        if let Some(dir) = &proof_dir {
            for unit in &out.proofs {
                // Binary dumps follow the selected wire format (v2 unless
                // --format binary-v1 asked for the legacy encoding);
                // `check` sniffs both.
                let (path, bytes) = if binary {
                    let bytes = match opts.format {
                        ProofFormat::BinaryV1 => proof_to_bytes(unit),
                        _ => proof_to_bytes_v2(unit),
                    };
                    (
                        format!("{dir}/{pass}.{}.cpb", unit.src.name),
                        bytes.map_err(|e| e.to_string())?,
                    )
                } else {
                    (
                        format!("{dir}/{pass}.{}.json", unit.src.name),
                        proof_to_json(unit).map_err(|e| e.to_string())?.into_bytes(),
                    )
                };
                std::fs::write(&path, bytes).map_err(|e| format!("{path}: {e}"))?;
            }
        }
        // Step records come back in function order regardless of which
        // worker validated what, so this output is thread-count stable.
        for step in &report.steps[steps_before..] {
            if matches!(step.outcome, StepOutcome::Failed(_)) {
                failures += 1;
            }
            println!(
                "{}",
                crellvm::passes::format_step_line(pass, &step.func, &step.outcome)
            );
        }
        cur = out.module;
    }
    if let Some(p) = &progress {
        p.finish();
    }
    if emit {
        print!("{}", print_module(&cur));
    }
    if let Some(path) = &metrics {
        std::fs::write(path, registry.snapshot().to_json()).map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(path) = &spans {
        let module_name = std::path::Path::new(file)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("module");
        let tree = report.span_tree(module_name);
        std::fs::write(path, tree.to_json()).map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(dir) = &forensics_dir {
        for bundle in &report.bundles {
            let path = format!("{dir}/{}.{}.forensic.json", bundle.pass, bundle.func);
            std::fs::write(&path, bundle.to_json()).map_err(|e| format!("{path}: {e}"))?;
            eprintln!(
                "forensics: wrote {path} ({}, {} -> {} commands)",
                bundle.class,
                bundle.commands.len(),
                bundle.minimized.len()
            );
        }
    }
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let file = args.first().ok_or("run: missing input file")?;
    let mut cfg = RunConfig::default();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                let s: u64 = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
                cfg.env_seed = s;
                cfg.undef = UndefPolicy::Seeded(s);
            }
            other => return Err(format!("run: unknown flag {other}")),
        }
    }
    let m = load(file)?;
    let r = run_main(&m, &cfg);
    for e in &r.events {
        println!("{e}");
    }
    println!("-- end: {:?} ({} steps)", r.end, r.steps);
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let (a, b) = match args {
        [a, b] => (load(a)?, load(b)?),
        _ => return Err("diff: need exactly two files".into()),
    };
    match diff_modules(&a, &b) {
        Ok(()) => {
            println!("modules are alpha-equivalent");
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            println!("{e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn cmd_gen(args: &[String]) -> Result<ExitCode, String> {
    let mut cfg = GenConfig::default();
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                cfg.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?
            }
            "--functions" => {
                cfg.functions = it
                    .next()
                    .ok_or("--functions needs a value")?
                    .parse()
                    .map_err(|e| format!("bad count: {e}"))?
            }
            "--out" => out = Some(it.next().ok_or("--out needs a path")?.clone()),
            other => return Err(format!("gen: unknown flag {other}")),
        }
    }
    let m = generate_module(&cfg);
    let text = print_module(&m);
    match out {
        Some(path) => std::fs::write(&path, text).map_err(|e| format!("{path}: {e}"))?,
        None => print!("{text}"),
    }
    Ok(ExitCode::SUCCESS)
}

/// Reconstruct `check`'s output line from a cached verdict; `None` for a
/// verdict tag from a future version (treated as a miss).
fn check_line_from_entry(
    path: &str,
    unit: &crellvm::erhl::ProofUnit,
    entry: &CacheEntry,
) -> Option<(String, bool)> {
    use crellvm::erhl::cache::{OUTCOME_FAILED, OUTCOME_NOT_SUPPORTED, OUTCOME_VALID};
    match entry.outcome {
        OUTCOME_VALID => Some((
            format!("{path}: valid ({} @{})", unit.pass, unit.src.name),
            false,
        )),
        OUTCOME_NOT_SUPPORTED => Some((format!("{path}: not-supported ({})", entry.reason), false)),
        OUTCOME_FAILED => {
            let (at, reason) = entry.reason.split_once('\n')?;
            Some((
                format!("{path}: FAILED at {at}\n    reason: {reason}"),
                true,
            ))
        }
        _ => None,
    }
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let mut trace: Option<String> = None;
    let mut jobs = default_jobs();
    let mut cache_dir: Option<String> = None;
    let mut mmap = false;
    let mut progress_mode: Option<ProgressMode> = None;
    let mut files: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => trace = Some(it.next().ok_or("--trace needs a path")?.clone()),
            "--jobs" => jobs = parse_jobs(it.next())?,
            "--cache-dir" => cache_dir = Some(it.next().ok_or("--cache-dir needs a path")?.clone()),
            "--mmap" => mmap = true,
            "--progress" => progress_mode = Some(parse_progress(it.next())?),
            _ => files.push(a),
        }
    }
    if files.is_empty() {
        return Err("check: need at least one proof file".into());
    }
    let cache = cache_dir
        .as_ref()
        .map(|d| open_cache(Some(d), mmap))
        .transpose()?;
    let progress = progress_mode.map(|mode| {
        let p = Progress::new(mode, "check", files.len() as u64);
        p.start_ticker(PROGRESS_PERIOD);
        p
    });
    let (registry, tel) = make_telemetry(trace.as_deref())?;
    tel.count("pipeline.jobs", jobs as u64);
    let checker = CheckerConfig::sound();
    let mut units = Vec::with_capacity(files.len());
    for path in files {
        // With --mmap the proof file is mapped, not copied: the binary
        // decoder borrows its string table straight out of the mapping.
        let bytes = crellvm::erhl::read_bytes(std::path::Path::new(path), mmap)
            .map_err(|e| format!("{path}: {e}"))?;
        // The cache key is the proof's exact bytes plus the checker
        // token: re-checking an unchanged proof file with an unchanged
        // checker replays the stored verdict.
        let key = CacheKey::for_proof(&bytes, checker.cache_token());
        let unit = if path.ends_with(".cpb") {
            proof_from_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?
        } else {
            let text = std::str::from_utf8(&bytes).map_err(|e| format!("{path}: {e}"))?;
            proof_from_json(text).map_err(|e| format!("{path}: {e}"))?
        };
        units.push((path, key, unit));
    }
    // Fan validation across workers; results are scattered back by file
    // index so the output order matches the command line at any -j.
    let workers = jobs.max(1).min(units.len());
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<(String, bool)>> = units.iter().map(|_| None).collect();
    let cache = cache.as_deref();
    let worker_outputs = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let wreg = Arc::new(Registry::new());
                    let mut wtel = Telemetry::with_registry(Arc::clone(&wreg));
                    if let Some(t) = tel.trace_handle() {
                        wtel = wtel.with_trace(t);
                    }
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some((path, key, unit)) = units.get(i) else {
                            break;
                        };
                        let cached = cache.and_then(|c| c.get(*key)).and_then(|e| {
                            let item = check_line_from_entry(path.as_str(), unit, &e)?;
                            wtel.count("cache.hits", 1);
                            if let Some(p) = &progress {
                                p.add_cache_hit();
                            }
                            Some(item)
                        });
                        let item = match cached {
                            Some(item) => item,
                            None => {
                                if cache.is_some() {
                                    wtel.count("cache.misses", 1);
                                    if let Some(p) = &progress {
                                        p.add_cache_miss();
                                    }
                                }
                                let (item, entry) =
                                    match validate_with_telemetry(unit, &checker, &wtel) {
                                        Ok(Verdict::Valid) => (
                                            (
                                                format!(
                                                    "{path}: valid ({} @{})",
                                                    unit.pass, unit.src.name
                                                ),
                                                false,
                                            ),
                                            CacheEntry::new(
                                                crellvm::erhl::cache::OUTCOME_VALID,
                                                String::new(),
                                            ),
                                        ),
                                        Ok(Verdict::NotSupported(r)) => (
                                            (format!("{path}: not-supported ({r})"), false),
                                            CacheEntry::new(
                                                crellvm::erhl::cache::OUTCOME_NOT_SUPPORTED,
                                                r,
                                            ),
                                        ),
                                        Err(e) => (
                                            (
                                                format!(
                                                    "{path}: FAILED at {}\n    reason: {}",
                                                    e.at, e.reason
                                                ),
                                                true,
                                            ),
                                            CacheEntry::new(
                                                crellvm::erhl::cache::OUTCOME_FAILED,
                                                format!("{}\n{}", e.at, e.reason),
                                            ),
                                        ),
                                    };
                                if let Some(c) = cache {
                                    if c.insert(*key, entry) {
                                        wtel.count("cache.evictions", 1);
                                    }
                                }
                                item
                            }
                        };
                        produced.push((i, item));
                        if let Some(p) = &progress {
                            p.add_done(1);
                        }
                    }
                    (produced, wreg.snapshot())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("check worker panicked"))
            .collect::<Vec<_>>()
    });
    if let Some(p) = &progress {
        p.finish();
    }
    for (produced, snapshot) in worker_outputs {
        registry.merge_snapshot(&snapshot);
        for (i, item) in produced {
            slots[i] = Some(item);
        }
    }
    let mut failures = 0usize;
    for slot in slots {
        let (line, failed) = slot.expect("every proof file validated");
        println!("{line}");
        failures += usize::from(failed);
    }
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Render a metrics snapshot as the paper's Fig 6/8-style tables. The
/// inference-rule table shows the `top` most-applied rules.
fn render_report(snap: &Snapshot, top: usize) -> String {
    use std::fmt::Write;
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let ms = |name: &str| {
        snap.timers
            .get(name)
            .map_or(0.0, |t| t.total_nanos as f64 / 1_000_000.0)
    };
    let mut out = String::new();

    // Fig 6/8: validation outcomes and the four time columns.
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>8} {:>8}",
        "validation", "#V", "#F", "#NS"
    );
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>8} {:>8}",
        "",
        counter("pipeline.steps"),
        counter("pipeline.failed"),
        counter("pipeline.not_supported"),
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>8} {:>8} {:>8}",
        "time (ms)", "Orig", "PCal", "I-O", "PCheck"
    );
    let _ = writeln!(
        out,
        "{:<14} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
        "",
        ms("time.orig"),
        ms("time.pcal"),
        ms("time.io"),
        ms("time.pcheck"),
    );

    // Validation-engine health: worker count, expression-interner
    // effectiveness (hit rate ~ allocations avoided), steal balance.
    let hits = counter("expr.intern.hits");
    let misses = counter("expr.intern.misses");
    let mut steals: Vec<(&String, u64)> = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("validate.steal."))
        .map(|(k, v)| (k, *v))
        .collect();
    steals.sort_by_key(|(k, _)| {
        k.strip_prefix("validate.steal.w")
            .and_then(|n| n.parse::<u64>().ok())
            .unwrap_or(u64::MAX)
    });
    let cache_hits = counter("cache.hits");
    let cache_misses = counter("cache.misses");
    let io_rows = ["io.bytes.json", "io.bytes.v1", "io.bytes.v2"];
    let io_total: u64 = io_rows.iter().map(|r| counter(r)).sum();
    if counter("pipeline.jobs") > 0
        || hits + misses > 0
        || !steals.is_empty()
        || cache_hits + cache_misses > 0
        || io_total > 0
    {
        let _ = writeln!(out);
        let _ = writeln!(out, "{:<34} {:>12}", "engine", "value");
        if counter("pipeline.jobs") > 0 {
            let _ = writeln!(out, "  {:<32} {:>12}", "jobs", counter("pipeline.jobs"));
        }
        if hits + misses > 0 {
            let _ = writeln!(out, "  {:<32} {hits:>12}", "expr.intern.hits");
            let _ = writeln!(out, "  {:<32} {misses:>12}", "expr.intern.misses");
            let rate = 100.0 * hits as f64 / (hits + misses) as f64;
            let _ = writeln!(out, "  {:<32} {:>11.1}%", "expr.intern.hit_rate", rate);
        }
        if cache_hits + cache_misses > 0 {
            let _ = writeln!(out, "  {:<32} {cache_hits:>12}", "cache.hits");
            let _ = writeln!(out, "  {:<32} {cache_misses:>12}", "cache.misses");
            let rate = 100.0 * cache_hits as f64 / (cache_hits + cache_misses) as f64;
            let _ = writeln!(out, "  {:<32} {:>11.1}%", "cache.hit_rate", rate);
            if counter("cache.evictions") > 0 {
                let _ = writeln!(
                    out,
                    "  {:<32} {:>12}",
                    "cache.evictions",
                    counter("cache.evictions")
                );
            }
        }
        for row in io_rows {
            if counter(row) > 0 {
                let _ = writeln!(out, "  {:<32} {:>12}", row, counter(row));
            }
        }
        for (name, n) in steals {
            let _ = writeln!(out, "  {:<32} {n:>12}", &name["validate.".len()..]);
        }
    }

    // Fig 7 axis: inference-rule applications, most-used first.
    let mut rules: Vec<(&str, u64)> = snap
        .counters
        .iter()
        .filter_map(|(k, v)| k.strip_prefix("checker.rule.").map(|r| (r, *v)))
        .collect();
    rules.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    if !rules.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "{:<34} {:>12}", "inference rule", "applications");
        let shown = rules.len().min(top.max(1));
        for (rule, n) in &rules[..shown] {
            let _ = writeln!(out, "  {rule:<32} {n:>12}");
        }
        if rules.len() > shown {
            let _ = writeln!(
                out,
                "  ... ({} more rules; raise --top)",
                rules.len() - shown
            );
        }
    }

    // Histogram distributions with the log₂-bucket quantile estimates.
    if !snap.histograms.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>10} {:>8} {:>8} {:>8}",
            "histogram", "count", "mean", "p50", "p95", "p99"
        );
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "  {:<22} {:>8} {:>10.1} {:>8.0} {:>8.0} {:>8.0}",
                name,
                h.count,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99()
            );
        }
    }

    // Per-pass domain counters (allocas promoted, GVN replacements, ...).
    let pass_counters: Vec<(&String, u64)> = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("pass."))
        .map(|(k, v)| (k, *v))
        .collect();
    if !pass_counters.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "{:<34} {:>12}", "pass counter", "value");
        for (name, n) in pass_counters {
            let _ = writeln!(out, "  {:<32} {n:>12}", &name["pass.".len()..]);
        }
    }
    out
}

fn cmd_report(args: &[String]) -> Result<ExitCode, String> {
    let mut format = "text".to_string();
    let mut top = 20usize;
    let mut weight = ProfileWeight::Time;
    let mut file: Option<&String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => format = it.next().ok_or("--format needs a name")?.clone(),
            "--top" => {
                top = it
                    .next()
                    .ok_or("--top needs a count")?
                    .parse()
                    .map_err(|e| format!("bad --top count: {e}"))?;
                if top == 0 {
                    return Err("--top must be at least 1".into());
                }
            }
            "--weight" => {
                weight = match it.next().ok_or("--weight needs a name")?.as_str() {
                    "time" => ProfileWeight::Time,
                    "cost" => ProfileWeight::Cost,
                    other => return Err(format!("unknown weight {other} (time|cost)")),
                }
            }
            other if other.starts_with("--") => {
                return Err(format!("report: unknown flag {other}"))
            }
            _ => {
                if file.replace(a).is_some() {
                    return Err("report: need exactly one input file".into());
                }
            }
        }
    }
    let path = file.ok_or("report: need an input file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    match format.as_str() {
        "text" => {
            let snap = Snapshot::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
            print!("{}", render_report(&snap, top));
        }
        "openmetrics" => {
            let snap = Snapshot::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
            print!("{}", openmetrics(&snap));
        }
        "chrome-trace" => {
            let tree = SpanTree::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
            print!("{}", chrome_trace(&tree));
        }
        "profile" => {
            let tree = SpanTree::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
            print!("{}", Profile::from_tree(&tree).top_table(weight, top));
        }
        "folded" => {
            let tree = SpanTree::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
            print!("{}", Profile::from_tree(&tree).folded(weight));
        }
        other => {
            return Err(format!(
                "report: unknown format {other} (text|openmetrics|chrome-trace|profile|folded)"
            ))
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Inspect a forensic bundle and replay its proof — full and minimized —
/// against the current checker, confirming the recorded failure class.
fn cmd_forensics(args: &[String]) -> Result<ExitCode, String> {
    let [path] = args else {
        return Err("forensics: need exactly one bundle file".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let bundle = ForensicBundle::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    println!("bundle:    {path} (v{})", bundle.version);
    println!("pass:      {}", bundle.pass);
    println!("function:  @{}", bundle.func);
    println!("class:     {}", bundle.class);
    println!("at:        {}", bundle.at);
    println!("reason:    {}", bundle.reason);
    if let Some(assertion) = &bundle.failing_assertion {
        println!("assertion:");
        for line in assertion.lines() {
            println!("    {line}");
        }
    }
    if !bundle.rule_history.is_empty() {
        println!("rule history (last {} applied):", bundle.rule_history.len());
        for rule in &bundle.rule_history {
            println!("    {rule}");
        }
    }
    println!(
        "commands:  {} total, {} in minimized core",
        bundle.commands.len(),
        bundle.minimized.len()
    );
    for (i, cmd) in bundle.commands.iter().enumerate() {
        let mark = if bundle.minimized.contains(&i) {
            "*"
        } else {
            " "
        };
        println!("  {mark} [{i}] {cmd}");
    }

    let report = replay(&bundle, &CheckerConfig::sound())?;
    let show = |class: Option<crellvm::telemetry::forensics::FailureClass>| match class {
        Some(c) => format!("fails ({c})"),
        None => "validates".to_string(),
    };
    println!();
    println!("replay (full proof):      {}", show(report.full_class));
    if let Some((at, reason)) = &report.full_failure {
        println!("    at {at}: {reason}");
    }
    println!("replay (minimized core):  {}", show(report.minimized_class));
    if report.confirms() {
        println!(
            "verdict: CONFIRMED — both replays fail in class {}",
            bundle.class
        );
        Ok(ExitCode::SUCCESS)
    } else {
        println!(
            "verdict: DIVERGED — recorded class {} not reproduced",
            bundle.class
        );
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_fuzz(args: &[String]) -> Result<ExitCode, String> {
    let mut cfg = CampaignConfig {
        seed_start: 0,
        seed_end: 100,
        jobs: default_jobs(),
        mutate_rate: 0.25,
        ..CampaignConfig::default()
    };
    let mut out: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut progress_mode: Option<ProgressMode> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => {
                let spec = it.next().ok_or("--seeds needs a range A..B")?;
                let (a, b) = spec
                    .split_once("..")
                    .ok_or_else(|| format!("bad seed range {spec} (want A..B)"))?;
                cfg.seed_start = a.parse().map_err(|e| format!("bad seed start: {e}"))?;
                cfg.seed_end = b.parse().map_err(|e| format!("bad seed end: {e}"))?;
                if cfg.seed_end <= cfg.seed_start {
                    return Err(format!("empty seed range {spec}"));
                }
            }
            "--jobs" => cfg.jobs = parse_jobs(it.next())?,
            "--mutate-rate" => {
                let r: f64 = it
                    .next()
                    .ok_or("--mutate-rate needs a probability")?
                    .parse()
                    .map_err(|e| format!("bad mutate rate: {e}"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("mutate rate {r} outside [0, 1]"));
                }
                cfg.mutate_rate = r;
            }
            "--compiler" => {
                let name = it.next().ok_or("--compiler needs a population")?;
                cfg.bugs = CampaignConfig::bugs_for_compiler(name).ok_or_else(|| {
                    format!("unknown compiler {name} (3.7.1|5.0.1-pre|none, or a single bug id like pr24179)")
                })?;
                cfg.compiler = name.clone();
            }
            "--tier" => {
                let name = it.next().ok_or("--tier needs tree|bytecode|differential")?;
                cfg.oracle.tier = crellvm::interp::Tier::parse(name)
                    .ok_or_else(|| format!("unknown tier {name} (tree|bytecode|differential)"))?;
            }
            "--out" => out = Some(it.next().ok_or("--out needs a directory")?.clone()),
            "--metrics" => metrics = Some(it.next().ok_or("--metrics needs a path")?.clone()),
            "--progress" => progress_mode = Some(parse_progress(it.next())?),
            other => return Err(format!("fuzz: unknown flag {other}")),
        }
    }

    let (registry, tel) = make_telemetry(None)?;
    // One progress unit per oracle step: seeds × passes, so the rate
    // column is the fuzzer's exec/s.
    let progress = progress_mode.map(|mode| {
        let steps =
            (cfg.seed_end - cfg.seed_start) * crellvm::passes::pipeline::PASS_ORDER.len() as u64;
        let p = Progress::new_with_alarms(mode, "fuzz", steps);
        p.start_ticker(PROGRESS_PERIOD);
        p
    });
    let report = run_campaign_with_progress(&cfg, &tel, progress.clone());
    if let Some(p) = &progress {
        p.finish();
    }

    println!(
        "campaign: seeds {}..{} compiler {} mutate-rate {} ({} steps)",
        report.seed_start, report.seed_end, report.compiler, report.mutate_rate, report.steps
    );
    for (verdict, n) in &report.verdicts {
        println!("  {verdict:<17} {n}");
    }
    if !report.attributed.is_empty() {
        println!("historical bugs caught:");
        for (bug, n) in &report.attributed {
            println!("  {bug:<17} {n}");
        }
    }
    let fired = report.rule_coverage.len();
    println!(
        "rule coverage: {fired}/{} rules fired",
        crellvm::erhl::all_rule_names().len()
    );
    for finding in &report.findings {
        println!();
        println!(
            "[{:?}] seed {} pass {} @{}",
            finding.kind, finding.seed, finding.pass, finding.func
        );
        println!("  reason: {}", finding.reason);
        for m in &finding.mutations {
            println!("  mutation: {} ({})", m.describe(), m.bug_class().name());
        }
        for bug in &finding.attributed_bugs {
            println!("  attributed: {bug}");
        }
        println!("  repro: {}", finding.repro);
    }

    if let Some(dir) = &out {
        let written = write_findings(&report, std::path::Path::new(dir))
            .map_err(|e| format!("{dir}: {e}"))?;
        println!();
        println!("wrote {} files to {dir}/", written.len());
    }
    if let Some(path) = &metrics {
        let json = registry.snapshot().to_json();
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
    }

    let divergences = report
        .findings_of(crellvm::fuzz::FindingKind::TierDivergence)
        .count();
    if divergences > 0 {
        eprintln!(
            "TIER DIVERGENCE: the interpreter tiers disagreed on an observable ({divergences} finding(s))"
        );
    }
    if report.has_soundness_alarm() {
        eprintln!(
            "SOUNDNESS ALARM: checker accepted a refinement-violating translation ({} finding(s))",
            report
                .findings_of(crellvm::fuzz::FindingKind::SoundnessAlarm)
                .count()
        );
        Ok(ExitCode::FAILURE)
    } else if divergences > 0 {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// The regression sentinel: judge the newest history record against the
/// preceding window.
fn cmd_bench(args: &[String]) -> Result<ExitCode, String> {
    let Some((sub, rest)) = args.split_first() else {
        return Err("bench: need a subcommand (compare)".into());
    };
    if sub != "compare" {
        return Err(format!("bench: unknown subcommand {sub} (compare)"));
    }
    let mut history_path = "BENCH_history.jsonl".to_string();
    let mut baseline = "last".to_string();
    let mut cfg = CompareConfig::default();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--history" => history_path = it.next().ok_or("--history needs a path")?.clone(),
            "--baseline" => baseline = it.next().ok_or("--baseline needs last|FILE")?.clone(),
            "--window" => {
                cfg.window = it
                    .next()
                    .ok_or("--window needs a count")?
                    .parse()
                    .map_err(|e| format!("bad --window count: {e}"))?;
                if cfg.window == 0 {
                    return Err("--window must be at least 1".into());
                }
            }
            "--rel-tol" => {
                cfg.rel_tol = it
                    .next()
                    .ok_or("--rel-tol needs a fraction")?
                    .parse()
                    .map_err(|e| format!("bad --rel-tol: {e}"))?
            }
            "--mad-k" => {
                cfg.mad_k = it
                    .next()
                    .ok_or("--mad-k needs a multiplier")?
                    .parse()
                    .map_err(|e| format!("bad --mad-k: {e}"))?
            }
            other => return Err(format!("bench compare: unknown flag {other}")),
        }
    }
    let records = history::load(std::path::Path::new(&history_path))
        .map_err(|e| format!("{history_path}: {e}"))?;
    // `--baseline last` judges the newest record against everything before
    // it; `--baseline FILE` judges it against a separate history file
    // (e.g. one downloaded from the main branch's CI artifact).
    let (current, baseline_records) = if baseline == "last" {
        match records.split_last() {
            Some((current, before)) => (current.clone(), before.to_vec()),
            None => {
                println!("bench compare: {history_path} is empty — no baseline yet, passing");
                return Ok(ExitCode::SUCCESS);
            }
        }
    } else {
        let Some(current) = records.last() else {
            println!("bench compare: {history_path} is empty — no baseline yet, passing");
            return Ok(ExitCode::SUCCESS);
        };
        let base = history::load(std::path::Path::new(&baseline))
            .map_err(|e| format!("{baseline}: {e}"))?;
        (current.clone(), base)
    };
    if baseline_records.is_empty() {
        println!(
            "bench compare: no prior runs to compare against (first record in {history_path}), passing"
        );
        return Ok(ExitCode::SUCCESS);
    }
    let report = history::compare(&current, &baseline_records, &cfg);
    print!("{}", report.render());
    println!(
        "current: {} @ {} ({} cores, {})",
        current.git_sha, current.timestamp, current.cores, current.wire_format
    );
    if report.has_regression() {
        eprintln!("bench compare: REGRESSION detected (see table above)");
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    use crellvm::serve::{loadgen, LoadConfig, ServeConfig};
    let mut cfg = ServeConfig::default();
    let mut addr_explicit = false;
    let mut bench = false;
    let mut load = LoadConfig::default();
    let mut out = "BENCH_serve.json".to_string();
    let mut history_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                cfg.addr = it.next().ok_or("--addr needs host:port")?.clone();
                addr_explicit = true;
            }
            "--jobs" => cfg.jobs = parse_jobs(it.next())?,
            "--executors" => {
                cfg.executors = it
                    .next()
                    .ok_or("--executors needs a count")?
                    .parse()
                    .map_err(|e| format!("bad --executors: {e}"))?
            }
            "--queue" => {
                cfg.queue_capacity = it
                    .next()
                    .ok_or("--queue needs a capacity")?
                    .parse()
                    .map_err(|e| format!("bad --queue: {e}"))?
            }
            "--cache-dir" => {
                let dir = it.next().ok_or("--cache-dir needs a path")?;
                std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
                cfg.cache_dir = Some(dir.clone());
            }
            "--mmap" => cfg.mmap = true,
            "--access-log" => {
                cfg.access_log = Some(it.next().ok_or("--access-log needs a path")?.clone())
            }
            "--span-log" => {
                cfg.span_log = Some(it.next().ok_or("--span-log needs a path")?.clone())
            }
            "--bench" => bench = true,
            "--qps" => {
                load.qps = it
                    .next()
                    .ok_or("--qps needs a rate")?
                    .parse()
                    .map_err(|e| format!("bad --qps: {e}"))?
            }
            "--requests" => {
                load.requests = it
                    .next()
                    .ok_or("--requests needs a count")?
                    .parse()
                    .map_err(|e| format!("bad --requests: {e}"))?
            }
            "--seed" => {
                load.seed = it
                    .next()
                    .ok_or("--seed needs a number")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--scale" => {
                load.scale = it
                    .next()
                    .ok_or("--scale needs functions-per-kloc")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?
            }
            "--modules" => {
                load.modules = it
                    .next()
                    .ok_or("--modules needs a count")?
                    .parse()
                    .map_err(|e| format!("bad --modules: {e}"))?
            }
            "--tenants" => {
                load.tenants = it
                    .next()
                    .ok_or("--tenants needs a comma-separated list")?
                    .split(',')
                    .map(str::to_string)
                    .filter(|t| !t.is_empty())
                    .collect()
            }
            "--out" => out = it.next().ok_or("--out needs a path")?.clone(),
            "--history" => history_path = Some(it.next().ok_or("--history needs a path")?.clone()),
            other => return Err(format!("serve: unknown flag {other}")),
        }
    }

    if bench && addr_explicit {
        // Benchmark an already-running daemon.
        let report = loadgen::run(&cfg.addr, &load)?;
        return finish_serve_bench(&report, &out, history_path.as_deref());
    }
    let handle = crellvm::serve::start(cfg)?;
    println!("listening on http://{}", handle.addr());
    // Tests and scripts scrape the line above to find the port.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if bench {
        let report = loadgen::run(&handle.addr().to_string(), &load)?;
        let code = finish_serve_bench(&report, &out, history_path.as_deref());
        handle.shutdown();
        return code;
    }
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Write the load report, append bench history, print the operator
/// summary.
fn finish_serve_bench(
    report: &crellvm::serve::LoadReport,
    out: &str,
    history_path: Option<&str>,
) -> Result<ExitCode, String> {
    use crellvm::serve::loadgen;
    loadgen::write_report(std::path::Path::new(out), report)?;
    println!(
        "serve bench: {}/{} ok ({} rejected, {} errors) in {:.1} ms -> {:.1} rps",
        report.ok, report.requests, report.rejected, report.errors, report.wall_ms, report.rps
    );
    println!(
        "latency: p50 {:.2} ms  p95 {:.2} ms  p99 {:.2} ms  max {:.2} ms",
        report.latency_ms.p50, report.latency_ms.p95, report.latency_ms.p99, report.latency_ms.max
    );
    println!(
        "cache: {} hits / {} misses ({:.1}% hit rate)",
        report.cache_hits,
        report.cache_misses,
        100.0 * report.cache_hit_rate
    );
    println!("wrote {out}");
    let history = history_path.unwrap_or("BENCH_history.jsonl");
    let rec = loadgen::append_history(std::path::Path::new(history), report)?;
    println!("appended {history} ({} metrics)", rec.metrics.len());
    Ok(if report.errors == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_top(args: &[String]) -> Result<ExitCode, String> {
    use crellvm::serve::top;
    let mut addr: Option<String> = None;
    let mut once = false;
    let mut interval = Duration::from_millis(1000);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = Some(it.next().ok_or("--addr needs host:port")?.clone()),
            "--once" => once = true,
            "--interval-ms" => {
                interval = Duration::from_millis(
                    it.next()
                        .ok_or("--interval-ms needs a count")?
                        .parse()
                        .map_err(|e| format!("bad --interval-ms: {e}"))?,
                )
            }
            other => return Err(format!("top: unknown flag {other}")),
        }
    }
    let addr = addr.ok_or("top: --addr host:port is required")?;
    if once {
        print!("{}", top::frame(&addr)?);
        return Ok(ExitCode::SUCCESS);
    }
    loop {
        let frame = top::frame(&addr)?;
        // Clear screen + home, then one coherent frame.
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(interval);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let result = match cmd.as_str() {
        "opt" => cmd_opt(rest),
        "run" => cmd_run(rest),
        "diff" => cmd_diff(rest),
        "gen" => cmd_gen(rest),
        "check" => cmd_check(rest),
        "report" => cmd_report(rest),
        "forensics" => cmd_forensics(rest),
        "fuzz" => cmd_fuzz(rest),
        "bench" => cmd_bench(rest),
        "serve" => cmd_serve(rest),
        "top" => cmd_top(rest),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
