//! The `crellvm` command-line tool: the framework's workflows from the
//! shell.
//!
//! ```text
//! crellvm opt <file.cll> [--pass NAME]... [--bugs 3.7.1|5.0.1-pre|none]
//!     Optimize with proof generation and validate every translation.
//! crellvm run <file.cll> [--seed N]
//!     Interpret @main and print the observable trace.
//! crellvm diff <a.cll> <b.cll>
//!     Alpha-equivalence check (the llvm-diff analogue).
//! crellvm gen --seed N [--functions K] [--out FILE]
//!     Generate a random program.
//! crellvm check <proof-file>...
//!     Validate saved proofs (the separate checker process of Fig 1).
//! ```
//!
//! `opt --proof-dir DIR [--binary]` writes each translation's proof to
//! `DIR/<pass>.<function>.{json,cpb}`; `check` validates such files
//! independently of the compiler — the trust story of the paper, where
//! the checker never has to share a process with the optimizer.

use crellvm::diff::diff_modules;
use crellvm::erhl::{proof_from_bytes, proof_from_json, proof_to_bytes, proof_to_json, validate, Verdict};
use crellvm::gen::{generate_module, GenConfig};
use crellvm::interp::{run_main, RunConfig, UndefPolicy};
use crellvm::ir::{parse_module, printer::print_module, verify_module, Module};
use crellvm::passes::{gvn, instcombine, licm, mem2reg, BugSet, PassConfig, PassOutcome};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  crellvm opt <file.cll> [--pass mem2reg|gvn|licm|instcombine]... [--bugs 3.7.1|5.0.1-pre|none] [--emit] [--proof-dir DIR] [--binary]\n  crellvm run <file.cll> [--seed N]\n  crellvm diff <a.cll> <b.cll>\n  crellvm gen --seed N [--functions K]\n  crellvm check <proof-file>..."
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Module, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let m = parse_module(&text).map_err(|e| format!("{path}: {e}"))?;
    verify_module(&m).map_err(|e| format!("{path}: {e}"))?;
    Ok(m)
}

fn run_pass(name: &str, m: &Module, config: &PassConfig) -> Option<PassOutcome> {
    Some(match name {
        "mem2reg" => mem2reg(m, config),
        "gvn" => gvn(m, config),
        "licm" => licm(m, config),
        "instcombine" => instcombine(m, config),
        _ => return None,
    })
}

fn cmd_opt(args: &[String]) -> Result<ExitCode, String> {
    let file = args.first().ok_or("opt: missing input file")?;
    let mut passes: Vec<String> = Vec::new();
    let mut bugs = BugSet::none();
    let mut emit = false;
    let mut proof_dir: Option<String> = None;
    let mut binary = false;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--pass" => passes.push(it.next().ok_or("--pass needs a name")?.clone()),
            "--bugs" => {
                bugs = match it.next().ok_or("--bugs needs a population")?.as_str() {
                    "3.7.1" => BugSet::llvm_3_7_1(),
                    "5.0.1-pre" => BugSet::llvm_5_0_1_prepatch(),
                    "none" => BugSet::none(),
                    other => return Err(format!("unknown bug population {other}")),
                }
            }
            "--emit" => emit = true,
            "--proof-dir" => proof_dir = Some(it.next().ok_or("--proof-dir needs a path")?.clone()),
            "--binary" => binary = true,
            other => return Err(format!("opt: unknown flag {other}")),
        }
    }
    if let Some(dir) = &proof_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
    }
    if passes.is_empty() {
        passes = ["mem2reg", "instcombine", "gvn", "licm"].map(String::from).to_vec();
    }
    let config = PassConfig::with_bugs(bugs);
    let mut cur = load(file)?;
    let mut failures = 0usize;
    for pass in &passes {
        let out = run_pass(pass, &cur, &config).ok_or_else(|| format!("unknown pass {pass}"))?;
        for unit in &out.proofs {
            if let Some(dir) = &proof_dir {
                let (path, bytes) = if binary {
                    (
                        format!("{dir}/{pass}.{}.cpb", unit.src.name),
                        proof_to_bytes(unit).map_err(|e| e.to_string())?,
                    )
                } else {
                    (
                        format!("{dir}/{pass}.{}.json", unit.src.name),
                        proof_to_json(unit).map_err(|e| e.to_string())?.into_bytes(),
                    )
                };
                std::fs::write(&path, bytes).map_err(|e| format!("{path}: {e}"))?;
            }
            match validate(unit) {
                Ok(Verdict::Valid) => println!("{pass:<12} @{:<20} valid", unit.src.name),
                Ok(Verdict::NotSupported(r)) => {
                    println!("{pass:<12} @{:<20} not-supported ({r})", unit.src.name)
                }
                Err(e) => {
                    failures += 1;
                    println!("{pass:<12} @{:<20} FAILED at {}", unit.src.name, e.at);
                    println!("{:>34}reason: {}", "", e.reason);
                }
            }
        }
        cur = out.module;
    }
    if emit {
        print!("{}", print_module(&cur));
    }
    Ok(if failures == 0 { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let file = args.first().ok_or("run: missing input file")?;
    let mut cfg = RunConfig::default();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                let s: u64 = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
                cfg.env_seed = s;
                cfg.undef = UndefPolicy::Seeded(s);
            }
            other => return Err(format!("run: unknown flag {other}")),
        }
    }
    let m = load(file)?;
    let r = run_main(&m, &cfg);
    for e in &r.events {
        println!("{e}");
    }
    println!("-- end: {:?} ({} steps)", r.end, r.steps);
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let (a, b) = match args {
        [a, b] => (load(a)?, load(b)?),
        _ => return Err("diff: need exactly two files".into()),
    };
    match diff_modules(&a, &b) {
        Ok(()) => {
            println!("modules are alpha-equivalent");
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            println!("{e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn cmd_gen(args: &[String]) -> Result<ExitCode, String> {
    let mut cfg = GenConfig::default();
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => cfg.seed = it.next().ok_or("--seed needs a value")?.parse().map_err(|e| format!("bad seed: {e}"))?,
            "--functions" => {
                cfg.functions =
                    it.next().ok_or("--functions needs a value")?.parse().map_err(|e| format!("bad count: {e}"))?
            }
            "--out" => out = Some(it.next().ok_or("--out needs a path")?.clone()),
            other => return Err(format!("gen: unknown flag {other}")),
        }
    }
    let m = generate_module(&cfg);
    let text = print_module(&m);
    match out {
        Some(path) => std::fs::write(&path, text).map_err(|e| format!("{path}: {e}"))?,
        None => print!("{text}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    if args.is_empty() {
        return Err("check: need at least one proof file".into());
    }
    let mut failures = 0usize;
    for path in args {
        let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
        let unit = if path.ends_with(".cpb") {
            proof_from_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?
        } else {
            let text = String::from_utf8(bytes).map_err(|e| format!("{path}: {e}"))?;
            proof_from_json(&text).map_err(|e| format!("{path}: {e}"))?
        };
        match validate(&unit) {
            Ok(Verdict::Valid) => println!("{path}: valid ({} @{})", unit.pass, unit.src.name),
            Ok(Verdict::NotSupported(r)) => println!("{path}: not-supported ({r})"),
            Err(e) => {
                failures += 1;
                println!("{path}: FAILED at {}", e.at);
                println!("    reason: {}", e.reason);
            }
        }
    }
    Ok(if failures == 0 { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else { return usage() };
    let result = match cmd.as_str() {
        "opt" => cmd_opt(rest),
        "run" => cmd_run(rest),
        "diff" => cmd_diff(rest),
        "gen" => cmd_gen(rest),
        "check" => cmd_check(rest),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
