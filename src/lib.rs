//! # crellvm
//!
//! A verified-credible-compilation framework for an LLVM-like SSA IR —
//! a from-scratch Rust reproduction of *"Crellvm: Verified Credible
//! Compilation for LLVM"* (PLDI 2018).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`ir`] — the SSA intermediate representation (parser, printer, CFG,
//!   dominators, verifier).
//! * [`interp`] — the reference interpreter (semantics, memory model,
//!   behaviour refinement).
//! * [`erhl`] — the Extensible Relational Hoare Logic: assertions,
//!   inference rules, the post-assertion calculus, and the proof checker.
//! * [`passes`] — proof-generating optimizations: mem2reg, gvn (+PRE),
//!   licm, instcombine, with injectable historical LLVM bugs.
//! * [`diff`] — alpha-equivalence checking (the `llvm-diff` analogue).
//! * [`gen`] — random program generation, the synthetic benchmark
//!   corpus, and the seeded miscompilation injector.
//! * [`fuzz`] — the soundness fuzzing engine: a three-way
//!   checker/interpreter/diff oracle and reproducible parallel
//!   campaigns with `ddmin`-minimized, replayable findings.
//! * [`telemetry`] — metrics registry, span timers, and the structured
//!   JSON-lines proof-audit trace (zero external dependencies).
//! * [`bench`] — the experiment driver regenerating the paper's tables,
//!   plus bench history and the noise-aware regression sentinel.
//! * [`serve`] — validation-as-a-service: the loopback daemon with a
//!   bounded admission queue, tenant-namespaced verdict cache, and a
//!   live observability plane (`crellvm serve`, `crellvm top`).
//!
//! # Quickstart
//!
//! ```
//! use crellvm::ir::parse_module;
//! use crellvm::passes::{mem2reg, PassConfig};
//! use crellvm::erhl::validate;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = parse_module(
//!     r#"
//!     declare @print(i32)
//!     define @main() {
//!     entry:
//!       %p = alloca i32
//!       store i32 42, ptr %p
//!       %a = load i32, ptr %p
//!       call void @print(i32 %a)
//!       ret
//!     }
//!     "#
//!     .replace("ret\n", "ret void\n")
//!     .as_str(),
//! )?;
//! let outcome = mem2reg(&src, &PassConfig::default());
//! for unit in &outcome.proofs {
//!     validate(unit)?;
//! }
//! # Ok(())
//! # }
//! ```

pub use crellvm_bench as bench;
pub use crellvm_core as erhl;
pub use crellvm_diff as diff;
pub use crellvm_fuzz as fuzz;
pub use crellvm_gen as gen;
pub use crellvm_interp as interp;
pub use crellvm_ir as ir;
pub use crellvm_passes as passes;
pub use crellvm_serve as serve;
pub use crellvm_telemetry as telemetry;
