/root/repo/target/debug/examples/gvn_pre-fed7d786b8baf6ea.d: examples/gvn_pre.rs Cargo.toml

/root/repo/target/debug/examples/libgvn_pre-fed7d786b8baf6ea.rmeta: examples/gvn_pre.rs Cargo.toml

examples/gvn_pre.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
