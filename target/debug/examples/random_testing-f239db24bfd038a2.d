/root/repo/target/debug/examples/random_testing-f239db24bfd038a2.d: examples/random_testing.rs

/root/repo/target/debug/examples/librandom_testing-f239db24bfd038a2.rmeta: examples/random_testing.rs

examples/random_testing.rs:
