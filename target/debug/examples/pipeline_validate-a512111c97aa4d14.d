/root/repo/target/debug/examples/pipeline_validate-a512111c97aa4d14.d: examples/pipeline_validate.rs

/root/repo/target/debug/examples/libpipeline_validate-a512111c97aa4d14.rmeta: examples/pipeline_validate.rs

examples/pipeline_validate.rs:
