/root/repo/target/debug/examples/bug_hunt-d3ce30dc64023a8d.d: examples/bug_hunt.rs Cargo.toml

/root/repo/target/debug/examples/libbug_hunt-d3ce30dc64023a8d.rmeta: examples/bug_hunt.rs Cargo.toml

examples/bug_hunt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
