/root/repo/target/debug/examples/bug_hunt-01b73735283a1ac6.d: examples/bug_hunt.rs

/root/repo/target/debug/examples/bug_hunt-01b73735283a1ac6: examples/bug_hunt.rs

examples/bug_hunt.rs:
