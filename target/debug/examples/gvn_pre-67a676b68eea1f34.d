/root/repo/target/debug/examples/gvn_pre-67a676b68eea1f34.d: examples/gvn_pre.rs

/root/repo/target/debug/examples/libgvn_pre-67a676b68eea1f34.rmeta: examples/gvn_pre.rs

examples/gvn_pre.rs:
