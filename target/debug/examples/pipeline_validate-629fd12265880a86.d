/root/repo/target/debug/examples/pipeline_validate-629fd12265880a86.d: examples/pipeline_validate.rs

/root/repo/target/debug/examples/pipeline_validate-629fd12265880a86: examples/pipeline_validate.rs

examples/pipeline_validate.rs:
