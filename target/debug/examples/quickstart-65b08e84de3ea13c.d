/root/repo/target/debug/examples/quickstart-65b08e84de3ea13c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-65b08e84de3ea13c: examples/quickstart.rs

examples/quickstart.rs:
