/root/repo/target/debug/examples/gvn_pre-b9429dab8f34b7c2.d: examples/gvn_pre.rs

/root/repo/target/debug/examples/gvn_pre-b9429dab8f34b7c2: examples/gvn_pre.rs

examples/gvn_pre.rs:
