/root/repo/target/debug/examples/bug_hunt-3387c7a4914dcd99.d: examples/bug_hunt.rs

/root/repo/target/debug/examples/bug_hunt-3387c7a4914dcd99: examples/bug_hunt.rs

examples/bug_hunt.rs:
