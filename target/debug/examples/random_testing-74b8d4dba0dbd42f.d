/root/repo/target/debug/examples/random_testing-74b8d4dba0dbd42f.d: examples/random_testing.rs

/root/repo/target/debug/examples/random_testing-74b8d4dba0dbd42f: examples/random_testing.rs

examples/random_testing.rs:
