/root/repo/target/debug/examples/random_testing-495eb4f878adfd02.d: examples/random_testing.rs Cargo.toml

/root/repo/target/debug/examples/librandom_testing-495eb4f878adfd02.rmeta: examples/random_testing.rs Cargo.toml

examples/random_testing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
