/root/repo/target/debug/examples/quickstart-d08fb87dcb6a30d8.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-d08fb87dcb6a30d8.rmeta: examples/quickstart.rs

examples/quickstart.rs:
