/root/repo/target/debug/examples/pipeline_validate-3c1fcf134b43ab5f.d: examples/pipeline_validate.rs

/root/repo/target/debug/examples/pipeline_validate-3c1fcf134b43ab5f: examples/pipeline_validate.rs

examples/pipeline_validate.rs:
