/root/repo/target/debug/examples/gvn_pre-77bf4008cfd21774.d: examples/gvn_pre.rs

/root/repo/target/debug/examples/gvn_pre-77bf4008cfd21774: examples/gvn_pre.rs

examples/gvn_pre.rs:
