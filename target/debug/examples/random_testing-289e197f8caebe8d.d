/root/repo/target/debug/examples/random_testing-289e197f8caebe8d.d: examples/random_testing.rs

/root/repo/target/debug/examples/random_testing-289e197f8caebe8d: examples/random_testing.rs

examples/random_testing.rs:
