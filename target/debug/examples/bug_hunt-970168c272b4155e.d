/root/repo/target/debug/examples/bug_hunt-970168c272b4155e.d: examples/bug_hunt.rs

/root/repo/target/debug/examples/libbug_hunt-970168c272b4155e.rmeta: examples/bug_hunt.rs

examples/bug_hunt.rs:
