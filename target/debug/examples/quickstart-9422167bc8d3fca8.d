/root/repo/target/debug/examples/quickstart-9422167bc8d3fca8.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9422167bc8d3fca8: examples/quickstart.rs

examples/quickstart.rs:
