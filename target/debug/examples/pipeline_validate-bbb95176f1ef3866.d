/root/repo/target/debug/examples/pipeline_validate-bbb95176f1ef3866.d: examples/pipeline_validate.rs Cargo.toml

/root/repo/target/debug/examples/libpipeline_validate-bbb95176f1ef3866.rmeta: examples/pipeline_validate.rs Cargo.toml

examples/pipeline_validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
