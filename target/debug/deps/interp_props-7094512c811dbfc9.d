/root/repo/target/debug/deps/interp_props-7094512c811dbfc9.d: tests/interp_props.rs

/root/repo/target/debug/deps/interp_props-7094512c811dbfc9: tests/interp_props.rs

tests/interp_props.rs:
