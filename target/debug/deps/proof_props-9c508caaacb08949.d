/root/repo/target/debug/deps/proof_props-9c508caaacb08949.d: tests/proof_props.rs Cargo.toml

/root/repo/target/debug/deps/libproof_props-9c508caaacb08949.rmeta: tests/proof_props.rs Cargo.toml

tests/proof_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
