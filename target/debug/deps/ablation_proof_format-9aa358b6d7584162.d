/root/repo/target/debug/deps/ablation_proof_format-9aa358b6d7584162.d: crates/bench/benches/ablation_proof_format.rs

/root/repo/target/debug/deps/libablation_proof_format-9aa358b6d7584162.rmeta: crates/bench/benches/ablation_proof_format.rs

crates/bench/benches/ablation_proof_format.rs:
