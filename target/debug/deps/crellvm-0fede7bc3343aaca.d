/root/repo/target/debug/deps/crellvm-0fede7bc3343aaca.d: src/main.rs

/root/repo/target/debug/deps/crellvm-0fede7bc3343aaca: src/main.rs

src/main.rs:
