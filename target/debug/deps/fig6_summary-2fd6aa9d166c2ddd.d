/root/repo/target/debug/deps/fig6_summary-2fd6aa9d166c2ddd.d: crates/bench/benches/fig6_summary.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_summary-2fd6aa9d166c2ddd.rmeta: crates/bench/benches/fig6_summary.rs Cargo.toml

crates/bench/benches/fig6_summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
