/root/repo/target/debug/deps/csmith_validation-0441b90e5b047d89.d: crates/bench/benches/csmith_validation.rs

/root/repo/target/debug/deps/libcsmith_validation-0441b90e5b047d89.rmeta: crates/bench/benches/csmith_validation.rs

crates/bench/benches/csmith_validation.rs:
