/root/repo/target/debug/deps/crellvm_diff-115176c941f8bc9c.d: crates/diff/src/lib.rs

/root/repo/target/debug/deps/libcrellvm_diff-115176c941f8bc9c.rmeta: crates/diff/src/lib.rs

crates/diff/src/lib.rs:
