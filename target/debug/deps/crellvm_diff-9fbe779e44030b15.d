/root/repo/target/debug/deps/crellvm_diff-9fbe779e44030b15.d: crates/diff/src/lib.rs

/root/repo/target/debug/deps/libcrellvm_diff-9fbe779e44030b15.rmeta: crates/diff/src/lib.rs

crates/diff/src/lib.rs:
