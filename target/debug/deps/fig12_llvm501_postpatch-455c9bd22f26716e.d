/root/repo/target/debug/deps/fig12_llvm501_postpatch-455c9bd22f26716e.d: crates/bench/benches/fig12_llvm501_postpatch.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_llvm501_postpatch-455c9bd22f26716e.rmeta: crates/bench/benches/fig12_llvm501_postpatch.rs Cargo.toml

crates/bench/benches/fig12_llvm501_postpatch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
