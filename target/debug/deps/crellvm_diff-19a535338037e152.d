/root/repo/target/debug/deps/crellvm_diff-19a535338037e152.d: crates/diff/src/lib.rs

/root/repo/target/debug/deps/crellvm_diff-19a535338037e152: crates/diff/src/lib.rs

crates/diff/src/lib.rs:
