/root/repo/target/debug/deps/csmith_validation-d94b7721a0d53e16.d: crates/bench/benches/csmith_validation.rs Cargo.toml

/root/repo/target/debug/deps/libcsmith_validation-d94b7721a0d53e16.rmeta: crates/bench/benches/csmith_validation.rs Cargo.toml

crates/bench/benches/csmith_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
