/root/repo/target/debug/deps/crellvm_core-6c5db9ef614afb3b.d: crates/core/src/lib.rs crates/core/src/assertion.rs crates/core/src/auto.rs crates/core/src/checker.rs crates/core/src/equivbeh.rs crates/core/src/expr.rs crates/core/src/infrule.rs crates/core/src/postcond.rs crates/core/src/proof.rs crates/core/src/rules_arith.rs crates/core/src/rules_composite.rs crates/core/src/semantics.rs crates/core/src/serialize.rs crates/core/src/serialize_bin.rs

/root/repo/target/debug/deps/libcrellvm_core-6c5db9ef614afb3b.rmeta: crates/core/src/lib.rs crates/core/src/assertion.rs crates/core/src/auto.rs crates/core/src/checker.rs crates/core/src/equivbeh.rs crates/core/src/expr.rs crates/core/src/infrule.rs crates/core/src/postcond.rs crates/core/src/proof.rs crates/core/src/rules_arith.rs crates/core/src/rules_composite.rs crates/core/src/semantics.rs crates/core/src/serialize.rs crates/core/src/serialize_bin.rs

crates/core/src/lib.rs:
crates/core/src/assertion.rs:
crates/core/src/auto.rs:
crates/core/src/checker.rs:
crates/core/src/equivbeh.rs:
crates/core/src/expr.rs:
crates/core/src/infrule.rs:
crates/core/src/postcond.rs:
crates/core/src/proof.rs:
crates/core/src/rules_arith.rs:
crates/core/src/rules_composite.rs:
crates/core/src/semantics.rs:
crates/core/src/serialize.rs:
crates/core/src/serialize_bin.rs:
