/root/repo/target/debug/deps/rand-7d0e839efc5f2145.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-7d0e839efc5f2145: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
