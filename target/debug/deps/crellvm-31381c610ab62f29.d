/root/repo/target/debug/deps/crellvm-31381c610ab62f29.d: src/lib.rs

/root/repo/target/debug/deps/libcrellvm-31381c610ab62f29.rlib: src/lib.rs

/root/repo/target/debug/deps/libcrellvm-31381c610ab62f29.rmeta: src/lib.rs

src/lib.rs:
