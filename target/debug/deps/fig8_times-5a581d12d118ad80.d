/root/repo/target/debug/deps/fig8_times-5a581d12d118ad80.d: crates/bench/benches/fig8_times.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_times-5a581d12d118ad80.rmeta: crates/bench/benches/fig8_times.rs Cargo.toml

crates/bench/benches/fig8_times.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
