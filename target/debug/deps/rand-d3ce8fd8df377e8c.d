/root/repo/target/debug/deps/rand-d3ce8fd8df377e8c.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-d3ce8fd8df377e8c.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-d3ce8fd8df377e8c.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
