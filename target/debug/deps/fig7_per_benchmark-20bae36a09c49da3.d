/root/repo/target/debug/deps/fig7_per_benchmark-20bae36a09c49da3.d: crates/bench/benches/fig7_per_benchmark.rs

/root/repo/target/debug/deps/libfig7_per_benchmark-20bae36a09c49da3.rmeta: crates/bench/benches/fig7_per_benchmark.rs

crates/bench/benches/fig7_per_benchmark.rs:
