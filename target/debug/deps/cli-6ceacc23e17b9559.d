/root/repo/target/debug/deps/cli-6ceacc23e17b9559.d: tests/cli.rs

/root/repo/target/debug/deps/libcli-6ceacc23e17b9559.rmeta: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_crellvm=placeholder:crellvm
