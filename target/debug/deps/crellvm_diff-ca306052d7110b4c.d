/root/repo/target/debug/deps/crellvm_diff-ca306052d7110b4c.d: crates/diff/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrellvm_diff-ca306052d7110b4c.rmeta: crates/diff/src/lib.rs Cargo.toml

crates/diff/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
