/root/repo/target/debug/deps/stress-74ef15f1594387ea.d: tests/stress.rs

/root/repo/target/debug/deps/libstress-74ef15f1594387ea.rmeta: tests/stress.rs

tests/stress.rs:
