/root/repo/target/debug/deps/proptest-ffd13cbbf1fe9fa3.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-ffd13cbbf1fe9fa3.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
