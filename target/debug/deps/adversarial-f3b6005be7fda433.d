/root/repo/target/debug/deps/adversarial-f3b6005be7fda433.d: tests/adversarial.rs

/root/repo/target/debug/deps/adversarial-f3b6005be7fda433: tests/adversarial.rs

tests/adversarial.rs:
