/root/repo/target/debug/deps/fig7_per_benchmark-6076d2c781364581.d: crates/bench/benches/fig7_per_benchmark.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_per_benchmark-6076d2c781364581.rmeta: crates/bench/benches/fig7_per_benchmark.rs Cargo.toml

crates/bench/benches/fig7_per_benchmark.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
