/root/repo/target/debug/deps/ablation_automation-f33f82cafbf3f6d6.d: crates/bench/benches/ablation_automation.rs

/root/repo/target/debug/deps/libablation_automation-f33f82cafbf3f6d6.rmeta: crates/bench/benches/ablation_automation.rs

crates/bench/benches/ablation_automation.rs:
