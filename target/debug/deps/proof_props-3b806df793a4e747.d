/root/repo/target/debug/deps/proof_props-3b806df793a4e747.d: tests/proof_props.rs

/root/repo/target/debug/deps/proof_props-3b806df793a4e747: tests/proof_props.rs

tests/proof_props.rs:
