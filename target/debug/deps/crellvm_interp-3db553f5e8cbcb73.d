/root/repo/target/debug/deps/crellvm_interp-3db553f5e8cbcb73.d: crates/interp/src/lib.rs crates/interp/src/event.rs crates/interp/src/exec.rs crates/interp/src/mem.rs crates/interp/src/refine.rs crates/interp/src/value.rs

/root/repo/target/debug/deps/libcrellvm_interp-3db553f5e8cbcb73.rmeta: crates/interp/src/lib.rs crates/interp/src/event.rs crates/interp/src/exec.rs crates/interp/src/mem.rs crates/interp/src/refine.rs crates/interp/src/value.rs

crates/interp/src/lib.rs:
crates/interp/src/event.rs:
crates/interp/src/exec.rs:
crates/interp/src/mem.rs:
crates/interp/src/refine.rs:
crates/interp/src/value.rs:
