/root/repo/target/debug/deps/fig6_summary-059c770235d2ab05.d: crates/bench/benches/fig6_summary.rs

/root/repo/target/debug/deps/libfig6_summary-059c770235d2ab05.rmeta: crates/bench/benches/fig6_summary.rs

crates/bench/benches/fig6_summary.rs:
