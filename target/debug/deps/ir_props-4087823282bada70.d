/root/repo/target/debug/deps/ir_props-4087823282bada70.d: tests/ir_props.rs

/root/repo/target/debug/deps/libir_props-4087823282bada70.rmeta: tests/ir_props.rs

tests/ir_props.rs:
