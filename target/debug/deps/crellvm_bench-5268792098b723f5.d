/root/repo/target/debug/deps/crellvm_bench-5268792098b723f5.d: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/sloc.rs crates/bench/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libcrellvm_bench-5268792098b723f5.rmeta: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/sloc.rs crates/bench/src/tables.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiment.rs:
crates/bench/src/sloc.rs:
crates/bench/src/tables.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
