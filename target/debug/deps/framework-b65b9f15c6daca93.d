/root/repo/target/debug/deps/framework-b65b9f15c6daca93.d: tests/framework.rs

/root/repo/target/debug/deps/framework-b65b9f15c6daca93: tests/framework.rs

tests/framework.rs:
