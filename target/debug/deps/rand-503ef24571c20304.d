/root/repo/target/debug/deps/rand-503ef24571c20304.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-503ef24571c20304.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
