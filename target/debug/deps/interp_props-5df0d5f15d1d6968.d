/root/repo/target/debug/deps/interp_props-5df0d5f15d1d6968.d: tests/interp_props.rs

/root/repo/target/debug/deps/interp_props-5df0d5f15d1d6968: tests/interp_props.rs

tests/interp_props.rs:
