/root/repo/target/debug/deps/telemetry-2df9f5660aaaa58b.d: tests/telemetry.rs

/root/repo/target/debug/deps/telemetry-2df9f5660aaaa58b: tests/telemetry.rs

tests/telemetry.rs:
