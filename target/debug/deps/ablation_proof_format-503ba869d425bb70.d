/root/repo/target/debug/deps/ablation_proof_format-503ba869d425bb70.d: crates/bench/benches/ablation_proof_format.rs Cargo.toml

/root/repo/target/debug/deps/libablation_proof_format-503ba869d425bb70.rmeta: crates/bench/benches/ablation_proof_format.rs Cargo.toml

crates/bench/benches/ablation_proof_format.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
