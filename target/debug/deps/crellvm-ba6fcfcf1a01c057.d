/root/repo/target/debug/deps/crellvm-ba6fcfcf1a01c057.d: src/lib.rs

/root/repo/target/debug/deps/libcrellvm-ba6fcfcf1a01c057.rmeta: src/lib.rs

src/lib.rs:
