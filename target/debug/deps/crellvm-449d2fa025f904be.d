/root/repo/target/debug/deps/crellvm-449d2fa025f904be.d: src/main.rs

/root/repo/target/debug/deps/crellvm-449d2fa025f904be: src/main.rs

src/main.rs:
