/root/repo/target/debug/deps/csmith_validation-4a7afb1ac341b13b.d: crates/bench/benches/csmith_validation.rs Cargo.toml

/root/repo/target/debug/deps/libcsmith_validation-4a7afb1ac341b13b.rmeta: crates/bench/benches/csmith_validation.rs Cargo.toml

crates/bench/benches/csmith_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
