/root/repo/target/debug/deps/crellvm_interp-38a620340bd41f13.d: crates/interp/src/lib.rs crates/interp/src/event.rs crates/interp/src/exec.rs crates/interp/src/mem.rs crates/interp/src/refine.rs crates/interp/src/value.rs

/root/repo/target/debug/deps/libcrellvm_interp-38a620340bd41f13.rlib: crates/interp/src/lib.rs crates/interp/src/event.rs crates/interp/src/exec.rs crates/interp/src/mem.rs crates/interp/src/refine.rs crates/interp/src/value.rs

/root/repo/target/debug/deps/libcrellvm_interp-38a620340bd41f13.rmeta: crates/interp/src/lib.rs crates/interp/src/event.rs crates/interp/src/exec.rs crates/interp/src/mem.rs crates/interp/src/refine.rs crates/interp/src/value.rs

crates/interp/src/lib.rs:
crates/interp/src/event.rs:
crates/interp/src/exec.rs:
crates/interp/src/mem.rs:
crates/interp/src/refine.rs:
crates/interp/src/value.rs:
