/root/repo/target/debug/deps/crellvm-84a5fadc293e7a5e.d: src/main.rs

/root/repo/target/debug/deps/libcrellvm-84a5fadc293e7a5e.rmeta: src/main.rs

src/main.rs:
