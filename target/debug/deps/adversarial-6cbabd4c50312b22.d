/root/repo/target/debug/deps/adversarial-6cbabd4c50312b22.d: tests/adversarial.rs

/root/repo/target/debug/deps/adversarial-6cbabd4c50312b22: tests/adversarial.rs

tests/adversarial.rs:
