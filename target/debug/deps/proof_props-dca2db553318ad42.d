/root/repo/target/debug/deps/proof_props-dca2db553318ad42.d: tests/proof_props.rs

/root/repo/target/debug/deps/libproof_props-dca2db553318ad42.rmeta: tests/proof_props.rs

tests/proof_props.rs:
