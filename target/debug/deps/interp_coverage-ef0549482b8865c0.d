/root/repo/target/debug/deps/interp_coverage-ef0549482b8865c0.d: tests/interp_coverage.rs

/root/repo/target/debug/deps/interp_coverage-ef0549482b8865c0: tests/interp_coverage.rs

tests/interp_coverage.rs:
