/root/repo/target/debug/deps/crellvm_ir-16d256f6721453fc.d: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/cfg.rs crates/ir/src/constant.rs crates/ir/src/dom.rs crates/ir/src/function.rs crates/ir/src/inst.rs crates/ir/src/module.rs crates/ir/src/parser.rs crates/ir/src/printer.rs crates/ir/src/types.rs crates/ir/src/value.rs crates/ir/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libcrellvm_ir-16d256f6721453fc.rmeta: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/cfg.rs crates/ir/src/constant.rs crates/ir/src/dom.rs crates/ir/src/function.rs crates/ir/src/inst.rs crates/ir/src/module.rs crates/ir/src/parser.rs crates/ir/src/printer.rs crates/ir/src/types.rs crates/ir/src/value.rs crates/ir/src/verify.rs Cargo.toml

crates/ir/src/lib.rs:
crates/ir/src/builder.rs:
crates/ir/src/cfg.rs:
crates/ir/src/constant.rs:
crates/ir/src/dom.rs:
crates/ir/src/function.rs:
crates/ir/src/inst.rs:
crates/ir/src/module.rs:
crates/ir/src/parser.rs:
crates/ir/src/printer.rs:
crates/ir/src/types.rs:
crates/ir/src/value.rs:
crates/ir/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
