/root/repo/target/debug/deps/diff_props-a1e89d002fb3d1f7.d: tests/diff_props.rs

/root/repo/target/debug/deps/diff_props-a1e89d002fb3d1f7: tests/diff_props.rs

tests/diff_props.rs:
