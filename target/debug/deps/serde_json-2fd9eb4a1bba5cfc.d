/root/repo/target/debug/deps/serde_json-2fd9eb4a1bba5cfc.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-2fd9eb4a1bba5cfc.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-2fd9eb4a1bba5cfc.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
