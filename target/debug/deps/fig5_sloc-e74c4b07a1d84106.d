/root/repo/target/debug/deps/fig5_sloc-e74c4b07a1d84106.d: crates/bench/benches/fig5_sloc.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_sloc-e74c4b07a1d84106.rmeta: crates/bench/benches/fig5_sloc.rs Cargo.toml

crates/bench/benches/fig5_sloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
