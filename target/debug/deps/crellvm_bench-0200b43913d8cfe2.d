/root/repo/target/debug/deps/crellvm_bench-0200b43913d8cfe2.d: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/sloc.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/crellvm_bench-0200b43913d8cfe2: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/sloc.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/experiment.rs:
crates/bench/src/sloc.rs:
crates/bench/src/tables.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
