/root/repo/target/debug/deps/crellvm-dd600937212fe2b4.d: src/lib.rs

/root/repo/target/debug/deps/crellvm-dd600937212fe2b4: src/lib.rs

src/lib.rs:
