/root/repo/target/debug/deps/crellvm_core-06719bdd91efc506.d: crates/core/src/lib.rs crates/core/src/assertion.rs crates/core/src/auto.rs crates/core/src/checker.rs crates/core/src/equivbeh.rs crates/core/src/expr.rs crates/core/src/infrule.rs crates/core/src/postcond.rs crates/core/src/proof.rs crates/core/src/rules_arith.rs crates/core/src/rules_composite.rs crates/core/src/semantics.rs crates/core/src/serialize.rs crates/core/src/serialize_bin.rs Cargo.toml

/root/repo/target/debug/deps/libcrellvm_core-06719bdd91efc506.rmeta: crates/core/src/lib.rs crates/core/src/assertion.rs crates/core/src/auto.rs crates/core/src/checker.rs crates/core/src/equivbeh.rs crates/core/src/expr.rs crates/core/src/infrule.rs crates/core/src/postcond.rs crates/core/src/proof.rs crates/core/src/rules_arith.rs crates/core/src/rules_composite.rs crates/core/src/semantics.rs crates/core/src/serialize.rs crates/core/src/serialize_bin.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/assertion.rs:
crates/core/src/auto.rs:
crates/core/src/checker.rs:
crates/core/src/equivbeh.rs:
crates/core/src/expr.rs:
crates/core/src/infrule.rs:
crates/core/src/postcond.rs:
crates/core/src/proof.rs:
crates/core/src/rules_arith.rs:
crates/core/src/rules_composite.rs:
crates/core/src/semantics.rs:
crates/core/src/serialize.rs:
crates/core/src/serialize_bin.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
