/root/repo/target/debug/deps/fig7_per_benchmark-ca62296068ec6f73.d: crates/bench/benches/fig7_per_benchmark.rs

/root/repo/target/debug/deps/libfig7_per_benchmark-ca62296068ec6f73.rmeta: crates/bench/benches/fig7_per_benchmark.rs

crates/bench/benches/fig7_per_benchmark.rs:
