/root/repo/target/debug/deps/ir_props-503d40d538eafd81.d: tests/ir_props.rs Cargo.toml

/root/repo/target/debug/deps/libir_props-503d40d538eafd81.rmeta: tests/ir_props.rs Cargo.toml

tests/ir_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
