/root/repo/target/debug/deps/framework-a872c63fb2ba2a39.d: tests/framework.rs

/root/repo/target/debug/deps/libframework-a872c63fb2ba2a39.rmeta: tests/framework.rs

tests/framework.rs:
