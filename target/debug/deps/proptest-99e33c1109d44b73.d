/root/repo/target/debug/deps/proptest-99e33c1109d44b73.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-99e33c1109d44b73.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
