/root/repo/target/debug/deps/crellvm-d921445802a17a98.d: src/main.rs

/root/repo/target/debug/deps/libcrellvm-d921445802a17a98.rmeta: src/main.rs

src/main.rs:
