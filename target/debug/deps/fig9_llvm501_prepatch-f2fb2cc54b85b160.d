/root/repo/target/debug/deps/fig9_llvm501_prepatch-f2fb2cc54b85b160.d: crates/bench/benches/fig9_llvm501_prepatch.rs

/root/repo/target/debug/deps/libfig9_llvm501_prepatch-f2fb2cc54b85b160.rmeta: crates/bench/benches/fig9_llvm501_prepatch.rs

crates/bench/benches/fig9_llvm501_prepatch.rs:
