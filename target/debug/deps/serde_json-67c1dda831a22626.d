/root/repo/target/debug/deps/serde_json-67c1dda831a22626.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-67c1dda831a22626: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
