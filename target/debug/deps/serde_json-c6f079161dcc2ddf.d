/root/repo/target/debug/deps/serde_json-c6f079161dcc2ddf.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-c6f079161dcc2ddf.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
