/root/repo/target/debug/deps/telemetry-a831baecc67bcc00.d: tests/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry-a831baecc67bcc00.rmeta: tests/telemetry.rs Cargo.toml

tests/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
