/root/repo/target/debug/deps/cli-b2c41a5228fb0ba5.d: tests/cli.rs

/root/repo/target/debug/deps/cli-b2c41a5228fb0ba5: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_crellvm=/root/repo/target/debug/crellvm
