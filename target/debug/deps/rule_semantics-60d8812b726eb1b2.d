/root/repo/target/debug/deps/rule_semantics-60d8812b726eb1b2.d: tests/rule_semantics.rs

/root/repo/target/debug/deps/rule_semantics-60d8812b726eb1b2: tests/rule_semantics.rs

tests/rule_semantics.rs:
