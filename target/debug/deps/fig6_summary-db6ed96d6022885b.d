/root/repo/target/debug/deps/fig6_summary-db6ed96d6022885b.d: crates/bench/benches/fig6_summary.rs

/root/repo/target/debug/deps/libfig6_summary-db6ed96d6022885b.rmeta: crates/bench/benches/fig6_summary.rs

crates/bench/benches/fig6_summary.rs:
