/root/repo/target/debug/deps/crellvm_telemetry-c50f2c2776704da3.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/libcrellvm_telemetry-c50f2c2776704da3.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/libcrellvm_telemetry-c50f2c2776704da3.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/trace.rs:
