/root/repo/target/debug/deps/ir_props-62d67e39dbb55acd.d: tests/ir_props.rs

/root/repo/target/debug/deps/ir_props-62d67e39dbb55acd: tests/ir_props.rs

tests/ir_props.rs:
