/root/repo/target/debug/deps/fig5_sloc-5a43f3684f1e2648.d: crates/bench/benches/fig5_sloc.rs

/root/repo/target/debug/deps/libfig5_sloc-5a43f3684f1e2648.rmeta: crates/bench/benches/fig5_sloc.rs

crates/bench/benches/fig5_sloc.rs:
