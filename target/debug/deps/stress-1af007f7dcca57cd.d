/root/repo/target/debug/deps/stress-1af007f7dcca57cd.d: tests/stress.rs

/root/repo/target/debug/deps/stress-1af007f7dcca57cd: tests/stress.rs

tests/stress.rs:
