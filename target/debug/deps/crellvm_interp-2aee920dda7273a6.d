/root/repo/target/debug/deps/crellvm_interp-2aee920dda7273a6.d: crates/interp/src/lib.rs crates/interp/src/event.rs crates/interp/src/exec.rs crates/interp/src/mem.rs crates/interp/src/refine.rs crates/interp/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libcrellvm_interp-2aee920dda7273a6.rmeta: crates/interp/src/lib.rs crates/interp/src/event.rs crates/interp/src/exec.rs crates/interp/src/mem.rs crates/interp/src/refine.rs crates/interp/src/value.rs Cargo.toml

crates/interp/src/lib.rs:
crates/interp/src/event.rs:
crates/interp/src/exec.rs:
crates/interp/src/mem.rs:
crates/interp/src/refine.rs:
crates/interp/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
