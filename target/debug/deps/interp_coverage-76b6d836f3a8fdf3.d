/root/repo/target/debug/deps/interp_coverage-76b6d836f3a8fdf3.d: tests/interp_coverage.rs Cargo.toml

/root/repo/target/debug/deps/libinterp_coverage-76b6d836f3a8fdf3.rmeta: tests/interp_coverage.rs Cargo.toml

tests/interp_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
