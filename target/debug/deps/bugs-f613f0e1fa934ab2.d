/root/repo/target/debug/deps/bugs-f613f0e1fa934ab2.d: tests/bugs.rs

/root/repo/target/debug/deps/bugs-f613f0e1fa934ab2: tests/bugs.rs

tests/bugs.rs:
