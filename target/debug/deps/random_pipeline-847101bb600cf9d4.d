/root/repo/target/debug/deps/random_pipeline-847101bb600cf9d4.d: tests/random_pipeline.rs

/root/repo/target/debug/deps/librandom_pipeline-847101bb600cf9d4.rmeta: tests/random_pipeline.rs

tests/random_pipeline.rs:
