/root/repo/target/debug/deps/crellvm-ea8f1a0ae7bf5836.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libcrellvm-ea8f1a0ae7bf5836.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
