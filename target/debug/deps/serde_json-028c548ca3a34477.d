/root/repo/target/debug/deps/serde_json-028c548ca3a34477.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-028c548ca3a34477.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
