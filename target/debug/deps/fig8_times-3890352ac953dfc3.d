/root/repo/target/debug/deps/fig8_times-3890352ac953dfc3.d: crates/bench/benches/fig8_times.rs

/root/repo/target/debug/deps/libfig8_times-3890352ac953dfc3.rmeta: crates/bench/benches/fig8_times.rs

crates/bench/benches/fig8_times.rs:
