/root/repo/target/debug/deps/framework-d045a98c9f184b22.d: tests/framework.rs Cargo.toml

/root/repo/target/debug/deps/libframework-d045a98c9f184b22.rmeta: tests/framework.rs Cargo.toml

tests/framework.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
