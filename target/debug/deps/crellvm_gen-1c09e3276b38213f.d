/root/repo/target/debug/deps/crellvm_gen-1c09e3276b38213f.d: crates/gen/src/lib.rs crates/gen/src/corpus.rs crates/gen/src/rand_prog.rs

/root/repo/target/debug/deps/crellvm_gen-1c09e3276b38213f: crates/gen/src/lib.rs crates/gen/src/corpus.rs crates/gen/src/rand_prog.rs

crates/gen/src/lib.rs:
crates/gen/src/corpus.rs:
crates/gen/src/rand_prog.rs:
