/root/repo/target/debug/deps/crellvm-f69229e2de52ec89.d: src/lib.rs

/root/repo/target/debug/deps/crellvm-f69229e2de52ec89: src/lib.rs

src/lib.rs:
