/root/repo/target/debug/deps/rule_semantics-6ba84737147279bc.d: tests/rule_semantics.rs Cargo.toml

/root/repo/target/debug/deps/librule_semantics-6ba84737147279bc.rmeta: tests/rule_semantics.rs Cargo.toml

tests/rule_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
