/root/repo/target/debug/deps/crellvm_diff-f979d96c41fe3d5d.d: crates/diff/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrellvm_diff-f979d96c41fe3d5d.rmeta: crates/diff/src/lib.rs Cargo.toml

crates/diff/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
