/root/repo/target/debug/deps/adversarial-0bae872bbd976a61.d: tests/adversarial.rs Cargo.toml

/root/repo/target/debug/deps/libadversarial-0bae872bbd976a61.rmeta: tests/adversarial.rs Cargo.toml

tests/adversarial.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
