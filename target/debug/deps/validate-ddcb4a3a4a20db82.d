/root/repo/target/debug/deps/validate-ddcb4a3a4a20db82.d: crates/bench/benches/validate.rs Cargo.toml

/root/repo/target/debug/deps/libvalidate-ddcb4a3a4a20db82.rmeta: crates/bench/benches/validate.rs Cargo.toml

crates/bench/benches/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
