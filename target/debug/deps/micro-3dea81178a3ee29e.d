/root/repo/target/debug/deps/micro-3dea81178a3ee29e.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/libmicro-3dea81178a3ee29e.rmeta: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
