/root/repo/target/debug/deps/crellvm_gen-b378c0e4284a74d3.d: crates/gen/src/lib.rs crates/gen/src/corpus.rs crates/gen/src/rand_prog.rs

/root/repo/target/debug/deps/libcrellvm_gen-b378c0e4284a74d3.rmeta: crates/gen/src/lib.rs crates/gen/src/corpus.rs crates/gen/src/rand_prog.rs

crates/gen/src/lib.rs:
crates/gen/src/corpus.rs:
crates/gen/src/rand_prog.rs:
