/root/repo/target/debug/deps/interp_props-3c5fa9735d87844a.d: tests/interp_props.rs

/root/repo/target/debug/deps/libinterp_props-3c5fa9735d87844a.rmeta: tests/interp_props.rs

tests/interp_props.rs:
