/root/repo/target/debug/deps/interp_coverage-d208846a0824668e.d: tests/interp_coverage.rs

/root/repo/target/debug/deps/libinterp_coverage-d208846a0824668e.rmeta: tests/interp_coverage.rs

tests/interp_coverage.rs:
