/root/repo/target/debug/deps/bugs-23820d1ebab94808.d: tests/bugs.rs

/root/repo/target/debug/deps/libbugs-23820d1ebab94808.rmeta: tests/bugs.rs

tests/bugs.rs:
