/root/repo/target/debug/deps/rule_semantics-7e4e591fdcedaa37.d: tests/rule_semantics.rs

/root/repo/target/debug/deps/librule_semantics-7e4e591fdcedaa37.rmeta: tests/rule_semantics.rs

tests/rule_semantics.rs:
