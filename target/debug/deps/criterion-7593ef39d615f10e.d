/root/repo/target/debug/deps/criterion-7593ef39d615f10e.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-7593ef39d615f10e: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
