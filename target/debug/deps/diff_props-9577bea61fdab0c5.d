/root/repo/target/debug/deps/diff_props-9577bea61fdab0c5.d: tests/diff_props.rs

/root/repo/target/debug/deps/diff_props-9577bea61fdab0c5: tests/diff_props.rs

tests/diff_props.rs:
