/root/repo/target/debug/deps/crellvm_telemetry-dfd2c05d411fd3c1.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/libcrellvm_telemetry-dfd2c05d411fd3c1.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/trace.rs:
