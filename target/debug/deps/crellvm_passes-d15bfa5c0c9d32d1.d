/root/repo/target/debug/deps/crellvm_passes-d15bfa5c0c9d32d1.d: crates/passes/src/lib.rs crates/passes/src/config.rs crates/passes/src/gvn.rs crates/passes/src/instcombine.rs crates/passes/src/licm.rs crates/passes/src/mem2reg.rs crates/passes/src/parallel.rs crates/passes/src/pipeline.rs crates/passes/src/util.rs Cargo.toml

/root/repo/target/debug/deps/libcrellvm_passes-d15bfa5c0c9d32d1.rmeta: crates/passes/src/lib.rs crates/passes/src/config.rs crates/passes/src/gvn.rs crates/passes/src/instcombine.rs crates/passes/src/licm.rs crates/passes/src/mem2reg.rs crates/passes/src/parallel.rs crates/passes/src/pipeline.rs crates/passes/src/util.rs Cargo.toml

crates/passes/src/lib.rs:
crates/passes/src/config.rs:
crates/passes/src/gvn.rs:
crates/passes/src/instcombine.rs:
crates/passes/src/licm.rs:
crates/passes/src/mem2reg.rs:
crates/passes/src/parallel.rs:
crates/passes/src/pipeline.rs:
crates/passes/src/util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
