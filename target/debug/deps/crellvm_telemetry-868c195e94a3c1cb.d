/root/repo/target/debug/deps/crellvm_telemetry-868c195e94a3c1cb.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/crellvm_telemetry-868c195e94a3c1cb: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/trace.rs:
