/root/repo/target/debug/deps/ir_props-5ff97a6883df7ca6.d: tests/ir_props.rs

/root/repo/target/debug/deps/ir_props-5ff97a6883df7ca6: tests/ir_props.rs

tests/ir_props.rs:
