/root/repo/target/debug/deps/csmith_validation-3618ab4068c03e69.d: crates/bench/benches/csmith_validation.rs

/root/repo/target/debug/deps/libcsmith_validation-3618ab4068c03e69.rmeta: crates/bench/benches/csmith_validation.rs

crates/bench/benches/csmith_validation.rs:
