/root/repo/target/debug/deps/proptest-fbd2937898874742.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-fbd2937898874742: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
