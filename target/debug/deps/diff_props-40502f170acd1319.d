/root/repo/target/debug/deps/diff_props-40502f170acd1319.d: tests/diff_props.rs

/root/repo/target/debug/deps/libdiff_props-40502f170acd1319.rmeta: tests/diff_props.rs

tests/diff_props.rs:
