/root/repo/target/debug/deps/fig12_llvm501_postpatch-a0fcb1abdaad844d.d: crates/bench/benches/fig12_llvm501_postpatch.rs

/root/repo/target/debug/deps/libfig12_llvm501_postpatch-a0fcb1abdaad844d.rmeta: crates/bench/benches/fig12_llvm501_postpatch.rs

crates/bench/benches/fig12_llvm501_postpatch.rs:
