/root/repo/target/debug/deps/crellvm-aa00c907860a4d17.d: src/lib.rs

/root/repo/target/debug/deps/libcrellvm-aa00c907860a4d17.rmeta: src/lib.rs

src/lib.rs:
