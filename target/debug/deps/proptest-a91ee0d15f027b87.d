/root/repo/target/debug/deps/proptest-a91ee0d15f027b87.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-a91ee0d15f027b87.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs Cargo.toml

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
