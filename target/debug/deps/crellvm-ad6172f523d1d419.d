/root/repo/target/debug/deps/crellvm-ad6172f523d1d419.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrellvm-ad6172f523d1d419.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
