/root/repo/target/debug/deps/crellvm_interp-9b9d75569e064680.d: crates/interp/src/lib.rs crates/interp/src/event.rs crates/interp/src/exec.rs crates/interp/src/mem.rs crates/interp/src/refine.rs crates/interp/src/value.rs

/root/repo/target/debug/deps/libcrellvm_interp-9b9d75569e064680.rmeta: crates/interp/src/lib.rs crates/interp/src/event.rs crates/interp/src/exec.rs crates/interp/src/mem.rs crates/interp/src/refine.rs crates/interp/src/value.rs

crates/interp/src/lib.rs:
crates/interp/src/event.rs:
crates/interp/src/exec.rs:
crates/interp/src/mem.rs:
crates/interp/src/refine.rs:
crates/interp/src/value.rs:
