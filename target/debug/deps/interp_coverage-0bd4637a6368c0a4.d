/root/repo/target/debug/deps/interp_coverage-0bd4637a6368c0a4.d: tests/interp_coverage.rs

/root/repo/target/debug/deps/interp_coverage-0bd4637a6368c0a4: tests/interp_coverage.rs

tests/interp_coverage.rs:
