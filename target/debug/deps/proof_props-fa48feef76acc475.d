/root/repo/target/debug/deps/proof_props-fa48feef76acc475.d: tests/proof_props.rs

/root/repo/target/debug/deps/proof_props-fa48feef76acc475: tests/proof_props.rs

tests/proof_props.rs:
