/root/repo/target/debug/deps/fig5_sloc-954410f5cfd4e50f.d: crates/bench/benches/fig5_sloc.rs

/root/repo/target/debug/deps/libfig5_sloc-954410f5cfd4e50f.rmeta: crates/bench/benches/fig5_sloc.rs

crates/bench/benches/fig5_sloc.rs:
