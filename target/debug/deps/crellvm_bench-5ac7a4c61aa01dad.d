/root/repo/target/debug/deps/crellvm_bench-5ac7a4c61aa01dad.d: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/sloc.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libcrellvm_bench-5ac7a4c61aa01dad.rlib: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/sloc.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libcrellvm_bench-5ac7a4c61aa01dad.rmeta: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/sloc.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/experiment.rs:
crates/bench/src/sloc.rs:
crates/bench/src/tables.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
