/root/repo/target/debug/deps/framework-8f8ea48ba9c1af95.d: tests/framework.rs

/root/repo/target/debug/deps/framework-8f8ea48ba9c1af95: tests/framework.rs

tests/framework.rs:
