/root/repo/target/debug/deps/serde_json-c6122b05671f63ed.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-c6122b05671f63ed.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-c6122b05671f63ed.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
