/root/repo/target/debug/deps/telemetry-c52c3fd2964748dd.d: tests/telemetry.rs

/root/repo/target/debug/deps/libtelemetry-c52c3fd2964748dd.rmeta: tests/telemetry.rs

tests/telemetry.rs:
