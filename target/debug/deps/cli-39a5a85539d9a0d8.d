/root/repo/target/debug/deps/cli-39a5a85539d9a0d8.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-39a5a85539d9a0d8.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_crellvm=placeholder:crellvm
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
