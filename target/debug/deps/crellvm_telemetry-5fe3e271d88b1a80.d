/root/repo/target/debug/deps/crellvm_telemetry-5fe3e271d88b1a80.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libcrellvm_telemetry-5fe3e271d88b1a80.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
