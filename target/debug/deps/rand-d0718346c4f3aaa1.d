/root/repo/target/debug/deps/rand-d0718346c4f3aaa1.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-d0718346c4f3aaa1.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
