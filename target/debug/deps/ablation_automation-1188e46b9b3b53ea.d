/root/repo/target/debug/deps/ablation_automation-1188e46b9b3b53ea.d: crates/bench/benches/ablation_automation.rs Cargo.toml

/root/repo/target/debug/deps/libablation_automation-1188e46b9b3b53ea.rmeta: crates/bench/benches/ablation_automation.rs Cargo.toml

crates/bench/benches/ablation_automation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
