/root/repo/target/debug/deps/paper_examples-093619be5c97057b.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-093619be5c97057b: tests/paper_examples.rs

tests/paper_examples.rs:
