/root/repo/target/debug/deps/fig9_llvm501_prepatch-55130a4e3e3deac2.d: crates/bench/benches/fig9_llvm501_prepatch.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_llvm501_prepatch-55130a4e3e3deac2.rmeta: crates/bench/benches/fig9_llvm501_prepatch.rs Cargo.toml

crates/bench/benches/fig9_llvm501_prepatch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
