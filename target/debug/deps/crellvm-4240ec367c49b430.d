/root/repo/target/debug/deps/crellvm-4240ec367c49b430.d: src/main.rs

/root/repo/target/debug/deps/crellvm-4240ec367c49b430: src/main.rs

src/main.rs:
