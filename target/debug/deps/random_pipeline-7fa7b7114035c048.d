/root/repo/target/debug/deps/random_pipeline-7fa7b7114035c048.d: tests/random_pipeline.rs

/root/repo/target/debug/deps/random_pipeline-7fa7b7114035c048: tests/random_pipeline.rs

tests/random_pipeline.rs:
