/root/repo/target/debug/deps/crellvm-f3f06a4f8ef142f9.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libcrellvm-f3f06a4f8ef142f9.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
