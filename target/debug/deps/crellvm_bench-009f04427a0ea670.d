/root/repo/target/debug/deps/crellvm_bench-009f04427a0ea670.d: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/sloc.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libcrellvm_bench-009f04427a0ea670.rlib: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/sloc.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libcrellvm_bench-009f04427a0ea670.rmeta: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/sloc.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/experiment.rs:
crates/bench/src/sloc.rs:
crates/bench/src/tables.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
