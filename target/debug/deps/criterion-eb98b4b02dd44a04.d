/root/repo/target/debug/deps/criterion-eb98b4b02dd44a04.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-eb98b4b02dd44a04.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
