/root/repo/target/debug/deps/random_pipeline-7baaf76edbe6580f.d: tests/random_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/librandom_pipeline-7baaf76edbe6580f.rmeta: tests/random_pipeline.rs Cargo.toml

tests/random_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
