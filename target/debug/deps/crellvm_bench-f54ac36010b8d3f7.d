/root/repo/target/debug/deps/crellvm_bench-f54ac36010b8d3f7.d: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/sloc.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/crellvm_bench-f54ac36010b8d3f7: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/sloc.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/experiment.rs:
crates/bench/src/sloc.rs:
crates/bench/src/tables.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
