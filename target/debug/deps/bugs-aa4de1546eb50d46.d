/root/repo/target/debug/deps/bugs-aa4de1546eb50d46.d: tests/bugs.rs

/root/repo/target/debug/deps/bugs-aa4de1546eb50d46: tests/bugs.rs

tests/bugs.rs:
