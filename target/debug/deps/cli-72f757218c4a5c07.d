/root/repo/target/debug/deps/cli-72f757218c4a5c07.d: tests/cli.rs

/root/repo/target/debug/deps/cli-72f757218c4a5c07: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_crellvm=/root/repo/target/debug/crellvm
