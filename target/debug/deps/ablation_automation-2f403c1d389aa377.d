/root/repo/target/debug/deps/ablation_automation-2f403c1d389aa377.d: crates/bench/benches/ablation_automation.rs

/root/repo/target/debug/deps/libablation_automation-2f403c1d389aa377.rmeta: crates/bench/benches/ablation_automation.rs

crates/bench/benches/ablation_automation.rs:
