/root/repo/target/debug/deps/crellvm-df8c53bed8b35dbf.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrellvm-df8c53bed8b35dbf.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
