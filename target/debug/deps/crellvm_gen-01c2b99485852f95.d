/root/repo/target/debug/deps/crellvm_gen-01c2b99485852f95.d: crates/gen/src/lib.rs crates/gen/src/corpus.rs crates/gen/src/rand_prog.rs Cargo.toml

/root/repo/target/debug/deps/libcrellvm_gen-01c2b99485852f95.rmeta: crates/gen/src/lib.rs crates/gen/src/corpus.rs crates/gen/src/rand_prog.rs Cargo.toml

crates/gen/src/lib.rs:
crates/gen/src/corpus.rs:
crates/gen/src/rand_prog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
