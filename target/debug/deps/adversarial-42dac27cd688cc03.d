/root/repo/target/debug/deps/adversarial-42dac27cd688cc03.d: tests/adversarial.rs

/root/repo/target/debug/deps/libadversarial-42dac27cd688cc03.rmeta: tests/adversarial.rs

tests/adversarial.rs:
