/root/repo/target/debug/deps/fig12_llvm501_postpatch-1239257049568895.d: crates/bench/benches/fig12_llvm501_postpatch.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_llvm501_postpatch-1239257049568895.rmeta: crates/bench/benches/fig12_llvm501_postpatch.rs Cargo.toml

crates/bench/benches/fig12_llvm501_postpatch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
