/root/repo/target/debug/deps/crellvm_interp-b640b5d2221166e2.d: crates/interp/src/lib.rs crates/interp/src/event.rs crates/interp/src/exec.rs crates/interp/src/mem.rs crates/interp/src/refine.rs crates/interp/src/value.rs

/root/repo/target/debug/deps/crellvm_interp-b640b5d2221166e2: crates/interp/src/lib.rs crates/interp/src/event.rs crates/interp/src/exec.rs crates/interp/src/mem.rs crates/interp/src/refine.rs crates/interp/src/value.rs

crates/interp/src/lib.rs:
crates/interp/src/event.rs:
crates/interp/src/exec.rs:
crates/interp/src/mem.rs:
crates/interp/src/refine.rs:
crates/interp/src/value.rs:
