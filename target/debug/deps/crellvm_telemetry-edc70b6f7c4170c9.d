/root/repo/target/debug/deps/crellvm_telemetry-edc70b6f7c4170c9.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/libcrellvm_telemetry-edc70b6f7c4170c9.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/trace.rs:
