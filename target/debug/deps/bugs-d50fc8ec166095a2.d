/root/repo/target/debug/deps/bugs-d50fc8ec166095a2.d: tests/bugs.rs Cargo.toml

/root/repo/target/debug/deps/libbugs-d50fc8ec166095a2.rmeta: tests/bugs.rs Cargo.toml

tests/bugs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
