/root/repo/target/debug/deps/stress-29d2735579ffa1ba.d: tests/stress.rs

/root/repo/target/debug/deps/stress-29d2735579ffa1ba: tests/stress.rs

tests/stress.rs:
