/root/repo/target/debug/deps/paper_examples-5d00b407b854ba80.d: tests/paper_examples.rs

/root/repo/target/debug/deps/libpaper_examples-5d00b407b854ba80.rmeta: tests/paper_examples.rs

tests/paper_examples.rs:
