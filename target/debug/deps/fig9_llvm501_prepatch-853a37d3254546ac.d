/root/repo/target/debug/deps/fig9_llvm501_prepatch-853a37d3254546ac.d: crates/bench/benches/fig9_llvm501_prepatch.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_llvm501_prepatch-853a37d3254546ac.rmeta: crates/bench/benches/fig9_llvm501_prepatch.rs Cargo.toml

crates/bench/benches/fig9_llvm501_prepatch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
