/root/repo/target/debug/deps/crellvm-72f79c506c4930b7.d: src/lib.rs

/root/repo/target/debug/deps/libcrellvm-72f79c506c4930b7.rlib: src/lib.rs

/root/repo/target/debug/deps/libcrellvm-72f79c506c4930b7.rmeta: src/lib.rs

src/lib.rs:
