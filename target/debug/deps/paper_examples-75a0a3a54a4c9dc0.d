/root/repo/target/debug/deps/paper_examples-75a0a3a54a4c9dc0.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-75a0a3a54a4c9dc0: tests/paper_examples.rs

tests/paper_examples.rs:
