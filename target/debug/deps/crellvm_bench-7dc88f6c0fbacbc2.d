/root/repo/target/debug/deps/crellvm_bench-7dc88f6c0fbacbc2.d: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/sloc.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/crellvm_bench-7dc88f6c0fbacbc2: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/sloc.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/experiment.rs:
crates/bench/src/sloc.rs:
crates/bench/src/tables.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
