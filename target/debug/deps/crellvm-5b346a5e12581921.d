/root/repo/target/debug/deps/crellvm-5b346a5e12581921.d: src/main.rs

/root/repo/target/debug/deps/crellvm-5b346a5e12581921: src/main.rs

src/main.rs:
