/root/repo/target/debug/deps/fig9_llvm501_prepatch-c996d83a6fe93aab.d: crates/bench/benches/fig9_llvm501_prepatch.rs

/root/repo/target/debug/deps/libfig9_llvm501_prepatch-c996d83a6fe93aab.rmeta: crates/bench/benches/fig9_llvm501_prepatch.rs

crates/bench/benches/fig9_llvm501_prepatch.rs:
