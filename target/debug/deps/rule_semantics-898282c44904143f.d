/root/repo/target/debug/deps/rule_semantics-898282c44904143f.d: tests/rule_semantics.rs

/root/repo/target/debug/deps/rule_semantics-898282c44904143f: tests/rule_semantics.rs

tests/rule_semantics.rs:
