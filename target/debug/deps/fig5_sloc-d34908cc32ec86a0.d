/root/repo/target/debug/deps/fig5_sloc-d34908cc32ec86a0.d: crates/bench/benches/fig5_sloc.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_sloc-d34908cc32ec86a0.rmeta: crates/bench/benches/fig5_sloc.rs Cargo.toml

crates/bench/benches/fig5_sloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
