/root/repo/target/debug/deps/ablation_proof_format-437f6db0aba46868.d: crates/bench/benches/ablation_proof_format.rs

/root/repo/target/debug/deps/libablation_proof_format-437f6db0aba46868.rmeta: crates/bench/benches/ablation_proof_format.rs

crates/bench/benches/ablation_proof_format.rs:
