/root/repo/target/debug/deps/crellvm_gen-4acf006cb199aada.d: crates/gen/src/lib.rs crates/gen/src/corpus.rs crates/gen/src/rand_prog.rs

/root/repo/target/debug/deps/libcrellvm_gen-4acf006cb199aada.rmeta: crates/gen/src/lib.rs crates/gen/src/corpus.rs crates/gen/src/rand_prog.rs

crates/gen/src/lib.rs:
crates/gen/src/corpus.rs:
crates/gen/src/rand_prog.rs:
