/root/repo/target/debug/deps/fig12_llvm501_postpatch-dddbe86ec04e23e6.d: crates/bench/benches/fig12_llvm501_postpatch.rs

/root/repo/target/debug/deps/libfig12_llvm501_postpatch-dddbe86ec04e23e6.rmeta: crates/bench/benches/fig12_llvm501_postpatch.rs

crates/bench/benches/fig12_llvm501_postpatch.rs:
