/root/repo/target/debug/deps/random_pipeline-f119946b28be6319.d: tests/random_pipeline.rs

/root/repo/target/debug/deps/random_pipeline-f119946b28be6319: tests/random_pipeline.rs

tests/random_pipeline.rs:
