/root/repo/target/debug/deps/fig8_times-c2dd55f6c19e867e.d: crates/bench/benches/fig8_times.rs

/root/repo/target/debug/deps/libfig8_times-c2dd55f6c19e867e.rmeta: crates/bench/benches/fig8_times.rs

crates/bench/benches/fig8_times.rs:
