/root/repo/target/debug/deps/crellvm_bench-6e3228ab8ac7b0c1.d: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/sloc.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libcrellvm_bench-6e3228ab8ac7b0c1.rmeta: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/sloc.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/experiment.rs:
crates/bench/src/sloc.rs:
crates/bench/src/tables.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
