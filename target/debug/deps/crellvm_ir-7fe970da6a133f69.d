/root/repo/target/debug/deps/crellvm_ir-7fe970da6a133f69.d: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/cfg.rs crates/ir/src/constant.rs crates/ir/src/dom.rs crates/ir/src/function.rs crates/ir/src/inst.rs crates/ir/src/module.rs crates/ir/src/parser.rs crates/ir/src/printer.rs crates/ir/src/types.rs crates/ir/src/value.rs crates/ir/src/verify.rs

/root/repo/target/debug/deps/libcrellvm_ir-7fe970da6a133f69.rmeta: crates/ir/src/lib.rs crates/ir/src/builder.rs crates/ir/src/cfg.rs crates/ir/src/constant.rs crates/ir/src/dom.rs crates/ir/src/function.rs crates/ir/src/inst.rs crates/ir/src/module.rs crates/ir/src/parser.rs crates/ir/src/printer.rs crates/ir/src/types.rs crates/ir/src/value.rs crates/ir/src/verify.rs

crates/ir/src/lib.rs:
crates/ir/src/builder.rs:
crates/ir/src/cfg.rs:
crates/ir/src/constant.rs:
crates/ir/src/dom.rs:
crates/ir/src/function.rs:
crates/ir/src/inst.rs:
crates/ir/src/module.rs:
crates/ir/src/parser.rs:
crates/ir/src/printer.rs:
crates/ir/src/types.rs:
crates/ir/src/value.rs:
crates/ir/src/verify.rs:
