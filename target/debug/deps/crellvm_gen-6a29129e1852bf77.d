/root/repo/target/debug/deps/crellvm_gen-6a29129e1852bf77.d: crates/gen/src/lib.rs crates/gen/src/corpus.rs crates/gen/src/rand_prog.rs

/root/repo/target/debug/deps/libcrellvm_gen-6a29129e1852bf77.rlib: crates/gen/src/lib.rs crates/gen/src/corpus.rs crates/gen/src/rand_prog.rs

/root/repo/target/debug/deps/libcrellvm_gen-6a29129e1852bf77.rmeta: crates/gen/src/lib.rs crates/gen/src/corpus.rs crates/gen/src/rand_prog.rs

crates/gen/src/lib.rs:
crates/gen/src/corpus.rs:
crates/gen/src/rand_prog.rs:
