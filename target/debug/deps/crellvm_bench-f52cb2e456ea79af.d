/root/repo/target/debug/deps/crellvm_bench-f52cb2e456ea79af.d: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/sloc.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libcrellvm_bench-f52cb2e456ea79af.rmeta: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/sloc.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/experiment.rs:
crates/bench/src/sloc.rs:
crates/bench/src/tables.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
