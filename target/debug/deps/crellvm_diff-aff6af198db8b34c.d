/root/repo/target/debug/deps/crellvm_diff-aff6af198db8b34c.d: crates/diff/src/lib.rs

/root/repo/target/debug/deps/libcrellvm_diff-aff6af198db8b34c.rlib: crates/diff/src/lib.rs

/root/repo/target/debug/deps/libcrellvm_diff-aff6af198db8b34c.rmeta: crates/diff/src/lib.rs

crates/diff/src/lib.rs:
