/root/repo/target/debug/deps/parallel_determinism-87bd990889ea5d86.d: tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-87bd990889ea5d86: tests/parallel_determinism.rs

tests/parallel_determinism.rs:
