/root/repo/target/debug/deps/ablation_automation-d6befc5d7cdf00de.d: crates/bench/benches/ablation_automation.rs Cargo.toml

/root/repo/target/debug/deps/libablation_automation-d6befc5d7cdf00de.rmeta: crates/bench/benches/ablation_automation.rs Cargo.toml

crates/bench/benches/ablation_automation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
