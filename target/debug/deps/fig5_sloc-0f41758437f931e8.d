/root/repo/target/debug/deps/fig5_sloc-0f41758437f931e8.d: crates/bench/benches/fig5_sloc.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_sloc-0f41758437f931e8.rmeta: crates/bench/benches/fig5_sloc.rs Cargo.toml

crates/bench/benches/fig5_sloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
