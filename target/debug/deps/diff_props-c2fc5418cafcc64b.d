/root/repo/target/debug/deps/diff_props-c2fc5418cafcc64b.d: tests/diff_props.rs Cargo.toml

/root/repo/target/debug/deps/libdiff_props-c2fc5418cafcc64b.rmeta: tests/diff_props.rs Cargo.toml

tests/diff_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
