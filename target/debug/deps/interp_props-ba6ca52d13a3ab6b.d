/root/repo/target/debug/deps/interp_props-ba6ca52d13a3ab6b.d: tests/interp_props.rs Cargo.toml

/root/repo/target/debug/deps/libinterp_props-ba6ca52d13a3ab6b.rmeta: tests/interp_props.rs Cargo.toml

tests/interp_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
