/root/repo/target/debug/deps/fig9_llvm501_prepatch-28baf08739cbac78.d: crates/bench/benches/fig9_llvm501_prepatch.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_llvm501_prepatch-28baf08739cbac78.rmeta: crates/bench/benches/fig9_llvm501_prepatch.rs Cargo.toml

crates/bench/benches/fig9_llvm501_prepatch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
