/root/repo/target/release/deps/validate-3061d61540210b8d.d: crates/bench/benches/validate.rs

/root/repo/target/release/deps/validate-3061d61540210b8d: crates/bench/benches/validate.rs

crates/bench/benches/validate.rs:
