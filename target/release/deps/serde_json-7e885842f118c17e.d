/root/repo/target/release/deps/serde_json-7e885842f118c17e.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-7e885842f118c17e.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-7e885842f118c17e.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
