/root/repo/target/release/deps/crellvm_interp-36f04fb303c10d89.d: crates/interp/src/lib.rs crates/interp/src/event.rs crates/interp/src/exec.rs crates/interp/src/mem.rs crates/interp/src/refine.rs crates/interp/src/value.rs

/root/repo/target/release/deps/libcrellvm_interp-36f04fb303c10d89.rlib: crates/interp/src/lib.rs crates/interp/src/event.rs crates/interp/src/exec.rs crates/interp/src/mem.rs crates/interp/src/refine.rs crates/interp/src/value.rs

/root/repo/target/release/deps/libcrellvm_interp-36f04fb303c10d89.rmeta: crates/interp/src/lib.rs crates/interp/src/event.rs crates/interp/src/exec.rs crates/interp/src/mem.rs crates/interp/src/refine.rs crates/interp/src/value.rs

crates/interp/src/lib.rs:
crates/interp/src/event.rs:
crates/interp/src/exec.rs:
crates/interp/src/mem.rs:
crates/interp/src/refine.rs:
crates/interp/src/value.rs:
