/root/repo/target/release/deps/criterion-b93018f013d3da88.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-b93018f013d3da88.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-b93018f013d3da88.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
