/root/repo/target/release/deps/proptest-9c73ad0845be4788.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-9c73ad0845be4788.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-9c73ad0845be4788.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
