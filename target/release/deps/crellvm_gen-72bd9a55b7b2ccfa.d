/root/repo/target/release/deps/crellvm_gen-72bd9a55b7b2ccfa.d: crates/gen/src/lib.rs crates/gen/src/corpus.rs crates/gen/src/rand_prog.rs

/root/repo/target/release/deps/libcrellvm_gen-72bd9a55b7b2ccfa.rlib: crates/gen/src/lib.rs crates/gen/src/corpus.rs crates/gen/src/rand_prog.rs

/root/repo/target/release/deps/libcrellvm_gen-72bd9a55b7b2ccfa.rmeta: crates/gen/src/lib.rs crates/gen/src/corpus.rs crates/gen/src/rand_prog.rs

crates/gen/src/lib.rs:
crates/gen/src/corpus.rs:
crates/gen/src/rand_prog.rs:
