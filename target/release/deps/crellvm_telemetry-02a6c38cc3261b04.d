/root/repo/target/release/deps/crellvm_telemetry-02a6c38cc3261b04.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs

/root/repo/target/release/deps/libcrellvm_telemetry-02a6c38cc3261b04.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs

/root/repo/target/release/deps/libcrellvm_telemetry-02a6c38cc3261b04.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/registry.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/trace.rs:
