/root/repo/target/release/deps/crellvm_passes-47f57713bbe15973.d: crates/passes/src/lib.rs crates/passes/src/config.rs crates/passes/src/gvn.rs crates/passes/src/instcombine.rs crates/passes/src/licm.rs crates/passes/src/mem2reg.rs crates/passes/src/parallel.rs crates/passes/src/pipeline.rs crates/passes/src/util.rs

/root/repo/target/release/deps/libcrellvm_passes-47f57713bbe15973.rlib: crates/passes/src/lib.rs crates/passes/src/config.rs crates/passes/src/gvn.rs crates/passes/src/instcombine.rs crates/passes/src/licm.rs crates/passes/src/mem2reg.rs crates/passes/src/parallel.rs crates/passes/src/pipeline.rs crates/passes/src/util.rs

/root/repo/target/release/deps/libcrellvm_passes-47f57713bbe15973.rmeta: crates/passes/src/lib.rs crates/passes/src/config.rs crates/passes/src/gvn.rs crates/passes/src/instcombine.rs crates/passes/src/licm.rs crates/passes/src/mem2reg.rs crates/passes/src/parallel.rs crates/passes/src/pipeline.rs crates/passes/src/util.rs

crates/passes/src/lib.rs:
crates/passes/src/config.rs:
crates/passes/src/gvn.rs:
crates/passes/src/instcombine.rs:
crates/passes/src/licm.rs:
crates/passes/src/mem2reg.rs:
crates/passes/src/parallel.rs:
crates/passes/src/pipeline.rs:
crates/passes/src/util.rs:
