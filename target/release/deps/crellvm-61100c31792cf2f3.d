/root/repo/target/release/deps/crellvm-61100c31792cf2f3.d: src/lib.rs

/root/repo/target/release/deps/libcrellvm-61100c31792cf2f3.rlib: src/lib.rs

/root/repo/target/release/deps/libcrellvm-61100c31792cf2f3.rmeta: src/lib.rs

src/lib.rs:
