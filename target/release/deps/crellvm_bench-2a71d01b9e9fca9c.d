/root/repo/target/release/deps/crellvm_bench-2a71d01b9e9fca9c.d: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/sloc.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libcrellvm_bench-2a71d01b9e9fca9c.rlib: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/sloc.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libcrellvm_bench-2a71d01b9e9fca9c.rmeta: crates/bench/src/lib.rs crates/bench/src/experiment.rs crates/bench/src/sloc.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/experiment.rs:
crates/bench/src/sloc.rs:
crates/bench/src/tables.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
