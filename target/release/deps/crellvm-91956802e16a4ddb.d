/root/repo/target/release/deps/crellvm-91956802e16a4ddb.d: src/main.rs

/root/repo/target/release/deps/crellvm-91956802e16a4ddb: src/main.rs

src/main.rs:
