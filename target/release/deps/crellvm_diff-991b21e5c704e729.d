/root/repo/target/release/deps/crellvm_diff-991b21e5c704e729.d: crates/diff/src/lib.rs

/root/repo/target/release/deps/libcrellvm_diff-991b21e5c704e729.rlib: crates/diff/src/lib.rs

/root/repo/target/release/deps/libcrellvm_diff-991b21e5c704e729.rmeta: crates/diff/src/lib.rs

crates/diff/src/lib.rs:
