//! # crellvm-diff
//!
//! Alpha-equivalence checking of IR modules — the `llvm-diff` analogue.
//!
//! The Crellvm framework runs the *original* optimizer and the
//! *proof-generating* optimizer separately, then confirms with `llvm-diff`
//! that the two produced the same program up to register naming (paper
//! §1.1: the proof-generating compiler gives explicit names to unnamed
//! registers, so plain syntactic equality would be too strict).
//!
//! [`diff_modules`] builds a register bijection incrementally while
//! walking both modules in lockstep and reports the first structural
//! difference.
//!
//! # Example
//!
//! ```
//! use crellvm_ir::parse_module;
//! use crellvm_diff::diff_modules;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let a = parse_module("define @f(i32 %x) -> i32 {\nentry:\n  %y = add i32 %x, 1\n  ret i32 %y\n}\n")?;
//! let b = parse_module("define @f(i32 %in) -> i32 {\nentry:\n  %out = add i32 %in, 1\n  ret i32 %out\n}\n")?;
//! assert!(diff_modules(&a, &b).is_ok());
//! # Ok(())
//! # }
//! ```

use crellvm_ir::{Function, Inst, Module, RegId, Term, Value};
use std::collections::HashMap;
use std::fmt;

/// A structural difference between two modules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffError {
    /// Where the difference was found.
    pub at: String,
    /// What differs.
    pub detail: String,
}

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "modules differ at {}: {}", self.at, self.detail)
    }
}

impl std::error::Error for DiffError {}

fn err(at: impl Into<String>, detail: impl Into<String>) -> DiffError {
    DiffError {
        at: at.into(),
        detail: detail.into(),
    }
}

/// The register bijection built during the walk.
#[derive(Default)]
struct RegMap {
    fwd: HashMap<RegId, RegId>,
    bwd: HashMap<RegId, RegId>,
}

impl RegMap {
    fn bind(&mut self, a: RegId, b: RegId, at: &str) -> Result<(), DiffError> {
        match (self.fwd.get(&a), self.bwd.get(&b)) {
            (None, None) => {
                self.fwd.insert(a, b);
                self.bwd.insert(b, a);
                Ok(())
            }
            (Some(&b2), _) if b2 == b => Ok(()),
            _ => Err(err(at, format!("register binding conflict: {a} vs {b}"))),
        }
    }

    fn check(&mut self, a: &Value, b: &Value, at: &str) -> Result<(), DiffError> {
        match (a, b) {
            (Value::Reg(ra), Value::Reg(rb)) => {
                // Uses must already be bound (defs dominate uses), but a
                // first encounter also binds (e.g. parameter-order quirks).
                self.bind(*ra, *rb, at)
            }
            (Value::Const(ca), Value::Const(cb)) if ca == cb => Ok(()),
            _ => Err(err(at, format!("operands differ: {a:?} vs {b:?}"))),
        }
    }
}

fn diff_inst(m: &mut RegMap, a: &Inst, b: &Inst, at: &str) -> Result<(), DiffError> {
    use Inst::*;
    match (a, b) {
        (
            Bin {
                op: o1,
                ty: t1,
                lhs: l1,
                rhs: r1,
            },
            Bin {
                op: o2,
                ty: t2,
                lhs: l2,
                rhs: r2,
            },
        ) => {
            if o1 != o2 || t1 != t2 {
                return Err(err(at, "binary operator or type differs"));
            }
            m.check(l1, l2, at)?;
            m.check(r1, r2, at)
        }
        (
            Icmp {
                pred: p1,
                ty: t1,
                lhs: l1,
                rhs: r1,
            },
            Icmp {
                pred: p2,
                ty: t2,
                lhs: l2,
                rhs: r2,
            },
        ) => {
            if p1 != p2 || t1 != t2 {
                return Err(err(at, "icmp predicate or type differs"));
            }
            m.check(l1, l2, at)?;
            m.check(r1, r2, at)
        }
        (
            Select {
                ty: t1,
                cond: c1,
                on_true: x1,
                on_false: y1,
            },
            Select {
                ty: t2,
                cond: c2,
                on_true: x2,
                on_false: y2,
            },
        ) => {
            if t1 != t2 {
                return Err(err(at, "select type differs"));
            }
            m.check(c1, c2, at)?;
            m.check(x1, x2, at)?;
            m.check(y1, y2, at)
        }
        (
            Cast {
                op: o1,
                from: f1,
                val: v1,
                to: to1,
            },
            Cast {
                op: o2,
                from: f2,
                val: v2,
                to: to2,
            },
        ) => {
            if o1 != o2 || f1 != f2 || to1 != to2 {
                return Err(err(at, "cast differs"));
            }
            m.check(v1, v2, at)
        }
        (Alloca { ty: t1, count: c1 }, Alloca { ty: t2, count: c2 }) => {
            if t1 != t2 || c1 != c2 {
                return Err(err(at, "alloca differs"));
            }
            Ok(())
        }
        (Load { ty: t1, ptr: p1 }, Load { ty: t2, ptr: p2 }) => {
            if t1 != t2 {
                return Err(err(at, "load type differs"));
            }
            m.check(p1, p2, at)
        }
        (
            Store {
                ty: t1,
                val: v1,
                ptr: p1,
            },
            Store {
                ty: t2,
                val: v2,
                ptr: p2,
            },
        ) => {
            if t1 != t2 {
                return Err(err(at, "store type differs"));
            }
            m.check(v1, v2, at)?;
            m.check(p1, p2, at)
        }
        (
            Gep {
                inbounds: i1,
                ptr: p1,
                offset: o1,
            },
            Gep {
                inbounds: i2,
                ptr: p2,
                offset: o2,
            },
        ) => {
            if i1 != i2 {
                return Err(err(at, "gep inbounds flag differs"));
            }
            m.check(p1, p2, at)?;
            m.check(o1, o2, at)
        }
        (
            Call {
                ret: r1,
                callee: c1,
                args: a1,
            },
            Call {
                ret: r2,
                callee: c2,
                args: a2,
            },
        ) => {
            if r1 != r2 || c1 != c2 || a1.len() != a2.len() {
                return Err(err(at, "call signature differs"));
            }
            for ((t1, v1), (t2, v2)) in a1.iter().zip(a2) {
                if t1 != t2 {
                    return Err(err(at, "call argument type differs"));
                }
                m.check(v1, v2, at)?;
            }
            Ok(())
        }
        (Unsupported { feature: f1 }, Unsupported { feature: f2 }) => {
            if f1 == f2 {
                Ok(())
            } else {
                Err(err(at, "unsupported features differ"))
            }
        }
        _ => Err(err(at, "instruction kinds differ")),
    }
}

fn diff_term(m: &mut RegMap, a: &Term, b: &Term, at: &str) -> Result<(), DiffError> {
    match (a, b) {
        (Term::Ret(None), Term::Ret(None)) => Ok(()),
        (Term::Ret(Some((t1, v1))), Term::Ret(Some((t2, v2)))) => {
            if t1 != t2 {
                return Err(err(at, "return type differs"));
            }
            m.check(v1, v2, at)
        }
        (Term::Br(x), Term::Br(y)) => {
            if x == y {
                Ok(())
            } else {
                Err(err(at, "branch target differs"))
            }
        }
        (
            Term::CondBr {
                cond: c1,
                if_true: t1,
                if_false: f1,
            },
            Term::CondBr {
                cond: c2,
                if_true: t2,
                if_false: f2,
            },
        ) => {
            if t1 != t2 || f1 != f2 {
                return Err(err(at, "branch targets differ"));
            }
            m.check(c1, c2, at)
        }
        (
            Term::Switch {
                ty: t1,
                val: v1,
                default: d1,
                cases: c1,
            },
            Term::Switch {
                ty: t2,
                val: v2,
                default: d2,
                cases: c2,
            },
        ) => {
            if t1 != t2 || d1 != d2 || c1 != c2 {
                return Err(err(at, "switch structure differs"));
            }
            m.check(v1, v2, at)
        }
        (Term::Unreachable, Term::Unreachable) => Ok(()),
        _ => Err(err(at, "terminator kinds differ")),
    }
}

/// Check alpha-equivalence of two functions.
///
/// # Errors
///
/// Returns the first structural [`DiffError`].
pub fn diff_functions(a: &Function, b: &Function) -> Result<(), DiffError> {
    let name = &a.name;
    if a.name != b.name {
        return Err(err(
            "function",
            format!("names differ: {} vs {}", a.name, b.name),
        ));
    }
    if a.ret != b.ret || a.params.len() != b.params.len() {
        return Err(err(format!("@{name}"), "signatures differ"));
    }
    let mut m = RegMap::default();
    for ((t1, p1), (t2, p2)) in a.params.iter().zip(&b.params) {
        if t1 != t2 {
            return Err(err(format!("@{name}"), "parameter types differ"));
        }
        m.bind(*p1, *p2, "parameters")?;
    }
    if a.blocks.len() != b.blocks.len() {
        return Err(err(format!("@{name}"), "block counts differ"));
    }
    for (i, (ba, bb)) in a.blocks.iter().zip(&b.blocks).enumerate() {
        // Block labels are positional (`BlockId`); like `llvm-diff`, names
        // carry no meaning and are not compared.
        let at = format!("@{name}, block {} (#{i})", ba.name);
        if ba.phis.len() != bb.phis.len() {
            return Err(err(&at, "phi counts differ"));
        }
        for ((r1, p1), (r2, p2)) in ba.phis.iter().zip(&bb.phis) {
            m.bind(*r1, *r2, &at)?;
            if p1.ty != p2.ty || p1.incoming.len() != p2.incoming.len() {
                return Err(err(&at, "phi shapes differ"));
            }
            for (pred, v1) in &p1.incoming {
                let v2 = p2.incoming.iter().find(|(q, _)| q == pred).map(|(_, v)| v);
                match (v1, v2) {
                    (Some(v1), Some(Some(v2))) => m.check(v1, v2, &at)?,
                    (None, Some(None)) => {}
                    _ => return Err(err(&at, "phi incoming values differ")),
                }
            }
        }
        if ba.stmts.len() != bb.stmts.len() {
            return Err(err(
                &at,
                format!(
                    "statement counts differ: {} vs {}",
                    ba.stmts.len(),
                    bb.stmts.len()
                ),
            ));
        }
        for (j, (s1, s2)) in ba.stmts.iter().zip(&bb.stmts).enumerate() {
            let at = format!("{at}, statement {j}");
            match (s1.result, s2.result) {
                (Some(r1), Some(r2)) => m.bind(r1, r2, &at)?,
                (None, None) => {}
                _ => return Err(err(&at, "one side has a result, the other does not")),
            }
            diff_inst(&mut m, &s1.inst, &s2.inst, &at)?;
        }
        diff_term(&mut m, &ba.term, &bb.term, &at)?;
    }
    Ok(())
}

/// Check alpha-equivalence of two modules (globals and declarations must
/// match exactly; functions up to register and block-label renaming).
///
/// # Errors
///
/// Returns the first structural [`DiffError`].
pub fn diff_modules(a: &Module, b: &Module) -> Result<(), DiffError> {
    if a.globals != b.globals {
        return Err(err("globals", "global variables differ"));
    }
    if a.declares != b.declares {
        return Err(err("declares", "external declarations differ"));
    }
    if a.functions.len() != b.functions.len() {
        return Err(err("module", "function counts differ"));
    }
    for fa in &a.functions {
        let fb = b.function(&fa.name).ok_or_else(|| {
            err(
                "module",
                format!("function @{} missing on one side", fa.name),
            )
        })?;
        diff_functions(fa, fb)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crellvm_ir::parse_module;

    const A: &str = r#"
        declare @print(i32)
        define @f(i32 %x, i1 %c) -> i32 {
        entry:
          %y = add i32 %x, 1
          br i1 %c, label t, label e
        t:
          %z = mul i32 %y, 2
          br label j
        e:
          br label j
        j:
          %p = phi i32 [ %z, t ], [ %y, e ]
          call void @print(i32 %p)
          ret i32 %p
        }
    "#;

    #[test]
    fn identical_modules_are_equal() {
        let a = parse_module(A).unwrap();
        assert_eq!(diff_modules(&a, &a), Ok(()));
    }

    #[test]
    fn renamed_registers_are_equal() {
        let a = parse_module(A).unwrap();
        let renamed = A
            .replace("%y", "%val0")
            .replace("%z", "%val1")
            .replace("%p", "%val2");
        let b = parse_module(&renamed).unwrap();
        assert_eq!(diff_modules(&a, &b), Ok(()));
    }

    #[test]
    fn different_constant_is_detected() {
        let a = parse_module(A).unwrap();
        let b = parse_module(&A.replace("add i32 %x, 1", "add i32 %x, 2")).unwrap();
        let e = diff_modules(&a, &b).unwrap_err();
        assert!(e.detail.contains("operands differ"));
    }

    #[test]
    fn inconsistent_renaming_is_detected() {
        // Using %y where %x was expected breaks the bijection.
        let a = parse_module(
            "define @f(i32 %x) -> i32 {\nentry:\n  %y = add i32 %x, 1\n  %z = add i32 %y, %y\n  ret i32 %z\n}\n",
        )
        .unwrap();
        let b = parse_module(
            "define @f(i32 %x) -> i32 {\nentry:\n  %y = add i32 %x, 1\n  %z = add i32 %y, %x\n  ret i32 %z\n}\n",
        )
        .unwrap();
        assert!(diff_modules(&a, &b).is_err());
    }

    #[test]
    fn structural_changes_detected() {
        let a = parse_module(A).unwrap();
        // Missing statement.
        let b = parse_module(&A.replace("          %z = mul i32 %y, 2\n", "")).unwrap();
        assert!(diff_modules(&a, &b).is_err());
        // Different gep flag elsewhere: build tiny modules.
        let g1 = parse_module("define @g(ptr %p) -> ptr {\nentry:\n  %q = gep inbounds ptr %p, i64 1\n  ret ptr %q\n}\n").unwrap();
        let g2 = parse_module(
            "define @g(ptr %p) -> ptr {\nentry:\n  %q = gep ptr %p, i64 1\n  ret ptr %q\n}\n",
        )
        .unwrap();
        let e = diff_modules(&g1, &g2).unwrap_err();
        assert!(e.detail.contains("inbounds"));
    }

    #[test]
    fn missing_function_detected() {
        let a = parse_module(A).unwrap();
        let mut b = a.clone();
        b.functions[0].name = "other".into();
        assert!(diff_modules(&a, &b).is_err());
    }
}
