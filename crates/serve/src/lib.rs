//! # crellvm-serve
//!
//! Validation-as-a-service: a long-running daemon that accepts
//! translation-unit validation requests over a loopback HTTP/1.1 socket
//! and runs them on the work-stealing validation engine, behind a bounded
//! admission queue with backpressure and in front of the shared
//! content-addressed verdict cache (tenant-namespaced keys).
//!
//! The headline is the **observability plane**, which lives entirely
//! outside the validated core:
//!
//! * `GET /metrics` — live OpenMetrics: queue depth / inflight / pool
//!   gauges, per-tenant request and verdict counters, cumulative
//!   validation-engine families, and latency histograms.
//! * `GET /healthz`, `GET /readyz` — liveness vs. admission readiness
//!   (readiness drops while draining or saturated).
//! * Per-request **trace ids** minted at admission, returned in
//!   `X-Crellvm-Trace-Id`, written to the structured JSON-lines access
//!   log, and stamped onto the root span of the request's causal tree so
//!   `crellvm report --format chrome-trace` can reconstruct any request
//!   end to end from the span log.
//! * [`top`] — the `crellvm top` fleet view, fed by nothing but a
//!   `/metrics` scrape.
//! * [`loadgen`] — the `serve --bench` corpus replayer, feeding
//!   `BENCH_serve.json` and the regression-sentinel history.
//!
//! The serving layer never re-implements validation: requests run
//! through the exact engine `crellvm opt` uses and verdict lines render
//! through the same formatter, so a `text/plain` response is
//! byte-identical to offline output at any parallelism, warm or cold
//! cache.

pub mod http;
pub mod loadgen;
pub mod server;
pub mod top;

pub use loadgen::{LoadConfig, LoadReport};
pub use server::{start, ServeConfig, ServerHandle, DEFAULT_PASSES};
