//! The serving-plane load generator (`crellvm serve --bench`).
//!
//! Replays the synthetic Fig 7 corpus against a daemon at a target QPS
//! and measures what an operator would: end-to-end latency percentiles
//! (exact, from the recorded per-request samples — not bucket
//! interpolation), sustained throughput, cache behaviour, and byte
//! traffic. The report lands in `BENCH_serve.json` and one flattened
//! record feeds `BENCH_history.jsonl`, where the MAD-banded regression
//! sentinel watches `serve.rps` (higher is better) and the latency
//! percentiles (lower is better) across commits.

use crellvm_bench::history::{self, HistoryRecord};
use crellvm_gen::corpus;
use crellvm_ir::printer::print_module;
use serde::Serialize;
use std::path::Path;
use std::time::{Duration, Instant};

/// Load run configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Total requests to send.
    pub requests: usize,
    /// Target request rate; `0.0` means as fast as the daemon answers.
    pub qps: f64,
    /// Corpus scale (functions per KLoC of the Fig 7 originals).
    pub scale: f64,
    /// Corpus seed.
    pub seed: u64,
    /// Tenant names to round-robin across (empty = single default
    /// tenant), exercising the per-tenant cache namespaces.
    pub tenants: Vec<String>,
    /// Cap on distinct corpus modules to replay (0 = all). A cap below
    /// `requests` makes the replay revisit modules, exercising the warm
    /// cache path.
    pub modules: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            requests: 50,
            qps: 0.0,
            scale: 0.002,
            seed: 1,
            tenants: Vec::new(),
            modules: 0,
        }
    }
}

/// Latency percentile block (milliseconds).
#[derive(Debug, Clone, Serialize)]
pub struct LatencyMs {
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    pub max: f64,
    pub mean: f64,
}

/// The load run's measured outcome (serialized to `BENCH_serve.json`).
#[derive(Debug, Clone, Serialize)]
pub struct LoadReport {
    pub requests: usize,
    pub ok: usize,
    pub rejected: usize,
    pub errors: usize,
    pub target_qps: f64,
    pub wall_ms: f64,
    /// Sustained throughput actually achieved.
    pub rps: f64,
    pub latency_ms: LatencyMs,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_hit_rate: f64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub corpus_modules: usize,
    pub tenants: usize,
}

/// Exact percentile from recorded samples (nearest-rank).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Replay the corpus against `addr` and measure.
pub fn run(addr: &str, cfg: &LoadConfig) -> Result<LoadReport, String> {
    // A compact corpus slice: the module texts are generated once and
    // reused round-robin, so the load is deterministic given the seed.
    let mut bodies: Vec<String> = corpus(cfg.scale, cfg.seed)
        .iter()
        .flat_map(|(_, modules)| modules.iter().map(print_module))
        .collect();
    if cfg.modules > 0 {
        bodies.truncate(cfg.modules);
    }
    if bodies.is_empty() {
        return Err("empty corpus".to_string());
    }
    let interval = if cfg.qps > 0.0 {
        Some(Duration::from_secs_f64(1.0 / cfg.qps))
    } else {
        None
    };
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(cfg.requests);
    let (mut ok, mut rejected, mut errors) = (0usize, 0usize, 0usize);
    let (mut cache_hits, mut cache_misses) = (0u64, 0u64);
    let (mut bytes_in, mut bytes_out) = (0u64, 0u64);
    let started = Instant::now();
    for i in 0..cfg.requests {
        if let Some(interval) = interval {
            // Open-loop pacing against the schedule, not the previous
            // response: lag is not silently absorbed into the rate.
            let due = started + interval.mul_f64(i as f64);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        let body = &bodies[i % bodies.len()];
        let tenant = if cfg.tenants.is_empty() {
            String::new()
        } else {
            cfg.tenants[i % cfg.tenants.len()].clone()
        };
        let mut headers: Vec<(&str, &str)> = vec![("Content-Type", "text/plain")];
        if !tenant.is_empty() {
            headers.push(("X-Crellvm-Tenant", &tenant));
        }
        let t0 = Instant::now();
        match crate::http::call(addr, "POST", "/v1/validate", &headers, body.as_bytes()) {
            Ok((200, _, resp)) => {
                latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                ok += 1;
                bytes_in += body.len() as u64;
                bytes_out += resp.len() as u64;
                if let Ok(doc) = crellvm_telemetry::json::parse(&String::from_utf8_lossy(&resp)) {
                    if let Some(cache) = doc.get("cache") {
                        cache_hits += cache.get("hits").and_then(|v| v.as_u64()).unwrap_or(0);
                        cache_misses += cache.get("misses").and_then(|v| v.as_u64()).unwrap_or(0);
                    }
                }
            }
            Ok((429, _, _)) => rejected += 1,
            Ok(_) | Err(_) => errors += 1,
        }
    }
    let wall = started.elapsed();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = if latencies_ms.is_empty() {
        0.0
    } else {
        latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64
    };
    Ok(LoadReport {
        requests: cfg.requests,
        ok,
        rejected,
        errors,
        target_qps: cfg.qps,
        wall_ms: wall.as_secs_f64() * 1e3,
        rps: ok as f64 / wall.as_secs_f64().max(1e-9),
        latency_ms: LatencyMs {
            p50: percentile(&latencies_ms, 0.50),
            p95: percentile(&latencies_ms, 0.95),
            p99: percentile(&latencies_ms, 0.99),
            max: latencies_ms.last().copied().unwrap_or(0.0),
            mean,
        },
        cache_hits,
        cache_misses,
        cache_hit_rate: cache_hits as f64 / (cache_hits + cache_misses).max(1) as f64,
        bytes_in,
        bytes_out,
        corpus_modules: bodies.len(),
        tenants: cfg.tenants.len().max(1),
    })
}

/// Write the report pretty-printed and atomically to `path`.
pub fn write_report(path: &Path, report: &LoadReport) -> Result<(), String> {
    let compact = serde_json::to_string(report).map_err(|e| e.to_string())?;
    history::write_atomic(path, &history::pretty(&compact))
        .map_err(|e| format!("{}: {e}", path.display()))
}

/// Flatten a load report into the sentinel's history record. Provenance
/// comes from `CRELLVM_GIT_SHA` / `CRELLVM_BENCH_TIMESTAMP` like the
/// validate bench, keeping the run itself clock-free for provenance.
pub fn history_record(report: &LoadReport) -> HistoryRecord {
    let sha = std::env::var("CRELLVM_GIT_SHA").unwrap_or_else(|_| "unknown".to_string());
    let ts = std::env::var("CRELLVM_BENCH_TIMESTAMP").unwrap_or_else(|_| "unknown".to_string());
    let mut rec = HistoryRecord::new(
        &sha,
        &ts,
        crellvm_passes::default_jobs(),
        crellvm_passes::ProofFormat::default().name(),
    );
    // Direction is inferred from the name: `rps`/`hit_rate` higher is
    // better, the `_ms` latencies lower is better.
    rec.metric("serve.rps", report.rps);
    rec.metric("serve.p50_ms", report.latency_ms.p50);
    rec.metric("serve.p95_ms", report.latency_ms.p95);
    rec.metric("serve.p99_ms", report.latency_ms.p99);
    rec.metric("serve.cache_hit_rate", report.cache_hit_rate);
    rec.metric("serve.wall_ms", report.wall_ms);
    rec
}

/// Append the report's history record to `path` (the shared
/// `BENCH_history.jsonl`).
pub fn append_history(path: &Path, report: &LoadReport) -> Result<HistoryRecord, String> {
    let rec = history_record(report);
    history::append(path, &rec).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{start, ServeConfig};

    #[test]
    fn percentiles_are_nearest_rank() {
        let s: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile(&s, 0.50), 50.0);
        assert_eq!(percentile(&s, 0.95), 95.0);
        assert_eq!(percentile(&s, 0.99), 99.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn replays_a_tiny_corpus_and_reports() {
        let handle = start(ServeConfig::default()).unwrap();
        let addr = handle.addr().to_string();
        let cfg = LoadConfig {
            requests: 6,
            scale: 0.0005,
            modules: 3,
            ..LoadConfig::default()
        };
        let report = run(&addr, &cfg).unwrap();
        handle.shutdown();
        assert_eq!(report.ok, 6, "errors: {}", report.errors);
        assert_eq!(report.errors, 0);
        assert!(report.rps > 0.0);
        assert!(report.latency_ms.p50 > 0.0);
        assert!(report.latency_ms.p99 >= report.latency_ms.p50);
        // The corpus repeats modules, so a warm cache must show hits.
        assert!(report.cache_hits > 0);
        let rec = history_record(&report);
        assert!(rec.metrics.contains_key("serve.rps"));
        assert!(rec.metrics.contains_key("serve.p99_ms"));
        // Sentinel direction: throughput up is good, latency up is bad.
        use crellvm_bench::history::{direction_of, Direction};
        assert_eq!(direction_of("serve.rps"), Direction::HigherIsBetter);
        assert_eq!(direction_of("serve.p99_ms"), Direction::LowerIsBetter);
    }
}
