//! A deliberately small HTTP/1.1 implementation over `std::net`.
//!
//! The daemon serves exactly one well-known client population — loopback
//! tools (`crellvm top`, the load generator, CI smoke jobs, `curl`) — so
//! the surface is the minimum that population needs: one request per
//! connection (`Connection: close`), `Content-Length` framing (no chunked
//! transfer), a case-insensitive header map, and nothing else. Keeping
//! the parser this small keeps it auditable: the serving plane sits
//! *outside* the validated core, and the less code between the socket and
//! the checker, the less there is to trust.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers) in bytes.
const MAX_HEAD: usize = 64 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Decoded query parameters (`?a=1&b=2`), last key wins.
    pub query: BTreeMap<String, String>,
    /// Headers with lower-cased names.
    pub headers: BTreeMap<String, String>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// A header value by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(|s| s.as_str())
    }
}

/// Read head bytes until the `\r\n\r\n` separator (inclusive), returning
/// `(head, leftover-body-bytes)`.
fn read_head(stream: &mut TcpStream) -> io::Result<(Vec<u8>, Vec<u8>)> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(pos) = find_head_end(&buf) {
            let rest = buf.split_off(pos + 4);
            return Ok((buf, rest));
        }
        if buf.len() > MAX_HEAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-head",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Minimal percent-decoding for query strings (`%41` and `+`).
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(q: &str) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for pair in q.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        out.insert(percent_decode(k), percent_decode(v));
    }
    out
}

/// Read and parse one request from the stream. `max_body` bounds the
/// declared `Content-Length`; a larger body is rejected before any body
/// byte is read so a misbehaving client cannot balloon the daemon.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> io::Result<Request> {
    let (head, mut body) = read_head(stream)?;
    let head = String::from_utf8_lossy(&head).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing method"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing target"))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), BTreeMap::new()),
    };
    let mut headers = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    let content_length: usize = headers
        .get("content-length")
        .map(|v| {
            v.parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("body of {content_length} bytes exceeds the {max_body}-byte limit"),
        ));
    }
    if body.len() > content_length {
        body.truncate(content_length);
    }
    while body.len() < content_length {
        let mut chunk = vec![0u8; (content_length - body.len()).min(64 * 1024)];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// One response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

impl Response {
    pub fn new(status: u16, content_type: &str, body: Vec<u8>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".to_string(), content_type.to_string())],
            body,
        }
    }

    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response::new(
            status,
            "text/plain; charset=utf-8",
            body.into().into_bytes(),
        )
    }

    pub fn json(status: u16, body: &crellvm_telemetry::json::Value) -> Response {
        Response::new(status, "application/json", body.to_json().into_bytes())
    }

    #[must_use]
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serialize onto the wire (`Connection: close` framing).
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, reason(self.status));
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str("Connection: close\r\n\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// A blocking single-shot HTTP client call (the `top` view, the load
/// generator, and the tests all speak through this).
///
/// Returns `(status, headers, body)`; headers come back lower-cased.
pub fn call(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<(u16, BTreeMap<String, String>, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let head_end = find_head_end(&raw)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "response without head"))?;
    let resp_body = raw[head_end + 4..].to_vec();
    let head_text = String::from_utf8_lossy(&raw[..head_end]).into_owned();
    let mut lines = head_text.split("\r\n");
    let status_line = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut resp_headers = BTreeMap::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            resp_headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    Ok((status, resp_headers, resp_body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_query_strings() {
        let q = parse_query("a=1&b=hello%20world&c&d=x+y");
        assert_eq!(q.get("a").map(String::as_str), Some("1"));
        assert_eq!(q.get("b").map(String::as_str), Some("hello world"));
        assert_eq!(q.get("c").map(String::as_str), Some(""));
        assert_eq!(q.get("d").map(String::as_str), Some("x y"));
    }

    #[test]
    fn roundtrips_over_a_real_socket() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream, 1024).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/v1/validate");
            assert_eq!(req.query.get("x").map(String::as_str), Some("1"));
            assert_eq!(req.header("X-Crellvm-Tenant"), Some("acme"));
            assert_eq!(req.body, b"hello body");
            Response::text(200, "fine")
                .header("X-Test", "yes")
                .write_to(&mut stream)
                .unwrap();
        });
        let (status, headers, body) = call(
            &addr,
            "POST",
            "/v1/validate?x=1",
            &[("X-Crellvm-Tenant", "acme")],
            b"hello body",
        )
        .unwrap();
        assert_eq!(status, 200);
        assert_eq!(headers.get("x-test").map(String::as_str), Some("yes"));
        assert_eq!(body, b"fine");
        server.join().unwrap();
    }

    #[test]
    fn oversized_body_is_rejected_before_reading_it() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_request(&mut stream, 16).unwrap_err()
        });
        let _ = call(&addr, "POST", "/", &[], &[0u8; 64]);
        let err = server.join().unwrap();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
