//! The validation daemon: translation-unit requests in, verdicts out,
//! with a live observability plane on the side.
//!
//! # Request path
//!
//! ```text
//! accept → parse → admit (bounded queue, 429 on overflow) → executor
//!        → run_validated_pass_parallel (work-stealing pool, shared
//!          content-addressed cache, tenant-namespaced keys)
//!        → respond (text = offline `crellvm opt` bytes, or JSON)
//! ```
//!
//! Every admitted request is minted a **trace id** (`t-<seq>`). The id
//! rides the response header (`X-Crellvm-Trace-Id`), the access-log line,
//! and — when span logging is on — the root span of the request's causal
//! tree, from which the Chrome-trace exporter stamps it onto every event.
//! One id therefore joins the HTTP edge to the innermost proof command.
//!
//! # Determinism contract
//!
//! The daemon runs the *same* engine as `crellvm opt` — same default
//! passes, same `PassConfig`/`CheckerConfig`, same deterministic
//! scatter-by-function-index reassembly — and renders verdict lines
//! through the same [`format_step_line`] formatter. A `text/plain`
//! response is therefore byte-identical to offline `opt` stdout at any
//! `--jobs`, warm or cold cache; CI's serve-smoke job diffs the two.
//!
//! # Observability is out-of-band
//!
//! The serve plane records into its own [`Registry`] (`stats`): live
//! gauges (queue depth, inflight, pool width), HTTP counters, per-tenant
//! verdict counters, and latency histograms. Validation runs against
//! per-request registries whose snapshots are merged in afterwards, so
//! the validated core never observes the serving plane — the same TCB
//! boundary the paper draws between compiler and checker.

use crate::http::{read_request, Request, Response};
use crellvm_core::{CheckerConfig, ValidationCache};
use crellvm_ir::{parse_module, verify_module, Module};
use crellvm_passes::{
    format_step_line, run_validated_pass_parallel, ParallelOptions, PassConfig, PipelineReport,
    ProofFormat, StepOutcome,
};
use crellvm_telemetry::json::Value;
use crellvm_telemetry::{export::openmetrics, Registry, Telemetry};
use std::collections::{BTreeMap, VecDeque};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The pass list the daemon (and `crellvm opt`) runs by default.
pub const DEFAULT_PASSES: [&str; 4] = ["mem2reg", "instcombine", "gvn", "licm"];

/// Passes the engine knows how to run.
const KNOWN_PASSES: [&str; 4] = ["mem2reg", "gvn", "licm", "instcombine"];

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; port 0 picks a free port (the chosen address is
    /// reported by [`ServerHandle::addr`] and on stdout).
    pub addr: String,
    /// Work-stealing pool width per request (0 = available parallelism).
    pub jobs: usize,
    /// Validation executors — how many admitted requests run
    /// concurrently. Each executor drives its own `jobs`-wide pool.
    pub executors: usize,
    /// Bounded admission queue capacity. A request arriving while the
    /// queue holds this many gets `429` + `Retry-After` instead of a
    /// slot; capacity 0 therefore rejects every validation request.
    pub queue_capacity: usize,
    /// Persistent cache directory (in-memory cache when `None`).
    pub cache_dir: Option<String>,
    /// Read warm disk-cache entries through a private file mapping
    /// (`--mmap`): the v2 decoder borrows straight out of the mapped
    /// pages, skipping the heap copy. Falls back to a heap read whenever
    /// the platform or kernel refuses, so responses are byte-identical
    /// either way.
    pub mmap: bool,
    /// Structured JSON-lines access log path.
    pub access_log: Option<String>,
    /// Span log path: one request-scoped `SpanTree` JSON line per
    /// validation, root span stamped with the request's trace id.
    pub span_log: Option<String>,
    /// Largest accepted request body in bytes.
    pub max_body: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs: 0,
            executors: 1,
            queue_capacity: 64,
            cache_dir: None,
            mmap: false,
            access_log: None,
            span_log: None,
            max_body: 8 * 1024 * 1024,
        }
    }
}

/// One admitted validation request.
struct ValidateRequest {
    module: Module,
    module_name: String,
    passes: Vec<String>,
    tenant: String,
    trace_id: String,
}

/// What an executor hands back to the connection handler.
struct ValidateResult {
    /// Verdict lines, exactly as offline `opt` prints them.
    lines: Vec<String>,
    /// Structured step verdicts `(pass, func, tag, reason, proof_bytes)`.
    steps: Vec<(String, String, &'static str, String, usize)>,
    failures: usize,
    cache_hits: u64,
    cache_misses: u64,
    queue_wait: Duration,
    run_time: Duration,
}

struct Job {
    req: ValidateRequest,
    enqueued: Instant,
    reply: mpsc::Sender<ValidateResult>,
}

struct ServerState {
    cfg: ServeConfig,
    /// The live observability registry: gauges, HTTP/tenant counters,
    /// latency histograms, plus the merged per-request validation
    /// snapshots. `/metrics` renders this.
    stats: Arc<Registry>,
    cache: Arc<ValidationCache>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    trace_seq: AtomicU64,
    access_log: Option<Mutex<std::fs::File>>,
    span_log: Option<Mutex<std::fs::File>>,
}

impl ServerState {
    fn mint_trace_id(&self) -> String {
        format!("t-{:06}", self.trace_seq.fetch_add(1, Ordering::Relaxed))
    }

    fn queue_depth(&self) -> usize {
        self.queue.lock().unwrap().len()
    }
}

/// A running daemon: its bound address plus the shutdown/join handle.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the daemon actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal shutdown and join the listener and executors. In-flight
    /// requests finish; queued ones are drained and answered.
    pub fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.queue_cv.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Start the daemon: bind, spawn the listener and executor threads, and
/// return immediately.
pub fn start(cfg: ServeConfig) -> Result<ServerHandle, String> {
    let listener = TcpListener::bind(&cfg.addr).map_err(|e| format!("{}: {e}", cfg.addr))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    listener.set_nonblocking(true).map_err(|e| e.to_string())?;

    let cache = match &cfg.cache_dir {
        Some(dir) => ValidationCache::with_dir(dir)
            .map_err(|e| format!("{dir}: {e}"))?
            .with_mmap(cfg.mmap),
        None => ValidationCache::new(),
    };
    let open_log = |path: &Option<String>| -> Result<Option<Mutex<std::fs::File>>, String> {
        match path {
            Some(p) => std::fs::File::create(p)
                .map(|f| Some(Mutex::new(f)))
                .map_err(|e| format!("{p}: {e}")),
            None => Ok(None),
        }
    };
    let access_log = open_log(&cfg.access_log)?;
    let span_log = open_log(&cfg.span_log)?;

    let executors = cfg.executors.max(1);
    let state = Arc::new(ServerState {
        cfg,
        stats: Arc::new(Registry::new()),
        cache: Arc::new(cache),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        trace_seq: AtomicU64::new(1),
        access_log,
        span_log,
    });
    state.stats.gauge_set("serve.ready", 1);
    state.stats.gauge_set("serve.queue_depth", 0);
    state.stats.gauge_set("serve.inflight", 0);

    let mut threads = Vec::new();
    for _ in 0..executors {
        let st = Arc::clone(&state);
        threads.push(std::thread::spawn(move || executor_loop(&st)));
    }
    {
        let st = Arc::clone(&state);
        threads.push(std::thread::spawn(move || listener_loop(&st, &listener)));
    }
    Ok(ServerHandle {
        addr,
        state,
        threads,
    })
}

/// Accept loop: non-blocking accept with a short sleep so shutdown is
/// observed promptly; each connection gets its own handler thread
/// (one request per connection, loopback-scale traffic).
fn listener_loop(state: &Arc<ServerState>, listener: &TcpListener) {
    while !state.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let st = Arc::clone(state);
                std::thread::spawn(move || handle_connection(&st, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    state.stats.gauge_set("serve.ready", 0);
}

/// Executor loop: pop admitted jobs and run them through the engine.
fn executor_loop(state: &Arc<ServerState>) {
    loop {
        let job = {
            let mut queue = state.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if state.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (q, _) = state
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap();
                queue = q;
            }
        };
        let Some(job) = job else { return };
        state
            .stats
            .gauge_set("serve.queue_depth", state.queue_depth() as i64);
        state.stats.gauge_add("serve.inflight", 1);
        let queue_wait = job.enqueued.elapsed();
        let result = run_validation(state, &job.req, queue_wait);
        state.stats.gauge_sub("serve.inflight", 1);
        let _ = job.reply.send(result);
    }
}

/// Run one request through the parallel validation engine.
fn run_validation(
    state: &Arc<ServerState>,
    req: &ValidateRequest,
    queue_wait: Duration,
) -> ValidateResult {
    let started = Instant::now();
    let registry = Arc::new(Registry::new());
    let tel = Telemetry::with_registry(Arc::clone(&registry));
    let spans_on = state.span_log.is_some();
    let opts = ParallelOptions {
        jobs: if state.cfg.jobs == 0 {
            crellvm_passes::default_jobs()
        } else {
            state.cfg.jobs
        },
        format: ProofFormat::default(),
        spans: spans_on,
        // The engine disables the cache while spans are collected (a hit
        // would skip the execution the spans record), so a span-logging
        // daemon trades cache speedups for complete causal trees.
        cache: Some(Arc::clone(&state.cache)),
        cache_namespace: req.tenant.clone(),
        pool_gauges: Some(Arc::clone(&state.stats)),
        ..ParallelOptions::default()
    };
    let config = PassConfig::default();
    let checker = CheckerConfig::sound();
    let mut report = PipelineReport::default();
    let mut lines = Vec::new();
    let mut steps = Vec::new();
    let mut failures = 0usize;
    let mut cur = req.module.clone();
    for pass in &req.passes {
        let steps_before = report.steps.len();
        let out =
            run_validated_pass_parallel(pass, &cur, &config, &checker, &opts, &tel, &mut report);
        for step in &report.steps[steps_before..] {
            if matches!(step.outcome, StepOutcome::Failed(_)) {
                failures += 1;
            }
            lines.push(format_step_line(pass, &step.func, &step.outcome));
            let reason = match &step.outcome {
                StepOutcome::Valid => String::new(),
                StepOutcome::Failed(r) | StepOutcome::NotSupported(r) => r.clone(),
            };
            steps.push((
                pass.clone(),
                step.func.clone(),
                step.outcome.tag(),
                reason,
                step.proof_bytes,
            ));
        }
        cur = out.module;
    }
    if spans_on {
        write_span_log(state, req, &report);
    }
    let snapshot = registry.snapshot();
    let cache_hits = snapshot.counters.get("cache.hits").copied().unwrap_or(0);
    let cache_misses = snapshot.counters.get("cache.misses").copied().unwrap_or(0);
    // Fold the request's validation metrics into the live plane so
    // /metrics shows cumulative pipeline/checker/cache families.
    state.stats.merge_snapshot(&snapshot);
    ValidateResult {
        lines,
        steps,
        failures,
        cache_hits,
        cache_misses,
        queue_wait,
        run_time: started.elapsed(),
    }
}

/// Append the request's causal tree to the span log: one `SpanTree` JSON
/// line, root span stamped with the trace id so `crellvm report --format
/// chrome-trace` reconstructs the request's tree with correlatable ids.
fn write_span_log(state: &ServerState, req: &ValidateRequest, report: &PipelineReport) {
    let Some(log) = &state.span_log else { return };
    let mut tree = report.span_tree(&req.module_name);
    if let Some(root) = tree.records.iter_mut().find(|r| r.parent.is_none()) {
        root.fields
            .insert("trace_id".to_string(), Value::Str(req.trace_id.clone()));
        root.fields
            .insert("tenant".to_string(), Value::Str(req.tenant.clone()));
    }
    let mut file = log.lock().unwrap();
    let _ = writeln!(file, "{}", tree.to_json());
    let _ = file.flush();
}

/// Append one structured JSON line to the access log.
#[allow(clippy::too_many_arguments)]
fn write_access_log(
    state: &ServerState,
    trace_id: &str,
    tenant: &str,
    path: &str,
    status: u16,
    bytes_in: usize,
    bytes_out: usize,
    queue_wait: Duration,
    total: Duration,
    result: Option<&ValidateResult>,
) {
    let Some(log) = &state.access_log else { return };
    let mut obj = BTreeMap::new();
    obj.insert("trace_id".to_string(), Value::Str(trace_id.to_string()));
    obj.insert("tenant".to_string(), Value::Str(tenant.to_string()));
    obj.insert("path".to_string(), Value::Str(path.to_string()));
    obj.insert("status".to_string(), Value::UInt(status as u64));
    obj.insert("bytes_in".to_string(), Value::UInt(bytes_in as u64));
    obj.insert("bytes_out".to_string(), Value::UInt(bytes_out as u64));
    obj.insert(
        "queue_wait_us".to_string(),
        Value::UInt(queue_wait.as_micros() as u64),
    );
    obj.insert(
        "latency_us".to_string(),
        Value::UInt(total.as_micros() as u64),
    );
    if let Some(r) = result {
        let valid = r.steps.iter().filter(|s| s.2 == "valid").count();
        let ns = r.steps.iter().filter(|s| s.2 == "not_supported").count();
        obj.insert("valid".to_string(), Value::UInt(valid as u64));
        obj.insert("failed".to_string(), Value::UInt(r.failures as u64));
        obj.insert("not_supported".to_string(), Value::UInt(ns as u64));
        obj.insert("cache_hits".to_string(), Value::UInt(r.cache_hits));
        obj.insert("cache_misses".to_string(), Value::UInt(r.cache_misses));
    }
    let mut file = log.lock().unwrap();
    let _ = writeln!(file, "{}", Value::Obj(obj).to_json());
    let _ = file.flush();
}

/// OpenMetrics-safe tenant label segment.
fn tenant_label(tenant: &str) -> String {
    if tenant.is_empty() {
        "default".to_string()
    } else {
        tenant
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect()
    }
}

/// Decode a validation request body by content type.
fn parse_validate_request(state: &ServerState, req: &Request) -> Result<ValidateRequest, String> {
    let content_type = req.header("content-type").unwrap_or("text/plain");
    let mut tenant = req
        .header("x-crellvm-tenant")
        .unwrap_or_default()
        .to_string();
    let mut passes: Vec<String> = req
        .header("x-crellvm-passes")
        .map(|v| {
            v.split(',')
                .map(|p| p.trim().to_string())
                .filter(|p| !p.is_empty())
                .collect()
        })
        .unwrap_or_default();
    let mut module_name = req
        .header("x-crellvm-module")
        .unwrap_or("module")
        .to_string();

    let module = if content_type.starts_with("application/x-crellvm-module-v2") {
        // v2-wire Module body: the same dictionary-coded binary format
        // the proof pipeline uses, decoded generically.
        crellvm_core::serialize_bin::from_bytes_v2::<Module>(&req.body)
            .map_err(|e| format!("v2 module body: {e}"))?
    } else if content_type.starts_with("application/json") {
        let text = std::str::from_utf8(&req.body).map_err(|e| format!("body: {e}"))?;
        let doc = crellvm_telemetry::json::parse(text).map_err(|e| format!("body: {e}"))?;
        let ir = doc
            .get("module")
            .and_then(Value::as_str)
            .ok_or("body: missing \"module\" (IR text)")?;
        if let Some(t) = doc.get("tenant").and_then(Value::as_str) {
            tenant = t.to_string();
        }
        if let Some(name) = doc.get("name").and_then(Value::as_str) {
            module_name = name.to_string();
        }
        if let Some(arr) = doc.get("passes").and_then(Value::as_arr) {
            passes = arr
                .iter()
                .filter_map(Value::as_str)
                .map(str::to_string)
                .collect();
        }
        parse_module(ir).map_err(|e| e.to_string())?
    } else {
        let text = std::str::from_utf8(&req.body).map_err(|e| format!("body: {e}"))?;
        parse_module(text).map_err(|e| e.to_string())?
    };
    verify_module(&module).map_err(|e| e.to_string())?;
    if passes.is_empty() {
        passes = DEFAULT_PASSES.map(String::from).to_vec();
    }
    if let Some(bad) = passes.iter().find(|p| !KNOWN_PASSES.contains(&p.as_str())) {
        return Err(format!("unknown pass {bad}"));
    }
    Ok(ValidateRequest {
        module,
        module_name,
        passes,
        tenant,
        trace_id: state.mint_trace_id(),
    })
}

/// Render a validation result per the request's `Accept` preference.
fn render_validate_response(
    req: &Request,
    vreq: &ValidateRequest,
    result: &ValidateResult,
) -> Response {
    let wants_text = req
        .header("accept")
        .is_some_and(|a| a.starts_with("text/plain"));
    if wants_text {
        // Byte-identical to offline `crellvm opt` stdout.
        let mut body = result.lines.join("\n");
        if !body.is_empty() {
            body.push('\n');
        }
        return Response::text(200, body);
    }
    let steps: Vec<Value> = result
        .steps
        .iter()
        .map(|(pass, func, tag, reason, proof_bytes)| {
            let mut s = BTreeMap::new();
            s.insert("pass".to_string(), Value::Str(pass.clone()));
            s.insert("func".to_string(), Value::Str(func.clone()));
            s.insert("outcome".to_string(), Value::Str((*tag).to_string()));
            if !reason.is_empty() {
                s.insert("reason".to_string(), Value::Str(reason.clone()));
            }
            s.insert("proof_bytes".to_string(), Value::UInt(*proof_bytes as u64));
            Value::Obj(s)
        })
        .collect();
    let mut cache = BTreeMap::new();
    cache.insert("hits".to_string(), Value::UInt(result.cache_hits));
    cache.insert("misses".to_string(), Value::UInt(result.cache_misses));
    let mut obj = BTreeMap::new();
    obj.insert("trace_id".to_string(), Value::Str(vreq.trace_id.clone()));
    obj.insert("tenant".to_string(), Value::Str(vreq.tenant.clone()));
    obj.insert("failures".to_string(), Value::UInt(result.failures as u64));
    obj.insert(
        "lines".to_string(),
        Value::Arr(result.lines.iter().cloned().map(Value::Str).collect()),
    );
    obj.insert("steps".to_string(), Value::Arr(steps));
    obj.insert("cache".to_string(), Value::Obj(cache));
    obj.insert(
        "queue_wait_us".to_string(),
        Value::UInt(result.queue_wait.as_micros() as u64),
    );
    obj.insert(
        "run_us".to_string(),
        Value::UInt(result.run_time.as_micros() as u64),
    );
    Response::json(200, &Value::Obj(obj))
}

/// Handle `POST /v1/validate`: admit, execute, respond.
fn handle_validate(state: &Arc<ServerState>, req: &Request) -> Response {
    let t0 = Instant::now();
    let bytes_in = req.body.len();
    state.stats.add("serve.bytes_in", bytes_in as u64);
    let vreq = match parse_validate_request(state, req) {
        Ok(v) => v,
        Err(e) => {
            state.stats.add("serve.responses.400", 1);
            return Response::text(400, format!("error: {e}\n"));
        }
    };
    state.stats.add("serve.requests", 1);
    state.stats.add(
        &format!("serve.tenant.{}.requests", tenant_label(&vreq.tenant)),
        1,
    );

    // Admission: a bounded queue with backpressure, never an unbounded
    // pile-up. Over capacity the client is told when to come back.
    let (tx, rx) = mpsc::channel();
    {
        let mut queue = state.queue.lock().unwrap();
        if queue.len() >= state.cfg.queue_capacity {
            drop(queue);
            state.stats.add("serve.responses.429", 1);
            state.stats.add("serve.rejected", 1);
            return Response::text(429, "queue full, retry later\n")
                .header("Retry-After", "1")
                .header("X-Crellvm-Trace-Id", vreq.trace_id.clone());
        }
        queue.push_back(Job {
            req: ValidateRequest {
                module: vreq.module.clone(),
                module_name: vreq.module_name.clone(),
                passes: vreq.passes.clone(),
                tenant: vreq.tenant.clone(),
                trace_id: vreq.trace_id.clone(),
            },
            enqueued: Instant::now(),
            reply: tx,
        });
        state
            .stats
            .gauge_set("serve.queue_depth", queue.len() as i64);
    }
    state.queue_cv.notify_one();

    let Ok(result) = rx.recv() else {
        state.stats.add("serve.responses.500", 1);
        return Response::text(500, "executor dropped the request\n");
    };

    // Verdict and latency accounting for the live plane.
    let tlabel = tenant_label(&vreq.tenant);
    for (_, _, tag, _, _) in &result.steps {
        state.stats.add(&format!("serve.verdict.{tag}"), 1);
        state.stats.add(&format!("serve.tenant.{tlabel}.{tag}"), 1);
    }
    state
        .stats
        .observe("serve.queue_wait_us", result.queue_wait.as_micros() as u64);
    state
        .stats
        .observe("serve.latency_us", t0.elapsed().as_micros() as u64);
    state.stats.add("serve.responses.200", 1);

    let resp = render_validate_response(req, &vreq, &result)
        .header("X-Crellvm-Trace-Id", vreq.trace_id.clone())
        .header("X-Crellvm-Failures", result.failures.to_string());
    state.stats.add("serve.bytes_out", resp.body.len() as u64);
    write_access_log(
        state,
        &vreq.trace_id,
        &vreq.tenant,
        "/v1/validate",
        resp.status,
        bytes_in,
        resp.body.len(),
        result.queue_wait,
        t0.elapsed(),
        Some(&result),
    );
    resp
}

fn route(state: &Arc<ServerState>, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/validate") => handle_validate(state, req),
        ("GET", "/metrics") => {
            state
                .stats
                .gauge_set("serve.queue_depth", state.queue_depth() as i64);
            Response::new(
                200,
                "application/openmetrics-text; version=1.0.0; charset=utf-8",
                openmetrics(&state.stats.snapshot()).into_bytes(),
            )
        }
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/readyz") => {
            if state.shutdown.load(Ordering::SeqCst) {
                Response::text(503, "draining\n")
            } else if state.queue_depth() >= state.cfg.queue_capacity {
                Response::text(503, "saturated\n").header("Retry-After", "1")
            } else {
                Response::text(200, "ready\n")
            }
        }
        ("GET", _) | ("POST", _) => Response::text(404, "no such endpoint\n"),
        _ => Response::text(405, "method not allowed\n"),
    }
}

fn handle_connection(state: &Arc<ServerState>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let resp = match read_request(&mut stream, state.cfg.max_body) {
        Ok(req) => route(state, &req),
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            state.stats.add("serve.responses.400", 1);
            Response::text(400, format!("error: {e}\n"))
        }
        Err(_) => return,
    };
    let _ = resp.write_to(&mut stream);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::call;

    const PROGRAM: &str = r#"
        declare @print(i32)
        define @f(i32 %n) -> i32 {
        entry:
          %p = alloca i32
          store i32 0, ptr %p
          %a = load i32, ptr %p
          %b = add i32 %a, %n
          ret i32 %b
        }
        define @main() {
        entry:
          %r = call i32 @f(i32 3)
          call void @print(i32 %r)
          ret void
        }
    "#;

    fn start_test_server(cfg: ServeConfig) -> (ServerHandle, String) {
        let handle = start(cfg).expect("server starts");
        let addr = handle.addr().to_string();
        (handle, addr)
    }

    #[test]
    fn validates_ir_text_and_reports_verdicts() {
        let (handle, addr) = start_test_server(ServeConfig::default());
        let (status, headers, body) = call(
            &addr,
            "POST",
            "/v1/validate",
            &[("Content-Type", "text/plain")],
            PROGRAM.as_bytes(),
        )
        .unwrap();
        assert_eq!(status, 200);
        assert!(headers
            .get("x-crellvm-trace-id")
            .is_some_and(|t| t.starts_with("t-")));
        let doc = crellvm_telemetry::json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        assert_eq!(doc.get("failures").and_then(Value::as_u64), Some(0));
        let lines = doc.get("lines").and_then(Value::as_arr).unwrap();
        // 4 passes x 2 functions.
        assert_eq!(lines.len(), 8);
        handle.shutdown();
    }

    #[test]
    fn text_accept_returns_offline_format_lines() {
        let (handle, addr) = start_test_server(ServeConfig::default());
        let (status, _, body) = call(
            &addr,
            "POST",
            "/v1/validate",
            &[("Accept", "text/plain")],
            PROGRAM.as_bytes(),
        )
        .unwrap();
        assert_eq!(status, 200);
        let text = std::str::from_utf8(&body).unwrap();
        let expected = format_step_line("mem2reg", "f", &StepOutcome::Valid);
        assert!(text.contains(&format!("{expected}\n")), "got: {text:?}");
        assert!(text.ends_with('\n'));
        handle.shutdown();
    }

    #[test]
    fn zero_capacity_queue_rejects_with_429_and_retry_after() {
        let (handle, addr) = start_test_server(ServeConfig {
            queue_capacity: 0,
            ..ServeConfig::default()
        });
        let (status, headers, _) =
            call(&addr, "POST", "/v1/validate", &[], PROGRAM.as_bytes()).unwrap();
        assert_eq!(status, 429);
        assert_eq!(headers.get("retry-after").map(String::as_str), Some("1"));
        // /readyz reports saturation while /healthz stays alive.
        let (h, _, _) = call(&addr, "GET", "/healthz", &[], &[]).unwrap();
        assert_eq!(h, 200);
        let (r, _, _) = call(&addr, "GET", "/readyz", &[], &[]).unwrap();
        assert_eq!(r, 503);
        handle.shutdown();
    }

    #[test]
    fn bad_module_is_a_400_not_a_crash() {
        let (handle, addr) = start_test_server(ServeConfig::default());
        let (status, _, body) =
            call(&addr, "POST", "/v1/validate", &[], b"define garbage {").unwrap();
        assert_eq!(status, 400);
        assert!(std::str::from_utf8(&body).unwrap().starts_with("error:"));
        let (status, _, _) = call(&addr, "GET", "/nope", &[], &[]).unwrap();
        assert_eq!(status, 404);
        handle.shutdown();
    }

    #[test]
    fn v2_wire_module_body_round_trips() {
        let m = parse_module(PROGRAM).unwrap();
        let bytes = crellvm_core::serialize_bin::to_bytes_v2(&m).unwrap();
        let (handle, addr) = start_test_server(ServeConfig::default());
        let (status, _, body) = call(
            &addr,
            "POST",
            "/v1/validate",
            &[
                ("Content-Type", "application/x-crellvm-module-v2"),
                ("Accept", "text/plain"),
            ],
            &bytes,
        )
        .unwrap();
        assert_eq!(status, 200);
        assert!(std::str::from_utf8(&body).unwrap().contains("valid"));
        handle.shutdown();
    }

    #[test]
    fn tenants_do_not_share_cache_entries_but_one_tenant_hits_warm() {
        let (handle, addr) = start_test_server(ServeConfig::default());
        let post = |tenant: &str| {
            let (status, _, body) = call(
                &addr,
                "POST",
                "/v1/validate",
                &[("X-Crellvm-Tenant", tenant)],
                PROGRAM.as_bytes(),
            )
            .unwrap();
            assert_eq!(status, 200);
            let doc = crellvm_telemetry::json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
            let cache = doc.get("cache").unwrap();
            (
                cache.get("hits").and_then(Value::as_u64).unwrap(),
                cache.get("misses").and_then(Value::as_u64).unwrap(),
            )
        };
        let (h1, m1) = post("acme");
        assert_eq!(h1, 0, "cold tenant cannot hit");
        assert!(m1 > 0);
        let (h2, m2) = post("acme");
        assert_eq!(m2, 0, "warm same-tenant run must be all hits");
        assert!(h2 > 0);
        let (h3, m3) = post("rival");
        assert_eq!(h3, 0, "another tenant must not see acme's entries");
        assert!(m3 > 0);
        handle.shutdown();
    }

    #[test]
    fn metrics_endpoint_is_valid_openmetrics_with_serve_families() {
        let (handle, addr) = start_test_server(ServeConfig::default());
        let (status, _, _) = call(&addr, "POST", "/v1/validate", &[], PROGRAM.as_bytes()).unwrap();
        assert_eq!(status, 200);
        let (status, headers, body) = call(&addr, "GET", "/metrics", &[], &[]).unwrap();
        assert_eq!(status, 200);
        assert!(headers
            .get("content-type")
            .is_some_and(|c| c.contains("openmetrics")));
        let text = std::str::from_utf8(&body).unwrap();
        assert!(text.ends_with("# EOF\n"));
        assert!(text.contains("# TYPE serve_queue_depth gauge\n"));
        assert!(text.contains("serve_requests_total 1\n"));
        assert!(text.contains("serve_verdict_valid_total"));
        assert!(text.contains("# TYPE serve_latency_us histogram\n"));
        assert!(text.contains("pipeline_validated_total"));
        handle.shutdown();
    }

    #[test]
    fn span_log_lines_carry_the_request_trace_id() {
        let dir = std::env::temp_dir().join(format!("crellvm-serve-spans-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let span_path = dir.join("spans.jsonl");
        let (handle, addr) = start_test_server(ServeConfig {
            span_log: Some(span_path.to_string_lossy().into_owned()),
            ..ServeConfig::default()
        });
        let (status, headers, _) =
            call(&addr, "POST", "/v1/validate", &[], PROGRAM.as_bytes()).unwrap();
        assert_eq!(status, 200);
        let trace_id = headers.get("x-crellvm-trace-id").unwrap().clone();
        handle.shutdown();
        let log = std::fs::read_to_string(&span_path).unwrap();
        let line = log.lines().next().expect("one span line");
        let tree = crellvm_telemetry::SpanTree::from_json(line).unwrap();
        let root = tree.records.iter().find(|r| r.parent.is_none()).unwrap();
        assert_eq!(
            root.fields.get("trace_id").and_then(Value::as_str),
            Some(trace_id.as_str())
        );
        // The chrome-trace exporter propagates it to every event.
        let chrome = crellvm_telemetry::export::chrome_trace(&tree);
        assert!(chrome.contains(&format!("\"id\":\"{trace_id}.0\"")));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
