//! `crellvm top`: a one-screen fleet view of a running daemon, fed by
//! nothing but the `/metrics` endpoint.
//!
//! The view is deliberately *scrape-only*: it consumes the exact
//! OpenMetrics text any other collector would, so what `top` shows is by
//! construction what a Prometheus-style pipeline would ingest. The
//! parser reverses the exporter: `_total` samples back into counters,
//! bare gauge samples, and cumulative `_bucket{le="..."}` series
//! de-accumulated into the registry's log₂ [`HistogramSnapshot`] shape so
//! the same quantile interpolation that works in-process works over the
//! wire.

use crellvm_telemetry::HistogramSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed `/metrics` scrape.
#[derive(Debug, Clone, Default)]
pub struct MetricsView {
    /// Counter families (`name_total` with the suffix stripped).
    pub counters: BTreeMap<String, u64>,
    /// Gauge families at their sampled value.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram families rebuilt into log₂-bucket snapshots.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsView {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }
}

/// Bucket index for an inclusive upper bound emitted by the exporter:
/// `le="0"` is bucket 0; `le="2^i - 1"` is bucket `i` (values of bit
/// length `i`).
fn bucket_index(le: u64) -> u32 {
    64 - le.leading_zeros()
}

/// Parse OpenMetrics text exposition back into a [`MetricsView`].
///
/// Rejects a scrape without the terminating `# EOF` line — a truncated
/// body must never masquerade as a quiet fleet.
pub fn parse_openmetrics(text: &str) -> Result<MetricsView, String> {
    if !text.trim_end().ends_with("# EOF") {
        return Err("scrape is not terminated by # EOF (truncated?)".to_string());
    }
    let mut view = MetricsView::default();
    let mut hist_types: BTreeMap<String, ()> = BTreeMap::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            if let Some((name, kind)) = rest.rsplit_once(' ') {
                if kind == "histogram" {
                    hist_types.insert(name.to_string(), ());
                }
            }
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let Some((sample, value)) = line.rsplit_once(' ') else {
            continue;
        };
        if let Some((name, label)) = sample.split_once('{') {
            // Histogram bucket series: name_bucket{le="..."} cum
            let Some(base) = name.strip_suffix("_bucket") else {
                continue;
            };
            if !hist_types.contains_key(base) {
                continue;
            }
            let Some(le) = label
                .strip_prefix("le=\"")
                .and_then(|l| l.strip_suffix("\"}"))
            else {
                continue;
            };
            if le == "+Inf" {
                continue;
            }
            let le: u64 = le.parse().map_err(|e| format!("{line}: {e}"))?;
            let cum: u64 = value.parse().map_err(|e| format!("{line}: {e}"))?;
            let h = view.histograms.entry(base.to_string()).or_default();
            // De-accumulate: this bucket's own count is cum minus
            // everything already seen (buckets arrive in le order).
            let seen: u64 = h.buckets.iter().map(|(_, c)| c).sum();
            let own = cum.saturating_sub(seen);
            if own > 0 {
                h.buckets.push((bucket_index(le), own));
            }
        } else if let Some(base) = sample.strip_suffix("_sum") {
            if let Some(h) = view.histograms.get_mut(base) {
                h.sum = value.parse().map_err(|e| format!("{line}: {e}"))?;
            }
        } else if let Some(base) = sample.strip_suffix("_count") {
            if let Some(h) = view.histograms.get_mut(base) {
                h.count = value.parse().map_err(|e| format!("{line}: {e}"))?;
            }
        } else if let Some(base) = sample.strip_suffix("_total") {
            if let Ok(v) = value.parse::<f64>() {
                view.counters.insert(base.to_string(), v as u64);
            }
        } else if let Ok(v) = value.parse::<i64>() {
            view.gauges.insert(sample.to_string(), v);
        }
    }
    Ok(view)
}

fn rate(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

/// Render the one-screen fleet view from a scrape.
pub fn render(view: &MetricsView) -> String {
    let mut out = String::new();
    let ready = if view.gauge("serve_ready") == 1 {
        "ready"
    } else {
        "DRAINING"
    };
    let _ = writeln!(out, "crellvm serve — fleet view [{ready}]");
    let _ = writeln!(
        out,
        "queue {:>5}   inflight {:>4}   pool workers {:>3}   pool inflight {:>4}",
        view.gauge("serve_queue_depth"),
        view.gauge("serve_inflight"),
        view.gauge("pool_workers"),
        view.gauge("pool_inflight"),
    );
    let hits = view.counter("cache_hits");
    let misses = view.counter("cache_misses");
    let _ = writeln!(
        out,
        "requests {:>7}   rejected(429) {:>5}   cache {:>6.1}% hit ({hits}/{})",
        view.counter("serve_requests"),
        view.counter("serve_responses_429"),
        100.0 * rate(hits, hits + misses),
        hits + misses,
    );
    let _ = writeln!(
        out,
        "verdicts: {:>6} valid   {:>5} failed   {:>5} not-supported",
        view.counter("serve_verdict_valid"),
        view.counter("serve_verdict_failed"),
        view.counter("serve_verdict_not_supported"),
    );
    for (label, name) in [
        ("latency", "serve_latency_us"),
        ("queue wait", "serve_queue_wait_us"),
    ] {
        if let Some(h) = view.histograms.get(name) {
            let _ = writeln!(
                out,
                "{label:<10}  p50 {:>9.2} ms   p95 {:>9.2} ms   p99 {:>9.2} ms   ({} samples)",
                h.p50() / 1e3,
                h.p95() / 1e3,
                h.p99() / 1e3,
                h.count,
            );
        }
    }
    // Per-tenant request/verdict counters.
    let tenants: Vec<&str> = view
        .counters
        .keys()
        .filter_map(|k| {
            k.strip_prefix("serve_tenant_")
                .and_then(|r| r.strip_suffix("_requests"))
        })
        .collect();
    if !tenants.is_empty() {
        let _ = writeln!(
            out,
            "{:<16} {:>9} {:>8} {:>8} {:>14}",
            "tenant", "requests", "valid", "failed", "not-supported"
        );
        for t in tenants {
            let c = |suffix: &str| view.counter(&format!("serve_tenant_{t}_{suffix}"));
            let _ = writeln!(
                out,
                "{t:<16} {:>9} {:>8} {:>8} {:>14}",
                c("requests"),
                c("valid"),
                c("failed"),
                c("not_supported"),
            );
        }
    }
    out
}

/// One `top` frame: scrape `addr` and render.
pub fn frame(addr: &str) -> Result<String, String> {
    let (status, _, body) =
        crate::http::call(addr, "GET", "/metrics", &[], &[]).map_err(|e| format!("{addr}: {e}"))?;
    if status != 200 {
        return Err(format!("{addr}: /metrics returned {status}"));
    }
    let text = String::from_utf8_lossy(&body);
    Ok(render(&parse_openmetrics(&text)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crellvm_telemetry::{export::openmetrics, Registry};

    #[test]
    fn parse_inverts_the_exporter() {
        let r = Registry::new();
        r.add("serve.requests", 41);
        r.gauge_set("serve.queue_depth", 3);
        for v in [100, 900, 5000, 120_000] {
            r.observe("serve.latency_us", v);
        }
        let text = openmetrics(&r.snapshot());
        let view = parse_openmetrics(&text).unwrap();
        assert_eq!(view.counter("serve_requests"), 41);
        assert_eq!(view.gauge("serve_queue_depth"), 3);
        let h = view.histograms.get("serve_latency_us").unwrap();
        // The rebuilt snapshot matches the in-process one exactly.
        assert_eq!(*h, r.snapshot().histograms["serve.latency_us"]);
        assert!(h.p50() > 0.0);
    }

    #[test]
    fn truncated_scrape_is_rejected() {
        let r = Registry::new();
        r.add("serve.requests", 1);
        let text = openmetrics(&r.snapshot());
        let cut = &text[..text.len() - 6];
        assert!(parse_openmetrics(cut).is_err());
    }

    #[test]
    fn renders_a_fleet_view() {
        let r = Registry::new();
        r.add("serve.requests", 10);
        r.add("serve.tenant.acme.requests", 6);
        r.add("serve.tenant.acme.valid", 20);
        r.add("serve.verdict.valid", 30);
        r.add("cache.hits", 9);
        r.add("cache.misses", 3);
        r.gauge_set("serve.ready", 1);
        r.gauge_set("serve.queue_depth", 2);
        r.observe("serve.latency_us", 2500);
        let view = parse_openmetrics(&openmetrics(&r.snapshot())).unwrap();
        let screen = render(&view);
        assert!(screen.contains("[ready]"));
        assert!(screen.contains("75.0% hit"));
        assert!(screen.contains("acme"));
        assert!(screen.contains("latency"));
    }
}
