//! Telemetry for the validated-compilation pipeline: a thread-safe metrics
//! registry and a structured JSON-lines trace sink, with no external crate
//! dependencies.
//!
//! The paper's credibility claim (Fig 6/8: #V/#F/#NS and the
//! Orig/PCal/I-O/PCheck time columns) is only as strong as the evidence
//! trail behind it. This crate is that trail's substrate:
//!
//! - [`Registry`] — atomic counters, log-bucketed histograms, and span
//!   timers. `Arc`-shareable and contention-safe, so a future parallel or
//!   sharded pipeline can record into one registry from many threads.
//! - [`Trace`] — an append-only JSON-lines event sink: one [`Event`] per
//!   validation step (the proof-audit log), plus pass-level and failure
//!   events.
//! - [`Telemetry`] — the handle threaded through checker, passes, and
//!   pipeline. A disabled handle ([`Telemetry::disabled`]) skips trace
//!   emission but still records metrics.
//! - [`json`] — the minimal JSON value model used by snapshots and events
//!   (kept internal so this crate stays dependency-free).
//!
//! Metric name conventions used across the workspace:
//!
//! | prefix              | meaning                                           |
//! |---------------------|---------------------------------------------------|
//! | `checker.rule.*`    | inference-rule applications (Fig 7's rule axis)   |
//! | `checker.*`         | checker totals: rows, failures, assertion sizes   |
//! | `pass.<name>.*`     | per-pass domain counters (allocas promoted, ...)  |
//! | `pipeline.*`        | step verdict totals: validated/failed/unsupported |
//! | `time.*`            | span timers: orig/pcal/io/pcheck (Fig 8 columns)  |

pub mod export;
pub mod forensics;
pub mod json;
pub mod profile;
pub mod progress;
mod registry;
mod span;
mod trace;

pub use profile::{Profile, ProfileEntry, ProfileWeight};
pub use progress::{Progress, ProgressMode};
pub use registry::{HistogramSnapshot, Registry, Snapshot, Span, TimerSnapshot};
pub use span::{CausalSpan, SpanCollector, SpanNode, SpanRecord, SpanTree};
pub use trace::{Event, Trace};

use std::sync::Arc;

/// The handle threaded through the stack: a shared [`Registry`], an
/// optional [`Trace`] sink, and an optional causal [`SpanCollector`].
///
/// Cloning is cheap (a few `Arc`s) and every clone records into the same
/// registry and trace, so the handle can be handed to worker threads as-is.
#[derive(Clone)]
pub struct Telemetry {
    registry: Arc<Registry>,
    trace: Option<Arc<Trace>>,
    spans: Option<Arc<SpanCollector>>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Telemetry {
    /// Metrics-only telemetry: counters/histograms/timers record, trace
    /// events are dropped.
    pub fn disabled() -> Self {
        Telemetry {
            registry: Arc::new(Registry::new()),
            trace: None,
            spans: None,
        }
    }

    /// Telemetry recording into the given registry, without a trace sink.
    pub fn with_registry(registry: Arc<Registry>) -> Self {
        Telemetry {
            registry,
            trace: None,
            spans: None,
        }
    }

    /// Attach a trace sink.
    pub fn with_trace(mut self, trace: Arc<Trace>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Attach a causal span collector. The parallel engine hands every
    /// work item a *fresh* collector, so recording needs no cross-thread
    /// coordination and the per-item subtrees can be merged
    /// deterministically afterwards.
    pub fn with_spans(mut self, spans: Arc<SpanCollector>) -> Self {
        self.spans = Some(spans);
        self
    }

    /// The shared registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Increment counter `name` by `n`.
    pub fn count(&self, name: &str, n: u64) {
        self.registry.add(name, n);
    }

    /// Record `value` into histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        self.registry.observe(name, value);
    }

    /// Start a span timer; the elapsed time is recorded into timer `name`
    /// when the returned guard drops.
    pub fn span(&self, name: &str) -> Span<'_> {
        self.registry.span(name)
    }

    /// Emit a trace event (no-op when no sink is attached). A failed sink
    /// write is surfaced as a `trace.dropped` counter bump rather than
    /// swallowed.
    pub fn emit(&self, event: Event) {
        if let Some(trace) = &self.trace {
            if !trace.emit(&event) {
                self.registry.add("trace.dropped", 1);
            }
        }
    }

    /// Whether a trace sink is attached (lets callers skip building
    /// expensive events).
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Whether a causal span collector is attached (lets callers skip
    /// formatting span names).
    pub fn spanning(&self) -> bool {
        self.spans.is_some()
    }

    /// Open a causal span; it closes (recording its duration) when the
    /// returned guard drops. A no-op guard when no collector is attached.
    pub fn causal(&self, name: &str, cat: &str) -> CausalSpan {
        CausalSpan::open(self.spans.clone(), name, cat)
    }

    /// Attach a field to the innermost open causal span (no-op without a
    /// collector or an open span). Lets deep callees — e.g. the checker
    /// flushing interner statistics — annotate the enclosing phase span
    /// without threading the guard down the call stack.
    pub fn annotate(&self, key: &str, value: json::Value) {
        if let Some(spans) = &self.spans {
            spans.field(key, value);
        }
    }

    /// The attached span collector, if any.
    pub fn span_collector(&self) -> Option<Arc<SpanCollector>> {
        self.spans.clone()
    }

    /// The attached trace sink, if any. The parallel validation engine
    /// uses this to give each worker a private registry while all workers
    /// keep emitting into the session's one trace file.
    pub fn trace_handle(&self) -> Option<Arc<Trace>> {
        self.trace.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Telemetry>();
        assert_send_sync::<Registry>();
        assert_send_sync::<Trace>();
    }

    #[test]
    fn clones_share_one_registry() {
        let t = Telemetry::disabled();
        let t2 = t.clone();
        t.count("a", 2);
        t2.count("a", 3);
        assert_eq!(t.registry().counter_value("a"), 5);
    }
}
