//! The structured trace sink: an append-only JSON-lines proof-audit log.
//!
//! Each [`Event`] is one line of JSON with a `kind` plus arbitrary string /
//! integer fields. The checker emits one event per validation step, so the
//! question "why was this translation accepted?" has a machine-readable
//! answer.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::Mutex;

use crate::json::{parse, Value};

/// One structured trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event kind, e.g. `validation.step`, `validation.failure`,
    /// `pass.applied`.
    pub kind: String,
    /// Named payload fields.
    pub fields: BTreeMap<String, Value>,
}

impl Event {
    /// New event of the given kind.
    pub fn new(kind: impl Into<String>) -> Self {
        Event {
            kind: kind.into(),
            fields: BTreeMap::new(),
        }
    }

    /// Attach a string field.
    pub fn str(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.fields.insert(key.into(), Value::Str(value.into()));
        self
    }

    /// Attach an unsigned integer field.
    pub fn u64(mut self, key: impl Into<String>, value: u64) -> Self {
        // Store small values as Int so parsed events compare equal to
        // freshly built ones (the parser only yields UInt above i64::MAX).
        let value = match i64::try_from(value) {
            Ok(v) => Value::Int(v),
            Err(_) => Value::UInt(value),
        };
        self.fields.insert(key.into(), value);
        self
    }

    /// Field accessor (string).
    pub fn field_str(&self, key: &str) -> Option<&str> {
        self.fields.get(key).and_then(Value::as_str)
    }

    /// Field accessor (u64).
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        self.fields.get(key).and_then(Value::as_u64)
    }

    /// Serialize to one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut obj = BTreeMap::new();
        obj.insert("kind".to_string(), Value::Str(self.kind.clone()));
        for (k, v) in &self.fields {
            obj.insert(k.clone(), v.clone());
        }
        Value::Obj(obj).to_json()
    }

    /// Parse one JSON line back into an event.
    pub fn from_json_line(line: &str) -> Result<Event, String> {
        let root = parse(line).map_err(|e| e.to_string())?;
        let obj = root.as_obj().ok_or("trace line is not an object")?;
        let kind = obj
            .get("kind")
            .and_then(Value::as_str)
            .ok_or("trace line has no `kind`")?
            .to_string();
        let fields = obj
            .iter()
            .filter(|(k, _)| k.as_str() != "kind")
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        Ok(Event { kind, fields })
    }
}

/// Append-only JSON-lines sink over any writer.
pub struct Trace {
    out: Mutex<Box<dyn Write + Send>>,
    dropped: std::sync::atomic::AtomicU64,
}

impl Trace {
    /// Sink writing to `out` (a file, a `Vec<u8>`, ...).
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        Trace {
            out: Mutex::new(out),
            dropped: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// In-memory sink, for tests.
    pub fn in_memory() -> (std::sync::Arc<Self>, SharedBuffer) {
        let buffer = SharedBuffer::default();
        let sink = Trace::new(Box::new(buffer.clone()));
        (std::sync::Arc::new(sink), buffer)
    }

    /// Write one event as one line. IO errors never fail the pipeline the
    /// sink observes, but they are not silent either: a failed write is
    /// counted (see [`Trace::dropped`]) and reported as `false` so callers
    /// can surface it — [`crate::Telemetry::emit`] bumps the
    /// `trace.dropped` counter.
    pub fn emit(&self, event: &Event) -> bool {
        let line = event.to_json_line();
        let mut out = self.out.lock().expect("trace lock poisoned");
        if writeln!(out, "{line}").is_err() {
            self.dropped
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Number of events dropped because the underlying writer failed.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Flush the underlying writer.
    pub fn flush(&self) {
        let _ = self.out.lock().expect("trace lock poisoned").flush();
    }
}

/// Clonable in-memory byte buffer usable as a trace writer.
#[derive(Clone, Default)]
pub struct SharedBuffer(std::sync::Arc<Mutex<Vec<u8>>>);

impl SharedBuffer {
    /// Current contents as UTF-8.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().expect("buffer lock poisoned")).into_owned()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("buffer lock poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_roundtrip_through_json_lines() {
        let event = Event::new("validation.failure")
            .str("pass", "gvn")
            .str("func", "main")
            .str("reason", "lessdef does not hold: %x \u{2291} %y")
            .u64("row", 7);
        let line = event.to_json_line();
        assert_eq!(Event::from_json_line(&line).unwrap(), event);
    }

    #[test]
    fn sink_writes_one_line_per_event() {
        let (trace, buffer) = Trace::in_memory();
        trace.emit(&Event::new("a").u64("n", 1));
        trace.emit(&Event::new("b").str("s", "x\ny"));
        trace.flush();
        let contents = buffer.contents();
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(Event::from_json_line(lines[0]).unwrap().kind, "a");
        assert_eq!(
            Event::from_json_line(lines[1]).unwrap().field_str("s"),
            Some("x\ny")
        );
    }
}
