//! Causal spans: the module → function → pass → phase → proof-command
//! tree behind every validation run.
//!
//! A [`SpanCollector`] records a strictly nested stack of spans for one
//! unit of work (one function under one pass). The parallel validation
//! engine gives every work item its own collector — recording is
//! lock-free in the sense that no two threads ever share one — and the
//! per-item subtrees are merged *deterministically* afterwards:
//! [`SpanTree::assemble`] groups them in module function order and pass
//! arrival order, so the tree's structure is identical at any `--jobs`
//! count. Only the recorded wall-clock times vary run to run;
//! [`SpanTree::deterministic`] zeroes exactly those, mirroring
//! [`crate::Snapshot::deterministic`].

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use crate::json::{parse, Value};

/// One node of a span tree, before flattening.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Span name, e.g. `@main`, `gvn`, `pcheck`, `row entry.0`.
    pub name: String,
    /// Span category: `module`, `function`, `pass`, `phase`, or `proof`.
    pub cat: String,
    /// Named payload fields (verdict, proof size, ...).
    pub fields: BTreeMap<String, Value>,
    /// Start offset in nanoseconds relative to the collector's origin.
    pub start_ns: u64,
    /// Recorded duration in nanoseconds.
    pub dur_ns: u64,
    /// Child spans, in recording order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// A fresh node with no timing and no children.
    pub fn new(name: impl Into<String>, cat: impl Into<String>) -> SpanNode {
        SpanNode {
            name: name.into(),
            cat: cat.into(),
            fields: BTreeMap::new(),
            start_ns: 0,
            dur_ns: 0,
            children: Vec::new(),
        }
    }

    /// Total number of nodes in this subtree (including `self`).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(SpanNode::size).sum::<usize>()
    }
}

struct OpenSpan {
    node: SpanNode,
    started: Instant,
}

#[derive(Default)]
struct CollectorState {
    stack: Vec<OpenSpan>,
    roots: Vec<SpanNode>,
}

/// Collects one strictly nested span stack.
///
/// Intended ownership: one collector per unit of work, owned by one
/// worker at a time (the engine hands each work item a fresh one), so the
/// internal mutex is never contended.
pub struct SpanCollector {
    origin: Instant,
    state: Mutex<CollectorState>,
}

impl Default for SpanCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanCollector {
    /// A fresh collector; span start offsets are relative to now.
    pub fn new() -> SpanCollector {
        SpanCollector {
            origin: Instant::now(),
            state: Mutex::new(CollectorState::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CollectorState> {
        self.state.lock().expect("span collector lock poisoned")
    }

    /// Open a span as a child of the innermost open span (or as a root).
    pub fn begin(&self, name: &str, cat: &str) {
        let start_ns = self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let mut node = SpanNode::new(name, cat);
        node.start_ns = start_ns;
        self.lock().stack.push(OpenSpan {
            node,
            started: Instant::now(),
        });
    }

    /// Attach a field to the innermost open span (no-op when none is
    /// open).
    pub fn field(&self, key: &str, value: Value) {
        if let Some(open) = self.lock().stack.last_mut() {
            open.node.fields.insert(key.to_string(), value);
        }
    }

    /// Close the innermost open span, recording its elapsed time.
    pub fn end(&self) {
        let mut state = self.lock();
        let Some(mut open) = state.stack.pop() else {
            return;
        };
        open.node.dur_ns = open.started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        match state.stack.last_mut() {
            Some(parent) => parent.node.children.push(open.node),
            None => state.roots.push(open.node),
        }
    }

    /// Drain the completed root spans (closing any still-open spans
    /// first, innermost to outermost).
    pub fn take_roots(&self) -> Vec<SpanNode> {
        while !self.lock().stack.is_empty() {
            self.end();
        }
        std::mem::take(&mut self.lock().roots)
    }
}

/// Guard over one causal span opened through [`crate::Telemetry::causal`]:
/// the span closes when the guard drops. A guard without a collector is a
/// no-op, so instrumentation sites cost nothing when spans are off.
pub struct CausalSpan {
    collector: Option<std::sync::Arc<SpanCollector>>,
}

impl CausalSpan {
    pub(crate) fn open(
        collector: Option<std::sync::Arc<SpanCollector>>,
        name: &str,
        cat: &str,
    ) -> CausalSpan {
        if let Some(c) = &collector {
            c.begin(name, cat);
        }
        CausalSpan { collector }
    }

    /// Attach a field to this span.
    pub fn field(&self, key: &str, value: Value) {
        if let Some(c) = &self.collector {
            c.field(key, value);
        }
    }
}

impl Drop for CausalSpan {
    fn drop(&mut self) {
        if let Some(c) = &self.collector {
            c.end();
        }
    }
}

/// One span in the flattened (DFS preorder) representation.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span id: the node's DFS preorder index.
    pub id: u32,
    /// Parent span id (`None` for the root).
    pub parent: Option<u32>,
    /// Span name.
    pub name: String,
    /// Span category.
    pub cat: String,
    /// Named payload fields.
    pub fields: BTreeMap<String, Value>,
    /// Start offset in nanoseconds (collector-relative).
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// A complete span tree, flattened in DFS preorder (parents precede
/// children, so `parent < id` always holds).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanTree {
    /// The flattened records.
    pub records: Vec<SpanRecord>,
}

impl SpanTree {
    /// Flatten one root node.
    pub fn from_root(root: &SpanNode) -> SpanTree {
        let mut tree = SpanTree::default();
        tree.push(root, None);
        tree
    }

    fn push(&mut self, node: &SpanNode, parent: Option<u32>) {
        let id = self.records.len() as u32;
        self.records.push(SpanRecord {
            id,
            parent,
            name: node.name.clone(),
            cat: node.cat.clone(),
            fields: node.fields.clone(),
            start_ns: node.start_ns,
            dur_ns: node.dur_ns,
        });
        for child in &node.children {
            self.push(child, Some(id));
        }
    }

    /// Assemble the module tree from per-item `(function, pass-subtree)`
    /// pairs, typically arriving in pass-major order (every function under
    /// pass 1, then every function under pass 2, ...).
    ///
    /// Functions are ordered by first appearance (the module's function
    /// order, since the engine scatters results back by function index)
    /// and each function's pass subtrees keep their arrival order — both
    /// orders are schedule-independent, so the assembled structure is
    /// identical at any worker count. Synthesized module/function spans
    /// sum their children's durations.
    pub fn assemble(
        module_name: &str,
        items: impl IntoIterator<Item = (String, SpanNode)>,
    ) -> SpanTree {
        let mut order: Vec<String> = Vec::new();
        let mut by_func: BTreeMap<String, Vec<SpanNode>> = BTreeMap::new();
        for (func, node) in items {
            if !by_func.contains_key(&func) {
                order.push(func.clone());
            }
            by_func.entry(func).or_default().push(node);
        }
        let mut module = SpanNode::new(module_name, "module");
        for func in order {
            let children = by_func.remove(&func).unwrap_or_default();
            let mut fnode = SpanNode::new(format!("@{func}"), "function");
            fnode.start_ns = children.iter().map(|c| c.start_ns).min().unwrap_or(0);
            fnode.dur_ns = children.iter().map(|c| c.dur_ns).sum();
            fnode.children = children;
            module.dur_ns += fnode.dur_ns;
            module.children.push(fnode);
        }
        SpanTree::from_root(&module)
    }

    /// Nesting depth of span `id` (the root has depth 0).
    pub fn depth_of(&self, id: u32) -> usize {
        let mut depth = 0;
        let mut cur = self.records[id as usize].parent;
        while let Some(p) = cur {
            depth += 1;
            cur = self.records[p as usize].parent;
        }
        depth
    }

    /// Maximum nesting depth over all spans.
    pub fn max_depth(&self) -> usize {
        (0..self.records.len() as u32)
            .map(|id| self.depth_of(id))
            .max()
            .unwrap_or(0)
    }

    /// The scheduling-independent view: identical structure, names,
    /// categories, and fields, with every wall-clock measurement zeroed.
    /// This is the span analogue of [`crate::Snapshot::deterministic`]:
    /// serializing it is byte-identical at any `--jobs` count.
    pub fn deterministic(&self) -> SpanTree {
        SpanTree {
            records: self
                .records
                .iter()
                .map(|r| SpanRecord {
                    start_ns: 0,
                    dur_ns: 0,
                    ..r.clone()
                })
                .collect(),
        }
    }

    /// Serialize to the spans-file JSON document.
    pub fn to_json(&self) -> String {
        let spans = Value::Arr(
            self.records
                .iter()
                .map(|r| {
                    let mut obj = BTreeMap::new();
                    obj.insert("id".to_string(), Value::UInt(r.id as u64));
                    obj.insert(
                        "parent".to_string(),
                        match r.parent {
                            Some(p) => Value::UInt(p as u64),
                            None => Value::Null,
                        },
                    );
                    obj.insert("name".to_string(), Value::Str(r.name.clone()));
                    obj.insert("cat".to_string(), Value::Str(r.cat.clone()));
                    obj.insert("start_ns".to_string(), Value::UInt(r.start_ns));
                    obj.insert("dur_ns".to_string(), Value::UInt(r.dur_ns));
                    obj.insert("fields".to_string(), Value::Obj(r.fields.clone()));
                    Value::Obj(obj)
                })
                .collect(),
        );
        let mut root = BTreeMap::new();
        root.insert("spans".to_string(), spans);
        Value::Obj(root).to_json()
    }

    /// Parse a spans-file JSON document.
    pub fn from_json(input: &str) -> Result<SpanTree, String> {
        let root = parse(input).map_err(|e| e.to_string())?;
        let spans = root
            .get("spans")
            .and_then(Value::as_arr)
            .ok_or("spans file has no `spans` array")?;
        let mut records = Vec::with_capacity(spans.len());
        for (i, s) in spans.iter().enumerate() {
            let id = s
                .get("id")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("span {i} has no id"))? as u32;
            let parent = match s.get("parent") {
                Some(Value::Null) | None => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or_else(|| format!("span {i} has a bad parent"))?
                        as u32,
                ),
            };
            let name = s
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("span {i} has no name"))?
                .to_string();
            let cat = s
                .get("cat")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string();
            let fields = s
                .get("fields")
                .and_then(Value::as_obj)
                .cloned()
                .unwrap_or_default();
            records.push(SpanRecord {
                id,
                parent,
                name,
                cat,
                fields,
                start_ns: s.get("start_ns").and_then(Value::as_u64).unwrap_or(0),
                dur_ns: s.get("dur_ns").and_then(Value::as_u64).unwrap_or(0),
            });
        }
        Ok(SpanTree { records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_builds_nested_trees() {
        let c = SpanCollector::new();
        c.begin("gvn", "pass");
        c.begin("pcheck", "phase");
        c.begin("row entry.0", "proof");
        c.end();
        c.field("verdict", Value::Str("valid".into()));
        c.end();
        c.end();
        let roots = c.take_roots();
        assert_eq!(roots.len(), 1);
        let pass = &roots[0];
        assert_eq!((pass.name.as_str(), pass.cat.as_str()), ("gvn", "pass"));
        assert_eq!(pass.children.len(), 1);
        let pcheck = &pass.children[0];
        assert_eq!(pcheck.fields["verdict"], Value::Str("valid".into()));
        assert_eq!(pcheck.children[0].name, "row entry.0");
        assert_eq!(pass.size(), 3);
    }

    #[test]
    fn take_roots_closes_open_spans() {
        let c = SpanCollector::new();
        c.begin("a", "pass");
        c.begin("b", "phase");
        let roots = c.take_roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].children.len(), 1);
        assert!(c.take_roots().is_empty());
    }

    #[test]
    fn flatten_preserves_preorder_and_parents() {
        let mut root = SpanNode::new("m", "module");
        let mut f = SpanNode::new("@f", "function");
        f.children.push(SpanNode::new("gvn", "pass"));
        root.children.push(f);
        root.children.push(SpanNode::new("@g", "function"));
        let tree = SpanTree::from_root(&root);
        let names: Vec<&str> = tree.records.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["m", "@f", "gvn", "@g"]);
        assert_eq!(tree.records[2].parent, Some(1));
        assert_eq!(tree.records[3].parent, Some(0));
        assert_eq!(tree.max_depth(), 2);
        assert_eq!(tree.depth_of(2), 2);
    }

    #[test]
    fn assemble_groups_pass_major_items_by_function() {
        let item = |pass: &str, ns: u64| {
            let mut n = SpanNode::new(pass, "pass");
            n.dur_ns = ns;
            n
        };
        // Pass-major arrival: (p1,f), (p1,g), (p2,f), (p2,g).
        let tree = SpanTree::assemble(
            "m",
            vec![
                ("f".to_string(), item("mem2reg", 5)),
                ("g".to_string(), item("mem2reg", 7)),
                ("f".to_string(), item("gvn", 11)),
                ("g".to_string(), item("gvn", 13)),
            ],
        );
        let names: Vec<&str> = tree.records.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["m", "@f", "mem2reg", "gvn", "@g", "mem2reg", "gvn"]);
        assert_eq!(tree.records[1].dur_ns, 16);
        assert_eq!(tree.records[0].dur_ns, 36);
    }

    #[test]
    fn json_roundtrip_and_deterministic_view() {
        let c = SpanCollector::new();
        c.begin("gvn", "pass");
        c.field("proof_bytes", Value::Int(123));
        c.end();
        let tree = SpanTree::assemble(
            "m",
            c.take_roots().into_iter().map(|n| ("f".to_string(), n)),
        );
        let back = SpanTree::from_json(&tree.to_json()).unwrap();
        assert_eq!(back, tree);
        let det = tree.deterministic();
        assert!(det.records.iter().all(|r| r.start_ns == 0 && r.dur_ns == 0));
        assert_eq!(det.records.len(), tree.records.len());
        assert_eq!(det.deterministic().to_json(), det.to_json());
    }
}
