//! Cost profiles folded from causal span trees: where validation time
//! goes, at phase → pass → inference-rule granularity.
//!
//! The paper's Fig 6/8 time columns answer "how much"; a [`Profile`]
//! answers "where". It folds a [`SpanTree`](crate::SpanTree) into
//! aggregated stacks keyed by the full frame path (module → function →
//! pass → phase → proof command → rule), attributing to every stack:
//!
//! * **total weight** — the summed duration (or span count) of all spans
//!   at that exact stack;
//! * **self weight** — total minus the children's totals (clamped at
//!   zero), i.e. time spent *in* the frame rather than below it;
//! * **attribution** — every numeric span field summed per stack
//!   (`proof_bytes`, `intern_hits`, `intern_misses`, ...).
//!
//! Two weight models mirror the workspace's determinism contract:
//!
//! * [`ProfileWeight::Time`] — nanoseconds, the flamegraph view. Varies
//!   run to run like any wall-clock measurement.
//! * [`ProfileWeight::Cost`] — one unit per recorded span (a phase
//!   execution, a proof command, a rule application). A pure function of
//!   the proof, so the folded output is **byte-identical at any `--jobs`
//!   count** — the profile analogue of
//!   [`Snapshot::deterministic`](crate::Snapshot::deterministic).
//!
//! [`Profile::folded`] emits the collapsed-stack format
//! (`frame;frame;frame weight`) consumed by `inferno` and
//! `flamegraph.pl`; [`Profile::top_table`] renders the top-N self-weight
//! table behind `crellvm report --format profile`.

use crate::span::SpanTree;
use std::collections::BTreeMap;
use std::fmt::Write;

/// The weight model a profile view is rendered under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileWeight {
    /// Recorded wall-clock nanoseconds (varies run to run).
    Time,
    /// One unit per span: a deterministic work count, byte-identical at
    /// any thread count.
    Cost,
}

/// One aggregated stack of a folded profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEntry {
    /// The frame path from the root, sanitized for the folded format.
    pub stack: Vec<String>,
    /// Category of the leaf frame (`module`, `pass`, `phase`, `proof`,
    /// `rule`, ...).
    pub cat: String,
    /// Summed duration of all spans at this stack.
    pub total_ns: u64,
    /// Summed self time: duration minus children's durations.
    pub self_ns: u64,
    /// Number of spans folded into this stack.
    pub count: u64,
    /// Numeric span fields summed over the folded spans.
    pub attrs: BTreeMap<String, u64>,
}

impl ProfileEntry {
    /// The entry's self weight under a model.
    pub fn self_weight(&self, weight: ProfileWeight) -> u64 {
        match weight {
            ProfileWeight::Time => self.self_ns,
            ProfileWeight::Cost => self.count,
        }
    }
}

/// A cost profile: aggregated stacks in lexicographic stack order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// The aggregated stacks, sorted by frame path.
    pub entries: Vec<ProfileEntry>,
}

/// Folded-format frame sanitization: the format reserves `;` as the
/// frame separator and newline as the record separator, and the weight
/// is the last space-separated token — so spaces inside frames are fine,
/// but separators are not.
fn frame(name: &str) -> String {
    name.replace(';', ",").replace(['\n', '\r'], " ")
}

impl Profile {
    /// Fold a span tree into a profile.
    pub fn from_tree(tree: &SpanTree) -> Profile {
        // Children's summed duration per span id, for self-time.
        let mut child_ns = vec![0u64; tree.records.len()];
        for r in &tree.records {
            if let Some(p) = r.parent {
                child_ns[p as usize] += r.dur_ns;
            }
        }
        // Frame path per span id, built in DFS preorder (parents precede
        // children in the flattened representation).
        let mut paths: Vec<Vec<String>> = Vec::with_capacity(tree.records.len());
        let mut agg: BTreeMap<Vec<String>, ProfileEntry> = BTreeMap::new();
        for r in &tree.records {
            let mut path = match r.parent {
                Some(p) => paths[p as usize].clone(),
                None => Vec::new(),
            };
            path.push(frame(&r.name));
            paths.push(path.clone());

            let entry = agg.entry(path.clone()).or_insert_with(|| ProfileEntry {
                stack: path,
                cat: r.cat.clone(),
                total_ns: 0,
                self_ns: 0,
                count: 0,
                attrs: BTreeMap::new(),
            });
            entry.total_ns += r.dur_ns;
            entry.self_ns += r.dur_ns.saturating_sub(child_ns[r.id as usize]);
            entry.count += 1;
            for (k, v) in &r.fields {
                if let Some(n) = v.as_u64() {
                    *entry.attrs.entry(k.clone()).or_insert(0) += n;
                }
            }
        }
        Profile {
            entries: agg.into_values().collect(),
        }
    }

    /// The collapsed-stack flamegraph lines: one `a;b;c weight` line per
    /// stack with a nonzero self weight, in lexicographic stack order.
    /// Under [`ProfileWeight::Cost`] every stack appears (each folded at
    /// least one span) and the output is byte-identical at any thread
    /// count.
    pub fn folded(&self, weight: ProfileWeight) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let w = e.self_weight(weight);
            if w == 0 {
                continue;
            }
            let _ = writeln!(out, "{} {w}", e.stack.join(";"));
        }
        out
    }

    /// Total root weight: the summed total weight of the root stacks
    /// (for [`ProfileWeight::Time`]) or the total span count (for
    /// [`ProfileWeight::Cost`]). Because every span's duration is
    /// contained in its parent's, this equals the sum of all folded self
    /// weights exactly.
    pub fn root_total(&self, weight: ProfileWeight) -> u64 {
        match weight {
            ProfileWeight::Time => self
                .entries
                .iter()
                .filter(|e| e.stack.len() == 1)
                .map(|e| e.total_ns)
                .sum(),
            ProfileWeight::Cost => self.entries.iter().map(|e| e.count).sum(),
        }
    }

    /// Aggregate per leaf frame `(name, cat)`: summed self weight, total
    /// weight, span count, and attribution fields, sorted by self weight
    /// (descending, then by name for ties).
    fn rollup(&self, weight: ProfileWeight) -> Vec<FrameStat> {
        let mut by_frame: BTreeMap<(String, String), FrameStat> = BTreeMap::new();
        for e in &self.entries {
            let leaf = e.stack.last().cloned().unwrap_or_default();
            let stat = by_frame
                .entry((leaf.clone(), e.cat.clone()))
                .or_insert_with(|| FrameStat {
                    frame: leaf,
                    cat: e.cat.clone(),
                    self_weight: 0,
                    total_weight: 0,
                    count: 0,
                    attrs: BTreeMap::new(),
                });
            stat.self_weight += e.self_weight(weight);
            stat.total_weight += match weight {
                ProfileWeight::Time => e.total_ns,
                ProfileWeight::Cost => e.count,
            };
            stat.count += e.count;
            for (k, v) in &e.attrs {
                *stat.attrs.entry(k.clone()).or_insert(0) += v;
            }
        }
        let mut stats: Vec<FrameStat> = by_frame.into_values().collect();
        stats.sort_by(|a, b| {
            b.self_weight
                .cmp(&a.self_weight)
                .then_with(|| a.frame.cmp(&b.frame))
                .then_with(|| a.cat.cmp(&b.cat))
        });
        stats
    }

    /// The top-N self-weight table (`crellvm report --format profile`).
    /// Frames are aggregated by `(name, category)` over every stack they
    /// appear in; attribution fields are appended after the frame name.
    pub fn top_table(&self, weight: ProfileWeight, top: usize) -> String {
        let stats = self.rollup(weight);
        let shown = stats.len().min(top.max(1));
        let mut out = String::new();
        let (self_h, total_h) = match weight {
            ProfileWeight::Time => ("self(ms)", "total(ms)"),
            ProfileWeight::Cost => ("self", "total"),
        };
        let _ = writeln!(
            out,
            "{self_h:>10} {total_h:>10} {spans:>8}  {cat:<10} frame",
            spans = "spans",
            cat = "category",
        );
        for s in &stats[..shown] {
            let (sw, tw) = match weight {
                ProfileWeight::Time => (
                    format!("{:.2}", s.self_weight as f64 / 1e6),
                    format!("{:.2}", s.total_weight as f64 / 1e6),
                ),
                ProfileWeight::Cost => (s.self_weight.to_string(), s.total_weight.to_string()),
            };
            let _ = write!(
                out,
                "{sw:>10} {tw:>10} {:>8}  {:<10} {}",
                s.count, s.cat, s.frame
            );
            for (k, v) in &s.attrs {
                let _ = write!(out, " {k}={v}");
            }
            let _ = writeln!(out);
        }
        if stats.len() > shown {
            let _ = writeln!(
                out,
                "... ({} more frames; raise --top)",
                stats.len() - shown
            );
        }
        out
    }
}

/// Per-frame aggregate behind [`Profile::top_table`].
struct FrameStat {
    frame: String,
    cat: String,
    self_weight: u64,
    total_weight: u64,
    count: u64,
    attrs: BTreeMap<String, u64>,
}

/// Convenience: numeric field extraction shared with the folding loop.
impl ProfileEntry {
    /// A named attribution value (0 when absent).
    pub fn attr(&self, key: &str) -> u64 {
        self.attrs.get(key).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;
    use crate::span::{SpanNode, SpanTree};

    /// module(m) -> function(@f) -> pass(gvn) -> {phase(pcheck) ->
    /// proof(row) -> rule(x2)}; durations chosen so self-times are
    /// distinguishable.
    fn tree() -> SpanTree {
        let mut rule1 = SpanNode::new("add_commutative", "rule");
        rule1.dur_ns = 10;
        let mut rule2 = SpanNode::new("add_commutative", "rule");
        rule2.dur_ns = 20;
        let mut row = SpanNode::new("block entry, row 0", "proof");
        row.dur_ns = 50;
        row.fields.insert("intern_hits".into(), Value::UInt(7));
        row.children = vec![rule1, rule2];
        let mut pcheck = SpanNode::new("pcheck", "phase");
        pcheck.dur_ns = 80;
        pcheck.children = vec![row];
        let mut pass = SpanNode::new("gvn", "pass");
        pass.dur_ns = 100;
        pass.fields.insert("proof_bytes".into(), Value::UInt(321));
        pass.children = vec![pcheck];
        let mut f = SpanNode::new("@f", "function");
        f.dur_ns = 100;
        f.children = vec![pass];
        let mut m = SpanNode::new("m", "module");
        m.dur_ns = 100;
        m.children = vec![f];
        SpanTree::from_root(&m)
    }

    #[test]
    fn folds_self_time_and_merges_same_stack_spans() {
        let p = Profile::from_tree(&tree());
        let find = |leaf: &str| {
            p.entries
                .iter()
                .find(|e| e.stack.last().map(String::as_str) == Some(leaf))
                .unwrap()
        };
        // The two rule spans fold into one stack.
        let rules = find("add_commutative");
        assert_eq!(rules.count, 2);
        assert_eq!(rules.total_ns, 30);
        assert_eq!(rules.self_ns, 30);
        // The row's self time excludes its rules.
        let row = find("block entry, row 0");
        assert_eq!(row.self_ns, 20);
        assert_eq!(row.attr("intern_hits"), 7);
        // Module and function frames are pure parents: zero self time.
        assert_eq!(find("m").self_ns, 0);
        assert_eq!(find("@f").self_ns, 0);
        assert_eq!(find("gvn").attr("proof_bytes"), 321);
    }

    #[test]
    fn folded_self_weights_sum_to_the_root_total() {
        let p = Profile::from_tree(&tree());
        for weight in [ProfileWeight::Time, ProfileWeight::Cost] {
            let sum: u64 = p
                .folded(weight)
                .lines()
                .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
                .sum();
            assert_eq!(sum, p.root_total(weight));
        }
        assert_eq!(p.root_total(ProfileWeight::Time), 100);
        assert_eq!(p.root_total(ProfileWeight::Cost), 7);
    }

    #[test]
    fn folded_lines_are_sorted_and_separator_free() {
        let mut bad = SpanNode::new("a;b\nc", "proof");
        bad.dur_ns = 5;
        let mut root = SpanNode::new("m", "module");
        root.dur_ns = 5;
        root.children = vec![bad];
        let p = Profile::from_tree(&SpanTree::from_root(&root));
        let folded = p.folded(ProfileWeight::Cost);
        assert!(folded.contains("m;a,b c 1"), "{folded}");
        let lines: Vec<&str> = folded.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "folded output must be sorted");
    }

    #[test]
    fn top_table_ranks_by_self_weight_and_caps_rows() {
        let p = Profile::from_tree(&tree());
        let table = p.top_table(ProfileWeight::Cost, 2);
        let mut lines = table.lines();
        let header = lines.next().unwrap();
        assert!(header.contains("frame"), "{header}");
        // Highest self-cost frames first: the 2-application rule stack.
        let first = lines.next().unwrap();
        assert!(first.contains("add_commutative"), "{first}");
        assert!(table.contains("more frames"), "{table}");
        // Attribution fields ride along.
        let full = p.top_table(ProfileWeight::Time, 50);
        assert!(full.contains("proof_bytes=321"), "{full}");
        assert!(!full.contains("more frames"));
    }
}
