//! Failure-forensics primitives: the failure-class taxonomy, the
//! delta-debugging minimizer, and the replayable bundle format.
//!
//! This module is deliberately checker-agnostic (the telemetry crate sits
//! *below* `crellvm-core` in the dependency graph): classification works on
//! the checker's `(at, reason)` strings, minimization on an abstract
//! keep-mask oracle, and the bundle carries the proof as an opaque JSON
//! payload. `crellvm-core::forensics` binds all three to real proof units.

use std::collections::BTreeMap;
use std::fmt;

use crate::json::{parse, Value};

/// The failure taxonomy: what *kind* of evidence a checker rejection is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FailureClass {
    /// An explicit inference rule failed to apply (missing premise or
    /// violated side condition).
    RuleMismatch,
    /// The inclusion check failed: a lessdef/maydiff fact needed by the
    /// goal assertion is not derivable.
    MissingLessdef,
    /// The behaviours diverge through a trapping / poison / undef value
    /// escaping into an observable position.
    PoisonEscape,
    /// A phi-edge assertion does not hold (wrong phi shape or missing
    /// edge facts).
    PhiShape,
    /// The proof itself is malformed (CFG/alignment/entry-assertion
    /// problems) or the failure fits no other class.
    Internal,
}

impl FailureClass {
    /// Stable kebab-case name, used in bundles and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            FailureClass::RuleMismatch => "rule-mismatch",
            FailureClass::MissingLessdef => "missing-lessdef",
            FailureClass::PoisonEscape => "poison-escape",
            FailureClass::PhiShape => "phi-shape",
            FailureClass::Internal => "internal",
        }
    }

    /// Inverse of [`FailureClass::as_str`].
    pub fn parse(s: &str) -> Option<FailureClass> {
        Some(match s {
            "rule-mismatch" => FailureClass::RuleMismatch,
            "missing-lessdef" => FailureClass::MissingLessdef,
            "poison-escape" => FailureClass::PoisonEscape,
            "phi-shape" => FailureClass::PhiShape,
            "internal" => FailureClass::Internal,
            _ => return None,
        })
    }

    /// Classify a checker rejection from its position and reason strings.
    ///
    /// The precedence mirrors the checker's own phases: structural
    /// (CheckCFG / CheckInit) problems are internal regardless of wording;
    /// an explicit rule failure names itself; trapping/poison/undef
    /// wording wins over the generic inclusion wording; a failing edge
    /// discharge is a phi-shape problem; any remaining underivable-fact
    /// wording is a missing lessdef.
    pub fn classify(at: &str, reason: &str) -> FailureClass {
        if at.starts_with("CheckCFG") || at.starts_with("CheckInit") {
            return FailureClass::Internal;
        }
        if reason.contains("inference rule") {
            return FailureClass::RuleMismatch;
        }
        if reason.contains("trap") || reason.contains("poison") || reason.contains("undef") {
            return FailureClass::PoisonEscape;
        }
        if at.starts_with("edge ") {
            return FailureClass::PhiShape;
        }
        if reason.contains("not derivable")
            || reason.contains("may differ")
            || reason.contains("behaviours not equivalent")
            || reason.contains("inclusion check failed")
        {
            return FailureClass::MissingLessdef;
        }
        FailureClass::Internal
    }
}

impl fmt::Display for FailureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Delta-debug a set of `n` items down to a 1-minimal subset.
///
/// `test(keep)` receives a keep-mask of length `n` and must report whether
/// the configuration keeping exactly the masked items still *reproduces*
/// (for proof minimization: the reduced proof still fails in the same
/// failure class). The full mask is assumed to reproduce. Returns the
/// minimized keep-mask — 1-minimal in the ddmin sense: removing any single
/// remaining item stops reproduction.
///
/// The oracle is called O(n²) times in the worst case; forensic bundles are
/// built once per failure, off the validation hot path.
pub fn ddmin(n: usize, mut test: impl FnMut(&[bool]) -> bool) -> Vec<bool> {
    let mask_of = |keep: &[usize]| {
        let mut mask = vec![false; n];
        for &i in keep {
            mask[i] = true;
        }
        mask
    };
    let mut current: Vec<usize> = (0..n).collect();
    if n == 0 {
        return Vec::new();
    }
    // Classic ddmin never tests the empty configuration, but for proof
    // commands it is meaningful: a failure that reproduces with no
    // commands at all needs none of them in the repro.
    if test(&vec![false; n]) {
        return vec![false; n];
    }
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let chunks: Vec<Vec<usize>> = current.chunks(chunk).map(<[usize]>::to_vec).collect();
        let mut reduced = false;
        // Try each chunk alone ("reduce to subset")…
        for c in &chunks {
            if c.len() < current.len() && test(&mask_of(c)) {
                current = c.to_vec();
                granularity = 2;
                reduced = true;
                break;
            }
        }
        // …then each chunk's complement ("reduce to complement").
        if !reduced && granularity > 2 {
            for skip in 0..chunks.len() {
                let complement: Vec<usize> = chunks
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .flat_map(|(_, c)| c.iter().copied())
                    .collect();
                if complement.len() < current.len() && test(&mask_of(&complement)) {
                    current = complement;
                    granularity = (granularity - 1).max(2);
                    reduced = true;
                    break;
                }
            }
        }
        if !reduced {
            if granularity >= current.len() {
                break;
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    mask_of(&current)
}

/// A self-contained, replayable record of one checker rejection.
///
/// Everything a developer needs to diagnose the failure without the
/// original compilation session: the classified verdict, the failing
/// assertion, the recent rule history, the IR slice on both sides, the
/// canonical proof-command list with its delta-debugged minimal core, and
/// the full proof unit (as opaque JSON) for replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ForensicBundle {
    /// Bundle format version (currently 1).
    pub version: u32,
    /// Pass that produced the rejected proof.
    pub pass: String,
    /// Function being validated.
    pub func: String,
    /// Failing position (block/row/edge), verbatim from the checker.
    pub at: String,
    /// The checker's logical reason, verbatim.
    pub reason: String,
    /// Classified failure class.
    pub class: FailureClass,
    /// Rendered `have ⇏ want` assertion pair at the failure point, when
    /// the failure happened inside a discharge.
    pub failing_assertion: Option<String>,
    /// The last-K inference rules the checker applied before rejecting.
    pub rule_history: Vec<String>,
    /// Source-side IR of the failing function.
    pub src_ir: String,
    /// Target-side IR of the failing function.
    pub tgt_ir: String,
    /// Human-readable labels of every proof command, in canonical order.
    pub commands: Vec<String>,
    /// Indices into `commands` forming the delta-debugged minimal set
    /// that still reproduces `class`.
    pub minimized: Vec<usize>,
    /// The full proof unit as JSON (replayable via
    /// `crellvm-core::forensics::replay`).
    pub proof_json: String,
    /// On-the-wire proof format name of the session that produced the
    /// bundle (`"json"`, `"binary-v1"`, or `"binary-v2"`). The proof in
    /// the bundle itself is always JSON for replayability; this records
    /// which transport encoding the failing proof actually travelled in.
    pub wire_format: String,
}

impl ForensicBundle {
    /// Serialize to the bundle JSON document.
    pub fn to_json(&self) -> String {
        let mut obj = BTreeMap::new();
        obj.insert("version".to_string(), Value::UInt(self.version as u64));
        obj.insert("pass".to_string(), Value::Str(self.pass.clone()));
        obj.insert("func".to_string(), Value::Str(self.func.clone()));
        obj.insert("at".to_string(), Value::Str(self.at.clone()));
        obj.insert("reason".to_string(), Value::Str(self.reason.clone()));
        obj.insert(
            "class".to_string(),
            Value::Str(self.class.as_str().to_string()),
        );
        obj.insert(
            "failing_assertion".to_string(),
            match &self.failing_assertion {
                Some(s) => Value::Str(s.clone()),
                None => Value::Null,
            },
        );
        obj.insert(
            "rule_history".to_string(),
            Value::Arr(
                self.rule_history
                    .iter()
                    .map(|s| Value::Str(s.clone()))
                    .collect(),
            ),
        );
        obj.insert("src_ir".to_string(), Value::Str(self.src_ir.clone()));
        obj.insert("tgt_ir".to_string(), Value::Str(self.tgt_ir.clone()));
        obj.insert(
            "commands".to_string(),
            Value::Arr(
                self.commands
                    .iter()
                    .map(|s| Value::Str(s.clone()))
                    .collect(),
            ),
        );
        obj.insert(
            "minimized".to_string(),
            Value::Arr(
                self.minimized
                    .iter()
                    .map(|i| Value::UInt(*i as u64))
                    .collect(),
            ),
        );
        obj.insert(
            "proof_json".to_string(),
            Value::Str(self.proof_json.clone()),
        );
        obj.insert(
            "wire_format".to_string(),
            Value::Str(self.wire_format.clone()),
        );
        Value::Obj(obj).to_json()
    }

    /// Parse a bundle JSON document.
    pub fn from_json(input: &str) -> Result<ForensicBundle, String> {
        let root = parse(input).map_err(|e| e.to_string())?;
        let str_field = |key: &str| -> Result<String, String> {
            root.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("bundle is missing `{key}`"))
        };
        let str_list = |key: &str| -> Vec<String> {
            root.get(key)
                .and_then(Value::as_arr)
                .map(|items| {
                    items
                        .iter()
                        .filter_map(Value::as_str)
                        .map(str::to_string)
                        .collect()
                })
                .unwrap_or_default()
        };
        let class_name = str_field("class")?;
        let class = FailureClass::parse(&class_name)
            .ok_or_else(|| format!("unknown failure class `{class_name}`"))?;
        Ok(ForensicBundle {
            version: root.get("version").and_then(Value::as_u64).unwrap_or(1) as u32,
            pass: str_field("pass")?,
            func: str_field("func")?,
            at: str_field("at")?,
            reason: str_field("reason")?,
            class,
            failing_assertion: root
                .get("failing_assertion")
                .and_then(Value::as_str)
                .map(str::to_string),
            rule_history: str_list("rule_history"),
            src_ir: str_field("src_ir").unwrap_or_default(),
            tgt_ir: str_field("tgt_ir").unwrap_or_default(),
            commands: str_list("commands"),
            minimized: root
                .get("minimized")
                .and_then(Value::as_arr)
                .map(|items| {
                    items
                        .iter()
                        .filter_map(Value::as_u64)
                        .map(|i| i as usize)
                        .collect()
                })
                .unwrap_or_default(),
            proof_json: str_field("proof_json")?,
            wire_format: root
                .get("wire_format")
                .and_then(Value::as_str)
                .unwrap_or("json")
                .to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_taxonomy() {
        use FailureClass::*;
        assert_eq!(
            FailureClass::classify("CheckCFG", "block counts differ"),
            Internal
        );
        assert_eq!(
            FailureClass::classify(
                "CheckInit (entry assertion)",
                "source assumes a non-trivial fact at entry"
            ),
            Internal
        );
        assert_eq!(
            FailureClass::classify(
                "block entry, row 1",
                "inference rule AddAssoc failed: premise missing"
            ),
            RuleMismatch
        );
        assert_eq!(
            FailureClass::classify(
                "block entry, row 0",
                "behaviours not equivalent: target loads a trapping constant"
            ),
            PoisonEscape
        );
        assert_eq!(
            FailureClass::classify(
                "edge entry -> loop",
                "source predicate not derivable: %x >= %y"
            ),
            PhiShape
        );
        assert_eq!(
            FailureClass::classify(
                "block entry, row 2",
                "source predicate not derivable: %x >= %y"
            ),
            MissingLessdef
        );
        assert_eq!(
            FailureClass::classify("terminator of block entry", "terminator kinds differ"),
            Internal
        );
        for c in [
            RuleMismatch,
            MissingLessdef,
            PoisonEscape,
            PhiShape,
            Internal,
        ] {
            assert_eq!(FailureClass::parse(c.as_str()), Some(c));
        }
    }

    #[test]
    fn ddmin_finds_a_single_culprit() {
        let culprit = 13usize;
        let mut calls = 0;
        let keep = ddmin(20, |mask| {
            calls += 1;
            mask[culprit]
        });
        assert_eq!(keep.iter().filter(|k| **k).count(), 1);
        assert!(keep[culprit]);
        assert!(calls < 200, "ddmin made {calls} oracle calls");
    }

    #[test]
    fn ddmin_finds_a_pair_spanning_both_halves() {
        // Items 2 and 17 are needed together: subset reduction alone cannot
        // isolate them (they sit in different halves), so the complement
        // phase has to kick in.
        let keep = ddmin(20, |mask| mask[2] && mask[17]);
        let kept: Vec<usize> = keep
            .iter()
            .enumerate()
            .filter(|(_, k)| **k)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(kept, vec![2, 17]);
    }

    #[test]
    fn ddmin_keeps_everything_when_nothing_is_removable() {
        let keep = ddmin(5, |mask| mask.iter().all(|k| *k));
        assert!(keep.iter().all(|k| *k));
        assert!(ddmin(0, |_| true).is_empty());
    }

    #[test]
    fn bundle_roundtrips_through_json() {
        let bundle = ForensicBundle {
            version: 1,
            pass: "gvn".into(),
            func: "main".into(),
            at: "block entry, row 3".into(),
            reason: "source predicate not derivable: %x >= %y".into(),
            class: FailureClass::MissingLessdef,
            failing_assertion: Some("have: src {} | tgt {} | MD()\nwant: …".into()),
            rule_history: vec!["transitivity @ block entry, row 2".into()],
            src_ir: "define @main() {...}".into(),
            tgt_ir: "define @main() {...}".into(),
            commands: vec!["rule a".into(), "rule b".into(), "auto Transitivity".into()],
            minimized: vec![1],
            proof_json: "{\"pass\":\"gvn\"}".into(),
            wire_format: "binary-v2".into(),
        };
        let back = ForensicBundle::from_json(&bundle.to_json()).unwrap();
        assert_eq!(back, bundle);
        assert!(ForensicBundle::from_json("{}").is_err());
        assert!(ForensicBundle::from_json("not json").is_err());
    }

    #[test]
    fn bundle_wire_format_defaults_to_json_for_old_documents() {
        // A v1 bundle document written before `wire_format` existed must
        // still parse, with the transport defaulted to "json".
        let bundle = ForensicBundle {
            version: 1,
            pass: "gvn".into(),
            func: "main".into(),
            at: "block entry, row 3".into(),
            reason: "r".into(),
            class: FailureClass::Internal,
            failing_assertion: None,
            rule_history: Vec::new(),
            src_ir: String::new(),
            tgt_ir: String::new(),
            commands: Vec::new(),
            minimized: Vec::new(),
            proof_json: "{}".into(),
            wire_format: "json".into(),
        };
        let mut doc = bundle.to_json();
        let needle = ",\"wire_format\":\"json\"";
        assert!(doc.contains(needle));
        doc = doc.replace(needle, "");
        let back = ForensicBundle::from_json(&doc).unwrap();
        assert_eq!(back, bundle);
    }
}
