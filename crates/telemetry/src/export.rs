//! Standard-format exporters: OpenMetrics text for registry snapshots and
//! Chrome `trace_event` JSON (loadable in Perfetto / `chrome://tracing`)
//! for causal span trees.
//!
//! Both formats are emitted from the already-deterministic in-memory
//! structures ([`Snapshot`], [`SpanTree`]), so exporting never perturbs the
//! pipeline being observed.

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::json::Value;
use crate::registry::Snapshot;
use crate::span::SpanTree;

/// Map a dotted metric name (`checker.rule.add_assoc`) to an
/// OpenMetrics-legal one (`checker_rule_add_assoc`).
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Inclusive upper bound of log₂ bucket `i` as an OpenMetrics `le` label
/// value (bucket 0 is exactly zero; bucket `i` holds values of bit length
/// `i`, so its upper bound is `2^i - 1`).
fn bucket_le(i: u32) -> String {
    if i == 0 {
        "0".to_string()
    } else {
        ((1u128 << i) - 1).to_string()
    }
}

/// Render a snapshot in the OpenMetrics text exposition format.
///
/// Counters become `<name>_total` samples, gauges become `gauge` families
/// sampled at their last value, histograms become cumulative
/// `<name>_bucket{le="..."}` series plus `_sum`/`_count`, and timers become
/// `<name>_seconds` counters (with a matching `<name>_spans` count). The
/// output always terminates with the mandatory `# EOF` line.
pub fn openmetrics(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n}_total {v}");
    }
    for (name, v) in &snap.gauges {
        let n = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, h) in &snap.histograms {
        let n = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cum = 0u64;
        for (i, c) in &h.buckets {
            cum += c;
            let _ = writeln!(out, "{n}_bucket{{le=\"{}\"}} {cum}", bucket_le(*i));
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    for (name, t) in &snap.timers {
        let n = sanitize_metric_name(name);
        let secs = t.total_nanos as f64 / 1e9;
        let _ = writeln!(out, "# TYPE {n}_seconds counter");
        let _ = writeln!(out, "# UNIT {n}_seconds seconds");
        let _ = writeln!(out, "{n}_seconds_total {secs}");
        let _ = writeln!(out, "# TYPE {n}_spans counter");
        let _ = writeln!(out, "{n}_spans_total {}", t.count);
    }
    out.push_str("# EOF\n");
    out
}

/// Render a span tree as Chrome `trace_event` JSON (one complete-event
/// `"ph":"X"` entry per span, single pid/tid).
///
/// Spans from different workers were timed on incomparable clocks, so the
/// exporter lays the tree out on a *synthetic* timeline: a leaf's width is
/// its recorded duration (at least one microsecond tick) and a parent's
/// width is the sum of its children's, with children placed back to back
/// from the parent's start. This guarantees every child interval is
/// strictly contained in its parent's, so the viewer's nesting depths
/// reproduce the span tree exactly; the real measured duration of every
/// span is preserved in `args.recorded_dur_ns`.
///
/// When the tree's root span carries a `trace_id` field (the serving
/// daemon stamps one per admitted request), every event gets a stable
/// top-level `id` and an `args.trace_id`, so the causal trees of a single
/// request correlate across workers and across span-log lines in
/// `about://tracing` / Perfetto.
pub fn chrome_trace(tree: &SpanTree) -> String {
    let n = tree.records.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut roots: Vec<usize> = Vec::new();
    for (i, r) in tree.records.iter().enumerate() {
        match r.parent {
            Some(p) => children[p as usize].push(i),
            None => roots.push(i),
        }
    }
    // Synthetic widths, children before parents (reverse preorder).
    let mut width = vec![0u64; n];
    for i in (0..n).rev() {
        width[i] = if children[i].is_empty() {
            (tree.records[i].dur_ns / 1_000).max(1)
        } else {
            children[i].iter().map(|&c| width[c]).sum()
        };
    }
    // Synthetic start ticks, parents before children (preorder).
    let mut ts = vec![0u64; n];
    let mut cursor = 0u64;
    for &r in &roots {
        ts[r] = cursor;
        cursor += width[r];
    }
    for i in 0..n {
        let mut offset = ts[i];
        for &c in &children[i] {
            ts[c] = offset;
            offset += width[c];
        }
    }
    // A request-scoped trace id on the root span propagates to every
    // event, giving the whole causal tree one stable correlation key.
    let trace_id = tree
        .records
        .iter()
        .find(|r| r.parent.is_none())
        .and_then(|r| r.fields.get("trace_id"))
        .and_then(Value::as_str)
        .map(str::to_string);
    let events: Vec<Value> = tree
        .records
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut args = r.fields.clone();
            args.insert("recorded_dur_ns".to_string(), Value::UInt(r.dur_ns));
            args.insert("span_id".to_string(), Value::UInt(r.id as u64));
            if let Some(p) = r.parent {
                args.insert("span_parent".to_string(), Value::UInt(p as u64));
            }
            let mut ev = BTreeMap::new();
            ev.insert("name".to_string(), Value::Str(r.name.clone()));
            ev.insert("cat".to_string(), Value::Str(r.cat.clone()));
            ev.insert("ph".to_string(), Value::Str("X".to_string()));
            ev.insert("ts".to_string(), Value::UInt(ts[i]));
            ev.insert("dur".to_string(), Value::UInt(width[i]));
            ev.insert("pid".to_string(), Value::UInt(1));
            ev.insert("tid".to_string(), Value::UInt(1));
            if let Some(tid) = &trace_id {
                args.insert("trace_id".to_string(), Value::Str(tid.clone()));
                ev.insert("id".to_string(), Value::Str(format!("{tid}.{}", r.id)));
            }
            ev.insert("args".to_string(), Value::Obj(args));
            Value::Obj(ev)
        })
        .collect();
    let mut root = BTreeMap::new();
    root.insert("traceEvents".to_string(), Value::Arr(events));
    root.insert("displayTimeUnit".to_string(), Value::Str("ms".to_string()));
    Value::Obj(root).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanNode;
    use crate::Registry;
    use std::time::Duration;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_metric_name("checker.rule.x"), "checker_rule_x");
        assert_eq!(sanitize_metric_name("3bad"), "_3bad");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn openmetrics_has_all_families_and_eof() {
        let r = Registry::new();
        r.add("pipeline.validated", 4);
        r.observe("checker.assertion_preds", 0);
        r.observe("checker.assertion_preds", 5);
        r.record_duration("time.pcheck", Duration::from_millis(2));
        let text = openmetrics(&r.snapshot());
        assert!(text.ends_with("# EOF\n"));
        assert!(text.contains("# TYPE pipeline_validated counter\n"));
        assert!(text.contains("pipeline_validated_total 4\n"));
        assert!(text.contains("# TYPE checker_assertion_preds histogram\n"));
        assert!(text.contains("checker_assertion_preds_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("checker_assertion_preds_bucket{le=\"7\"} 2\n"));
        assert!(text.contains("checker_assertion_preds_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("checker_assertion_preds_sum 5\n"));
        assert!(text.contains("checker_assertion_preds_count 2\n"));
        assert!(text.contains("# UNIT time_pcheck_seconds seconds\n"));
        assert!(text.contains("time_pcheck_spans_total 1\n"));
    }

    #[test]
    fn openmetrics_emits_gauge_families() {
        let r = Registry::new();
        r.gauge_set("serve.queue_depth", 7);
        r.gauge_set("serve.inflight", -2);
        let text = openmetrics(&r.snapshot());
        assert!(text.contains("# TYPE serve_queue_depth gauge\n"));
        assert!(text.contains("serve_queue_depth 7\n"));
        assert!(text.contains("serve_inflight -2\n"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn chrome_trace_propagates_trace_id_to_every_event() {
        let mut pass = SpanNode::new("gvn", "pass");
        pass.children.push(SpanNode::new("pcheck", "phase"));
        let mut tree = SpanTree::assemble("m", vec![("f".to_string(), pass)]);
        tree.records[0]
            .fields
            .insert("trace_id".to_string(), Value::Str("t-00abc-7".into()));
        let json = chrome_trace(&tree);
        let doc = crate::json::parse(&json).unwrap();
        let events = doc.get("traceEvents").and_then(Value::as_arr).unwrap();
        for (i, e) in events.iter().enumerate() {
            assert_eq!(
                e.get("args").and_then(|a| a.get("trace_id")),
                Some(&Value::Str("t-00abc-7".into())),
                "event {i} lost the trace id"
            );
            assert_eq!(
                e.get("id").and_then(Value::as_str),
                Some(format!("t-00abc-7.{i}").as_str()),
                "event {i} has an unstable id"
            );
        }
        // Without a trace_id field, no id is emitted (back-compat).
        let plain = chrome_trace(&SpanTree::assemble(
            "m",
            vec![("f".to_string(), SpanNode::new("gvn", "pass"))],
        ));
        assert!(!plain.contains("trace_id"));
    }

    #[test]
    fn chrome_trace_nests_children_inside_parents() {
        let mut pass = SpanNode::new("gvn", "pass");
        let mut phase = SpanNode::new("pcheck", "phase");
        phase.children.push(SpanNode::new("row entry.0", "proof"));
        phase.children.push(SpanNode::new("row entry.1", "proof"));
        pass.children.push(phase);
        let tree = SpanTree::assemble("m", vec![("f".to_string(), pass)]);
        let json = chrome_trace(&tree);
        let doc = crate::json::parse(&json).unwrap();
        let events = doc.get("traceEvents").and_then(Value::as_arr).unwrap();
        assert_eq!(events.len(), tree.records.len());
        // Every non-root event's interval is contained in its parent's.
        let interval = |e: &Value| {
            let ts = e.get("ts").and_then(Value::as_u64).unwrap();
            let dur = e.get("dur").and_then(Value::as_u64).unwrap();
            (ts, ts + dur)
        };
        for (i, r) in tree.records.iter().enumerate() {
            if let Some(p) = r.parent {
                let (cs, ce) = interval(&events[i]);
                let (ps, pe) = interval(&events[p as usize]);
                assert!(ps <= cs && ce <= pe, "span {i} escapes its parent");
            }
        }
    }
}
