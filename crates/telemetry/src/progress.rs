//! Live heartbeats for long validation and fuzzing runs.
//!
//! A [`Progress`] is a bundle of atomic counters (items done/total, cache
//! hits/misses, soundness alarms) plus an optional ticker thread that
//! renders them to **stderr** at a fixed period — human one-liners or
//! JSON-lines, selected by [`ProgressMode`]. Keeping the heartbeat on
//! stderr and entirely outside the metrics [`Registry`](crate::Registry)
//! means a `--progress` run produces byte-identical stdout, metrics
//! snapshots, and span trees to a silent one: the deterministic view is
//! never perturbed by observability of the run itself.
//!
//! The engine taps are push-only and lock-free ([`Progress::add_done`]
//! etc. are relaxed atomic adds), so workers never contend on the
//! reporter.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How heartbeat lines are rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressMode {
    /// One human-readable line per tick.
    Human,
    /// One JSON object per tick (machine-consumable JSON lines).
    Json,
}

impl ProgressMode {
    /// Parse a `--progress` flag value.
    pub fn parse(name: &str) -> Option<ProgressMode> {
        match name {
            "human" => Some(ProgressMode::Human),
            "json" => Some(ProgressMode::Json),
            _ => None,
        }
    }
}

/// Shared progress state: counters the engines push into and a ticker
/// that periodically renders them.
pub struct Progress {
    mode: ProgressMode,
    label: String,
    show_alarms: bool,
    start: Instant,
    total: AtomicU64,
    done: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    alarms: AtomicU64,
    stop: AtomicBool,
    ticker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl fmt::Debug for Progress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Progress")
            .field("mode", &self.mode)
            .field("label", &self.label)
            .field("done", &self.done.load(Ordering::Relaxed))
            .field("total", &self.total.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Progress {
    /// A fresh reporter. `total` is the expected item count (0 when
    /// unknown; the percentage and ETA columns are omitted then).
    pub fn new(mode: ProgressMode, label: impl Into<String>, total: u64) -> Arc<Progress> {
        Arc::new(Progress {
            mode,
            label: label.into(),
            show_alarms: false,
            start: Instant::now(),
            total: AtomicU64::new(total),
            done: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            alarms: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            ticker: Mutex::new(None),
        })
    }

    /// A reporter that renders the soundness-alarm column (fuzz runs).
    pub fn new_with_alarms(
        mode: ProgressMode,
        label: impl Into<String>,
        total: u64,
    ) -> Arc<Progress> {
        Arc::new(Progress {
            mode,
            label: label.into(),
            show_alarms: true,
            start: Instant::now(),
            total: AtomicU64::new(total),
            done: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            alarms: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            ticker: Mutex::new(None),
        })
    }

    /// Record `n` finished items.
    pub fn add_done(&self, n: u64) {
        self.done.fetch_add(n, Ordering::Relaxed);
    }

    /// Grow the expected total by `n`.
    pub fn add_total(&self, n: u64) {
        self.total.fetch_add(n, Ordering::Relaxed);
    }

    /// Record a validation-cache hit.
    pub fn add_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a validation-cache miss.
    pub fn add_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` soundness alarms.
    pub fn add_alarms(&self, n: u64) {
        self.alarms.fetch_add(n, Ordering::Relaxed);
    }

    /// Spawn the ticker thread, emitting one heartbeat line to stderr
    /// every `period` until [`Progress::finish`]. Idempotent: a second
    /// call is a no-op.
    pub fn start_ticker(self: &Arc<Self>, period: Duration) {
        let mut guard = self.ticker.lock().expect("progress ticker lock");
        if guard.is_some() {
            return;
        }
        let me = Arc::clone(self);
        *guard = Some(std::thread::spawn(move || {
            while !me.stop.load(Ordering::Relaxed) {
                std::thread::sleep(period);
                if me.stop.load(Ordering::Relaxed) {
                    break;
                }
                eprintln!("{}", me.line());
            }
        }));
    }

    /// Stop the ticker (joining it) and emit one final heartbeat line, so
    /// even a run shorter than the tick period reports once.
    pub fn finish(&self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.ticker.lock().expect("progress ticker lock").take() {
            let _ = handle.join();
        }
        eprintln!("{}", self.line());
    }

    /// The current heartbeat line.
    pub fn line(&self) -> String {
        self.line_at(self.start.elapsed())
    }

    /// The heartbeat line for an explicit elapsed time (tests).
    pub fn line_at(&self, elapsed: Duration) -> String {
        let done = self.done.load(Ordering::Relaxed);
        let total = self.total.load(Ordering::Relaxed);
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let alarms = self.alarms.load(Ordering::Relaxed);
        let secs = elapsed.as_secs_f64();
        let rate = if secs > 0.0 { done as f64 / secs } else { 0.0 };
        let eta_s = if total > done && rate > 0.0 {
            Some((total - done) as f64 / rate)
        } else {
            None
        };
        match self.mode {
            ProgressMode::Human => {
                let mut out = format!("[{}] {done}", self.label);
                if total > 0 {
                    let pct = 100.0 * done as f64 / total as f64;
                    out.push_str(&format!("/{total} ({pct:.0}%)"));
                }
                out.push_str(&format!(" | {rate:.1}/s"));
                match eta_s {
                    Some(eta) => out.push_str(&format!(" | eta {eta:.0}s")),
                    None => out.push_str(" | eta -"),
                }
                if hits + misses > 0 {
                    let cache = 100.0 * hits as f64 / (hits + misses) as f64;
                    out.push_str(&format!(" | cache {cache:.0}%"));
                }
                if self.show_alarms {
                    out.push_str(&format!(" | alarms {alarms}"));
                }
                out
            }
            ProgressMode::Json => {
                use crate::json::Value;
                use std::collections::BTreeMap;
                let mut obj = BTreeMap::new();
                obj.insert("label".to_string(), Value::Str(self.label.clone()));
                obj.insert("done".to_string(), Value::UInt(done));
                obj.insert("total".to_string(), Value::UInt(total));
                obj.insert("rate_per_s".to_string(), Value::Float(rate));
                obj.insert(
                    "eta_s".to_string(),
                    match eta_s {
                        Some(eta) => Value::Float(eta),
                        None => Value::Null,
                    },
                );
                obj.insert(
                    "elapsed_ms".to_string(),
                    Value::UInt(elapsed.as_millis().min(u64::MAX as u128) as u64),
                );
                obj.insert("cache_hits".to_string(), Value::UInt(hits));
                obj.insert("cache_misses".to_string(), Value::UInt(misses));
                if self.show_alarms {
                    obj.insert("alarms".to_string(), Value::UInt(alarms));
                }
                Value::Obj(obj).to_json()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_line_renders_rate_eta_and_cache() {
        let p = Progress::new(ProgressMode::Human, "validate", 100);
        p.add_done(25);
        p.add_cache_hit();
        p.add_cache_hit();
        p.add_cache_hit();
        p.add_cache_miss();
        let line = p.line_at(Duration::from_secs(5));
        assert!(line.starts_with("[validate] 25/100 (25%)"), "{line}");
        assert!(line.contains("5.0/s"), "{line}");
        assert!(line.contains("eta 15s"), "{line}");
        assert!(line.contains("cache 75%"), "{line}");
        assert!(!line.contains("alarms"), "{line}");
    }

    #[test]
    fn json_line_is_parseable_and_carries_alarms() {
        let p = Progress::new_with_alarms(ProgressMode::Json, "fuzz", 64);
        p.add_done(32);
        p.add_alarms(2);
        let line = p.line_at(Duration::from_secs(2));
        let v = crate::json::parse(&line).expect("heartbeat is valid JSON");
        assert_eq!(v.get("done").and_then(crate::json::Value::as_u64), Some(32));
        assert_eq!(
            v.get("alarms").and_then(crate::json::Value::as_u64),
            Some(2)
        );
        assert_eq!(
            v.get("label").and_then(crate::json::Value::as_str),
            Some("fuzz")
        );
    }

    #[test]
    fn unknown_total_omits_percentage_and_eta() {
        let p = Progress::new(ProgressMode::Human, "check", 0);
        p.add_done(3);
        let line = p.line_at(Duration::from_secs(1));
        assert!(line.starts_with("[check] 3 |"), "{line}");
        assert!(line.contains("eta -"), "{line}");
    }

    #[test]
    fn ticker_finishes_with_a_final_line() {
        let p = Progress::new(ProgressMode::Human, "t", 1);
        p.start_ticker(Duration::from_millis(5));
        p.add_done(1);
        p.finish(); // must join without deadlock and emit the final line
        assert!(p.line().contains("1/1"));
    }
}
