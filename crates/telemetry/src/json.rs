//! Minimal JSON value model, emitter, and parser.
//!
//! Kept inside the telemetry crate so it has zero dependencies: snapshots
//! and trace events serialize through this, and `crellvm report` parses
//! metrics files with it.

use std::collections::BTreeMap;
use std::fmt;

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer (also covers all unsigned values that fit).
    Int(i64),
    /// Unsigned integer above `i64::MAX`.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object with deterministic (sorted-at-build or insertion) key order.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as u64 when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(v) if *v >= 0 => Some(*v as u64),
            Value::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as i64 when it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::UInt(v) if *v <= i64::MAX as u64 => Some(*v as i64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// Serialize to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(v) => out.push_str(&v.to_string()),
            Value::UInt(v) => out.push_str(&v.to_string()),
            Value::Float(v) => {
                if v.is_finite() {
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => escape_into(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset where parsing failed.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing garbage is an error).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing characters"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn fail(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.fail("recursion limit exceeded"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat("null") => Ok(Value::Null),
            Some(b't') if self.eat("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(self.fail("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    if self.peek() != Some(b':') {
                        return Err(self.fail("expected `:`"));
                    }
                    self.pos += 1;
                    let value = self.value(depth + 1)?;
                    entries.insert(key, value);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(entries));
                        }
                        _ => return Err(self.fail("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.fail("unexpected character")),
            None => Err(self.fail("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        if self.peek() != Some(b'"') {
            return Err(self.fail("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.fail("invalid UTF-8"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let c = match self.peek() {
                        Some(b'"') => '"',
                        Some(b'\\') => '\\',
                        Some(b'/') => '/',
                        Some(b'n') => '\n',
                        Some(b'r') => '\r',
                        Some(b't') => '\t',
                        Some(b'b') => '\u{0008}',
                        Some(b'f') => '\u{000c}',
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                if !self.eat("\\u") {
                                    return Err(self.fail("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.fail("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(cp) {
                                Some(c) => {
                                    out.push(c);
                                    continue;
                                }
                                None => return Err(self.fail("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.fail("invalid escape")),
                    };
                    out.push(c);
                    self.pos += 1;
                }
                Some(_) => return Err(self.fail("control character in string")),
                None => return Err(self.fail("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.fail("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.fail("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.fail("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.fail("invalid number"));
        }
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.fail("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_documents() {
        let src = r#"{"a":[1,2,{"b":"x\ny"}],"c":null,"d":true,"e":-3}"#;
        let v = parse(src).unwrap();
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        let v = Value::Str("a\u{0001}b".to_string());
        assert_eq!(v.to_json(), "\"a\\u0001b\"");
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }
}
