//! The metrics registry: atomic counters, log-bucketed histograms, and span
//! timers behind one `Arc`-shareable, contention-safe structure.
//!
//! Hot-path recording takes a read lock to find the metric's atomic cell and
//! then operates lock-free; only first-time registration of a name takes the
//! write lock. This keeps concurrent recording cheap for the future
//! parallel/sharded pipeline.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use crate::json::Value;

/// Number of log₂ histogram buckets: bucket `i` holds values whose bit
/// length is `i` (bucket 0 is exactly zero).
const BUCKETS: usize = 65;

struct HistogramCell {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl HistogramCell {
    fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }
}

#[derive(Default)]
struct TimerCell {
    count: AtomicU64,
    total_nanos: AtomicU64,
}

/// Thread-safe metrics registry.
///
/// All recording methods take `&self`; share the registry with
/// `Arc<Registry>` (or through [`crate::Telemetry`], which clones one).
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: RwLock<BTreeMap<String, Arc<HistogramCell>>>,
    timers: RwLock<BTreeMap<String, Arc<TimerCell>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field(
                "counters",
                &self.counters.read().expect("registry lock poisoned").len(),
            )
            .field(
                "gauges",
                &self.gauges.read().expect("registry lock poisoned").len(),
            )
            .field(
                "histograms",
                &self
                    .histograms
                    .read()
                    .expect("registry lock poisoned")
                    .len(),
            )
            .field(
                "timers",
                &self.timers.read().expect("registry lock poisoned").len(),
            )
            .finish()
    }
}

fn intern<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(cell) = map.read().expect("registry lock poisoned").get(name) {
        return Arc::clone(cell);
    }
    let mut write = map.write().expect("registry lock poisoned");
    Arc::clone(write.entry(name.to_string()).or_default())
}

impl Registry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    // -- counters ----------------------------------------------------------

    /// Add `n` to counter `name` (creating it at zero on first use).
    pub fn add(&self, name: &str, n: u64) {
        intern(&self.counters, name).fetch_add(n, Ordering::Relaxed);
    }

    /// Increment counter `name` by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of counter `name` (zero when never recorded).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    // -- gauges ------------------------------------------------------------

    /// Set gauge `name` to an absolute value (creating it on first use).
    ///
    /// Gauges are *live-state* metrics — queue depth, inflight units,
    /// worker occupancy — sampled at snapshot time rather than accumulated
    /// over the run. They are therefore excluded from the deterministic
    /// snapshot view, like wall-clock timers.
    pub fn gauge_set(&self, name: &str, value: i64) {
        intern(&self.gauges, name).store(value, Ordering::Relaxed);
    }

    /// Add `n` (possibly negative) to gauge `name`.
    pub fn gauge_add(&self, name: &str, n: i64) {
        intern(&self.gauges, name).fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n` from gauge `name`.
    pub fn gauge_sub(&self, name: &str, n: i64) {
        self.gauge_add(name, -n);
    }

    /// Current value of gauge `name` (zero when never set).
    pub fn gauge_value(&self, name: &str) -> i64 {
        self.gauges
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .map(|g| g.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    // -- histograms --------------------------------------------------------

    /// Record `value` into the log-bucketed histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        intern(&self.histograms, name).record(value);
    }

    // -- timers ------------------------------------------------------------

    /// Record an already-measured duration into timer `name`.
    pub fn record_duration(&self, name: &str, elapsed: Duration) {
        let cell = intern(&self.timers, name);
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.total_nanos.fetch_add(
            elapsed.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
    }

    /// Start a span over timer `name`; elapsed time is recorded when the
    /// guard drops.
    pub fn span(&self, name: &str) -> Span<'_> {
        Span {
            registry: self,
            name: name.to_string(),
            start: Instant::now(),
        }
    }

    /// Time `f` under timer `name` and return its result.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.record_duration(name, start.elapsed());
        out
    }

    /// Total accumulated duration of timer `name` (zero when never
    /// recorded).
    pub fn timer_total(&self, name: &str) -> Duration {
        self.timers
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .map(|t| Duration::from_nanos(t.total_nanos.load(Ordering::Relaxed)))
            .unwrap_or(Duration::ZERO)
    }

    // -- merging -----------------------------------------------------------

    /// Fold a snapshot into this registry additively: counters and timer
    /// totals add, histogram counts/sums/buckets add. Used by the parallel
    /// validation engine to merge per-worker registries into the main one;
    /// because every operation is a commutative add, the merged result is
    /// independent of worker count and merge order.
    pub fn merge_snapshot(&self, snap: &Snapshot) {
        for (name, v) in &snap.counters {
            self.add(name, *v);
        }
        // Gauges merge additively too: a worker's snapshot carries its
        // *contribution* to the live value (e.g. its inflight units), so
        // summing contributions is the order-independent combination.
        for (name, v) in &snap.gauges {
            self.gauge_add(name, *v);
        }
        for (name, h) in &snap.histograms {
            let cell = intern(&self.histograms, name);
            cell.count.fetch_add(h.count, Ordering::Relaxed);
            cell.sum.fetch_add(h.sum, Ordering::Relaxed);
            for (i, n) in &h.buckets {
                cell.buckets[*i as usize].fetch_add(*n, Ordering::Relaxed);
            }
        }
        for (name, t) in &snap.timers {
            let cell = intern(&self.timers, name);
            cell.count.fetch_add(t.count, Ordering::Relaxed);
            cell.total_nanos.fetch_add(t.total_nanos, Ordering::Relaxed);
        }
    }

    // -- snapshots ---------------------------------------------------------

    /// Consistent-enough point-in-time copy of every metric. ("Enough":
    /// individual atomics are read without a global pause, which is the
    /// standard tradeoff for always-on metrics.)
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .read()
            .expect("registry lock poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("registry lock poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("registry lock poisoned")
            .iter()
            .map(|(k, h)| {
                let buckets = h
                    .buckets
                    .iter()
                    .enumerate()
                    .map(|(i, b)| (i as u32, b.load(Ordering::Relaxed)))
                    .filter(|(_, n)| *n > 0)
                    .collect();
                (
                    k.clone(),
                    HistogramSnapshot {
                        count: h.count.load(Ordering::Relaxed),
                        sum: h.sum.load(Ordering::Relaxed),
                        buckets,
                    },
                )
            })
            .collect();
        let timers = self
            .timers
            .read()
            .expect("registry lock poisoned")
            .iter()
            .map(|(k, t)| {
                (
                    k.clone(),
                    TimerSnapshot {
                        count: t.count.load(Ordering::Relaxed),
                        total_nanos: t.total_nanos.load(Ordering::Relaxed),
                    },
                )
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
            timers,
        }
    }
}

/// Span guard; see [`Registry::span`].
pub struct Span<'a> {
    registry: &'a Registry,
    name: String,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.registry
            .record_duration(&self.name, self.start.elapsed());
    }
}

/// Point-in-time copy of a histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Non-empty `(bucket_index, count)` pairs; bucket `i` covers values of
    /// bit length `i`.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean of recorded values (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]` (zero when empty).
    ///
    /// Resolution is bounded by the log₂ buckets: the target rank's bucket
    /// is located exactly, then the value is linearly interpolated across
    /// that bucket's `[2^(i-1), 2^i - 1]` range by rank position.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, n) in &self.buckets {
            if seen + n >= rank {
                let (lo, hi) = bucket_range(*i);
                let frac = if *n == 0 {
                    0.0
                } else {
                    (rank - seen) as f64 / *n as f64
                };
                return lo + (hi - lo) * frac;
            }
            seen += n;
        }
        bucket_range(self.buckets.last().map(|(i, _)| *i).unwrap_or(0)).1
    }

    /// Approximate median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// Approximate 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// Approximate 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// Inclusive value range `[lo, hi]` covered by log₂ bucket `i` (bucket 0 is
/// exactly zero, bucket `i` holds values of bit length `i`).
fn bucket_range(i: u32) -> (f64, f64) {
    if i == 0 {
        (0.0, 0.0)
    } else {
        ((1u128 << (i - 1)) as f64, ((1u128 << i) - 1) as f64)
    }
}

/// Point-in-time copy of a timer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimerSnapshot {
    /// Number of recorded spans.
    pub count: u64,
    /// Total time across spans, in nanoseconds.
    pub total_nanos: u64,
}

/// Point-in-time copy of the whole registry; serializes to the metrics-file
/// JSON consumed by `crellvm report`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge last-values by name (live state at snapshot time).
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Timers by name.
    pub timers: BTreeMap<String, TimerSnapshot>,
}

impl Snapshot {
    /// Serialize to the metrics-file JSON document.
    pub fn to_json(&self) -> String {
        let counters = Value::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Value::UInt(*v)))
                .collect(),
        );
        let gauges = Value::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Value::Int(*v)))
                .collect(),
        );
        let histograms = Value::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    let buckets = Value::Arr(
                        h.buckets
                            .iter()
                            .map(|(i, n)| Value::Arr(vec![Value::UInt(*i as u64), Value::UInt(*n)]))
                            .collect(),
                    );
                    let mut obj = BTreeMap::new();
                    obj.insert("count".to_string(), Value::UInt(h.count));
                    obj.insert("sum".to_string(), Value::UInt(h.sum));
                    obj.insert("buckets".to_string(), buckets);
                    (k.clone(), Value::Obj(obj))
                })
                .collect(),
        );
        let timers = Value::Obj(
            self.timers
                .iter()
                .map(|(k, t)| {
                    let mut obj = BTreeMap::new();
                    obj.insert("count".to_string(), Value::UInt(t.count));
                    obj.insert("total_nanos".to_string(), Value::UInt(t.total_nanos));
                    (k.clone(), Value::Obj(obj))
                })
                .collect(),
        );
        let mut root = BTreeMap::new();
        root.insert("counters".to_string(), counters);
        if !self.gauges.is_empty() {
            root.insert("gauges".to_string(), gauges);
        }
        root.insert("histograms".to_string(), histograms);
        root.insert("timers".to_string(), timers);
        Value::Obj(root).to_json()
    }

    /// The scheduling-independent restriction of the snapshot: drops every
    /// timer (wall-clock measurements vary run to run), every gauge (live
    /// state — queue depth, inflight units — is a property of *when* the
    /// snapshot was taken, not of the work), and the counters that
    /// describe the *schedule* or *history* rather than the *work* —
    /// `pipeline.jobs`, the per-worker `validate.steal.*` counters, and the
    /// `cache.*` hit/miss/eviction counters (which depend on what previous
    /// runs left in the validation cache). Everything that remains is a
    /// commutative sum over per-function work items, so it is
    /// byte-identical at any `--jobs` value and with any cache state; the
    /// determinism and cache-correctness tests compare exactly this view.
    pub fn deterministic(&self) -> Snapshot {
        let schedule_scoped = |name: &str| {
            name == "pipeline.jobs"
                || name.starts_with("validate.steal.")
                || name.starts_with("cache.")
        };
        Snapshot {
            counters: self
                .counters
                .iter()
                .filter(|(k, _)| !schedule_scoped(k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: BTreeMap::new(),
            histograms: self.histograms.clone(),
            timers: BTreeMap::new(),
        }
    }

    /// Parse a metrics-file JSON document.
    pub fn from_json(input: &str) -> Result<Snapshot, String> {
        let root = crate::json::parse(input).map_err(|e| e.to_string())?;
        let mut snap = Snapshot::default();
        if let Some(counters) = root.get("counters").and_then(Value::as_obj) {
            for (k, v) in counters {
                let v = v
                    .as_u64()
                    .ok_or_else(|| format!("counter `{k}` is not a u64"))?;
                snap.counters.insert(k.clone(), v);
            }
        }
        if let Some(gauges) = root.get("gauges").and_then(Value::as_obj) {
            for (k, v) in gauges {
                let v = v
                    .as_i64()
                    .ok_or_else(|| format!("gauge `{k}` is not an i64"))?;
                snap.gauges.insert(k.clone(), v);
            }
        }
        if let Some(histograms) = root.get("histograms").and_then(Value::as_obj) {
            for (k, h) in histograms {
                let count = h.get("count").and_then(Value::as_u64).unwrap_or(0);
                let sum = h.get("sum").and_then(Value::as_u64).unwrap_or(0);
                let mut buckets = Vec::new();
                if let Some(pairs) = h.get("buckets").and_then(Value::as_arr) {
                    for pair in pairs {
                        let pair = pair
                            .as_arr()
                            .ok_or_else(|| format!("histogram `{k}` bucket is not a pair"))?;
                        if let [i, n] = pair {
                            buckets.push((i.as_u64().unwrap_or(0) as u32, n.as_u64().unwrap_or(0)));
                        }
                    }
                }
                snap.histograms.insert(
                    k.clone(),
                    HistogramSnapshot {
                        count,
                        sum,
                        buckets,
                    },
                );
            }
        }
        if let Some(timers) = root.get("timers").and_then(Value::as_obj) {
            for (k, t) in timers {
                snap.timers.insert(
                    k.clone(),
                    TimerSnapshot {
                        count: t.get("count").and_then(Value::as_u64).unwrap_or(0),
                        total_nanos: t.get("total_nanos").and_then(Value::as_u64).unwrap_or(0),
                    },
                );
            }
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn concurrent_recording_is_lossless() {
        let registry = Arc::new(Registry::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let registry = Arc::clone(&registry);
                thread::spawn(move || {
                    for i in 0..per_thread {
                        registry.incr("shared.counter");
                        registry.observe("shared.histogram", i % 97);
                        if i % 1000 == 0 {
                            // Exercise the registration path concurrently too.
                            registry.add(&format!("thread.{t}.marker"), 1);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            registry.counter_value("shared.counter"),
            threads * per_thread
        );
        let snap = registry.snapshot();
        let hist = &snap.histograms["shared.histogram"];
        assert_eq!(hist.count, threads * per_thread);
        let bucket_total: u64 = hist.buckets.iter().map(|(_, n)| n).sum();
        assert_eq!(bucket_total, hist.count);
    }

    #[test]
    fn gauges_set_add_sub_and_snapshot() {
        let r = Registry::new();
        r.gauge_set("serve.queue_depth", 5);
        r.gauge_add("serve.queue_depth", 3);
        r.gauge_sub("serve.queue_depth", 6);
        assert_eq!(r.gauge_value("serve.queue_depth"), 2);
        r.gauge_sub("serve.inflight", 1);
        assert_eq!(r.gauge_value("serve.inflight"), -1);
        assert_eq!(r.gauge_value("never.touched"), 0);
        let snap = r.snapshot();
        assert_eq!(snap.gauges.get("serve.queue_depth"), Some(&2));
        assert_eq!(snap.gauges.get("serve.inflight"), Some(&-1));
        // JSON roundtrip carries gauges (including negative values).
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        // The deterministic view drops live state.
        assert!(snap.deterministic().gauges.is_empty());
    }

    #[test]
    fn gauge_merge_is_additive() {
        let mk = |v: i64| {
            let r = Registry::new();
            r.gauge_set("pool.inflight", v);
            r.snapshot()
        };
        let merged = Registry::new();
        merged.merge_snapshot(&mk(3));
        merged.merge_snapshot(&mk(-1));
        merged.merge_snapshot(&mk(4));
        assert_eq!(merged.gauge_value("pool.inflight"), 6);
    }

    #[test]
    fn snapshot_json_roundtrips() {
        let registry = Registry::new();
        registry.add("a.b", 7);
        registry.observe("sizes", 0);
        registry.observe("sizes", 3);
        registry.observe("sizes", 1024);
        registry.record_duration("time.pcheck", Duration::from_micros(1500));
        let snap = registry.snapshot();
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn span_guard_records_on_drop() {
        let registry = Registry::new();
        {
            let _span = registry.span("time.block");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(registry.timer_total("time.block") >= Duration::from_millis(1));
        assert_eq!(registry.snapshot().timers["time.block"].count, 1);
    }

    #[test]
    fn merge_snapshot_is_additive_and_order_independent() {
        // Three "workers" record disjoint and overlapping metrics…
        let mk = |base: u64| {
            let r = Registry::new();
            r.add("pipeline.validated", base);
            r.add("checker.rule.transitivity", base * 2);
            r.observe("checker.assertion_preds", base);
            r.observe("checker.assertion_preds", base + 1);
            r.record_duration("time.pcheck", Duration::from_nanos(base * 100));
            r.snapshot()
        };
        let snaps = [mk(1), mk(2), mk(3)];

        let forward = Registry::new();
        for s in &snaps {
            forward.merge_snapshot(s);
        }
        let backward = Registry::new();
        for s in snaps.iter().rev() {
            backward.merge_snapshot(s);
        }
        assert_eq!(forward.snapshot(), backward.snapshot());
        assert_eq!(forward.counter_value("pipeline.validated"), 6);
        assert_eq!(forward.counter_value("checker.rule.transitivity"), 12);
        let merged = forward.snapshot();
        assert_eq!(merged.histograms["checker.assertion_preds"].count, 6);
        assert_eq!(
            merged.histograms["checker.assertion_preds"].sum,
            1 + 2 + 2 + 3 + 3 + 4
        );
        assert_eq!(merged.timers["time.pcheck"].count, 3);
        assert_eq!(merged.timers["time.pcheck"].total_nanos, 600);
    }

    #[test]
    fn deterministic_view_drops_schedule_scoped_metrics() {
        let r = Registry::new();
        r.add("pipeline.validated", 4);
        r.add("pipeline.jobs", 8);
        r.add("validate.steal.w0", 3);
        r.add("validate.steal.w7", 1);
        r.add("cache.hits", 11);
        r.add("cache.misses", 2);
        r.observe("checker.assertion_preds", 5);
        r.record_duration("time.orig", Duration::from_millis(2));
        let det = r.snapshot().deterministic();
        assert_eq!(det.counters.get("pipeline.validated"), Some(&4));
        assert!(!det.counters.contains_key("pipeline.jobs"));
        assert!(!det
            .counters
            .keys()
            .any(|k| k.starts_with("validate.steal.")));
        assert!(!det.counters.keys().any(|k| k.starts_with("cache.")));
        assert!(det.timers.is_empty());
        assert!(det.histograms.contains_key("checker.assertion_preds"));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let registry = Registry::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024] {
            registry.observe("h", v);
        }
        let snap = registry.snapshot();
        let buckets: BTreeMap<u32, u64> = snap.histograms["h"].buckets.iter().copied().collect();
        assert_eq!(buckets[&0], 1); // 0
        assert_eq!(buckets[&1], 1); // 1
        assert_eq!(buckets[&2], 2); // 2, 3
        assert_eq!(buckets[&3], 2); // 4, 7
        assert_eq!(buckets[&4], 1); // 8
        assert_eq!(buckets[&10], 1); // 512..1023
        assert_eq!(buckets[&11], 1); // 1024..2047
    }
}
