//! The three-way oracle: ERHL checker × interpreter refinement × diff.
//!
//! Our checker has no Coq proof behind it (unlike the paper's), so it is
//! itself part of the trusted computing base and must be adversarially
//! cross-checked. For every `(program, pass)` translation step, the oracle
//! gathers three *independent* observations:
//!
//! 1. **Checker** — the ERHL verdict on each proof unit (the thing under
//!    test);
//! 2. **Refinement** — interpreter-based `Beh(src) ⊇ Beh(tgt)` on a set of
//!    generated concrete inputs (environment seeds + undef resolutions);
//! 3. **Diff** — alpha-equivalence of the *observed* target against the
//!    honest pass output, which detects injected mutations even when no
//!    concrete run can witness them (e.g. stripping `inbounds`, which only
//!    *removes* behaviours).
//!
//! [`classify`] folds the observations into the verdict lattice the
//! campaign reports on: **soundness alarm** (checker accepts, refinement
//! refutes), **completeness gap** (checker rejects a translation that is
//! clean and holds on every conclusive run), **agree**, and
//! **inconclusive**. A fuel-exhausted run is *never* evidence: it can
//! neither witness a violation nor count as a pass, so it only ever
//! produces `Inconclusive` (the ISSUE-level contract this module pins).

use crellvm_core::{validate_with_telemetry, CheckerConfig, ProofUnit, ValidationError, Verdict};
use crellvm_interp::{
    check_refinement, compile_module, run_main_tiered, BcCache, CompiledModule, End, RunConfig,
    RunResult, Tier, TierDivergence, UndefPolicy,
};
use crellvm_ir::Module;
use crellvm_telemetry::Telemetry;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Oracle configuration: how hard the refinement leg tries.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Number of concrete input seeds to execute both modules on. Each
    /// seed drives the external environment (`get` results) *and* the
    /// undef resolution policy.
    pub input_seeds: u64,
    /// Interpreter fuel per run; an exhausted run makes the refinement
    /// observation inconclusive, never a pass.
    pub fuel: u64,
    /// Which interpreter tier executes the refinement runs.
    /// [`Tier::Differential`] turns tier disagreement into a fourth free
    /// oracle: any bit-level mismatch between the tree-walk reference and
    /// the bytecode tier surfaces as [`OracleVerdict::TierDivergence`].
    pub tier: Tier,
}

impl Default for OracleConfig {
    fn default() -> OracleConfig {
        OracleConfig {
            input_seeds: 4,
            fuel: RunConfig::default().fuel,
            tier: Tier::Tree,
        }
    }
}

/// The checker leg, folded over all proof units of the step.
#[derive(Debug, Clone)]
pub enum CheckerSummary {
    /// Every supported unit validated.
    Accept,
    /// At least one unit failed validation (the first, in function order).
    Reject(Box<ValidationError>),
    /// No failure, but at least one unit was not supported (#NS).
    Abstain(String),
}

/// The interpreter-refinement leg over all generated inputs.
#[derive(Debug, Clone)]
pub enum RefinementSummary {
    /// `Beh(src) ⊇ Beh(tgt)` held on every input, and every run ended
    /// conclusively (no fuel exhaustion).
    Holds,
    /// A concrete input witnessed a refinement violation.
    Fails {
        /// The violating input seed (replay with the same seed).
        input_seed: u64,
        /// The refinement error, rendered.
        reason: String,
    },
    /// No violation found, but some runs exhausted their fuel — counted
    /// as *no evidence*, never as a pass.
    Inconclusive {
        /// How many of the input seeds ran out of fuel.
        out_of_fuel: u64,
    },
}

/// The structural-diff leg: observed target vs honest pass output.
#[derive(Debug, Clone)]
pub enum DiffSummary {
    /// The observed target is alpha-equivalent to the honest output.
    Clean,
    /// The observed target differs (first difference, rendered) — the
    /// injected-mutation detector.
    Differs(String),
}

/// One tier disagreement witnessed while executing the refinement leg
/// under [`Tier::Differential`].
#[derive(Debug, Clone)]
pub struct DivergenceObservation {
    /// The input seed whose run diverged (replayable).
    pub input_seed: u64,
    /// Which module diverged: `"src"` or `"tgt"`.
    pub module_role: &'static str,
    /// The full divergence (first mismatching observable + both runs).
    pub divergence: TierDivergence,
}

/// One step's worth of oracle observations.
#[derive(Debug, Clone)]
pub struct Observation {
    /// The ERHL checker leg.
    pub checker: CheckerSummary,
    /// The interpreter refinement leg.
    pub refinement: RefinementSummary,
    /// The structural diff leg.
    pub diff: DiffSummary,
    /// Tier disagreements seen while running the refinement leg (always
    /// empty unless the oracle ran with [`Tier::Differential`]).
    pub tier_divergences: Vec<DivergenceObservation>,
}

/// The oracle verdict lattice (see module docs and DESIGN.md §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleVerdict {
    /// The interpreter tiers disagreed on an observable. This is not a
    /// compiler or checker bug but an *oracle* bug (the bytecode tier —
    /// or worse, the shared core — is wrong), so it overrides the rest of
    /// the lattice: no other verdict from this step can be trusted.
    TierDivergence,
    /// Checker accepts, refinement refutes: the checker would have let a
    /// miscompilation through. The campaign's nonzero-exit condition.
    SoundnessAlarm,
    /// Checker rejects a translation that is structurally clean and whose
    /// refinement held conclusively on every input: the checker (or the
    /// proof generator) is too weak.
    CompletenessGap,
    /// The oracles tell a consistent story.
    Agree,
    /// Not enough evidence to cross-check (#NS unit, fuel exhaustion
    /// without a witness, rejection with nothing to corroborate).
    Inconclusive,
}

impl OracleVerdict {
    /// Stable lowercase name used in reports and telemetry counters.
    pub fn name(self) -> &'static str {
        match self {
            OracleVerdict::TierDivergence => "tier_divergence",
            OracleVerdict::SoundnessAlarm => "soundness_alarm",
            OracleVerdict::CompletenessGap => "completeness_gap",
            OracleVerdict::Agree => "agree",
            OracleVerdict::Inconclusive => "inconclusive",
        }
    }
}

/// The [`RunConfig`] for input seed `k`: the seed drives both the
/// external environment stream and the undef-resolution policy, so two
/// oracles replaying the same `k` see the same world.
pub fn input_run_config(k: u64, fuel: u64) -> RunConfig {
    RunConfig {
        fuel,
        env_seed: k.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC0FFEE,
        undef: UndefPolicy::Seeded(k ^ 0x5EED_5EED),
        ..RunConfig::default()
    }
}

/// Execute the refinement leg: run `src` and `tgt` on every input seed
/// and fold the outcomes (first violation wins; otherwise fuel exhaustion
/// anywhere makes the summary inconclusive).
pub fn refinement_leg(src: &Module, tgt: &Module, cfg: &OracleConfig) -> RefinementSummary {
    refinement_leg_cached(src, tgt, cfg, None, &Telemetry::disabled()).0
}

/// [`refinement_leg`] with an optional compile cache and telemetry.
///
/// On the bytecode and differential tiers each module is lowered once
/// (per cache lifetime — the campaign keeps one cache per seed, so the
/// 4+ input seeds × both modules × every step of a seed all share
/// compilations). Records `interp.tier.compile` / `interp.tier.exec`
/// timers; divergences witnessed under [`Tier::Differential`] come back
/// alongside the summary.
pub fn refinement_leg_cached(
    src: &Module,
    tgt: &Module,
    cfg: &OracleConfig,
    cache: Option<&mut BcCache>,
    tel: &Telemetry,
) -> (RefinementSummary, Vec<DivergenceObservation>) {
    // Compilation is RunConfig-independent: lower both modules once for
    // the whole seed fan-out.
    let compiled: Option<(Arc<CompiledModule>, Arc<CompiledModule>)> = if cfg.tier == Tier::Tree {
        None
    } else {
        match cache {
            Some(c) => {
                let n0 = c.compile_nanos;
                let pair = (c.get_or_compile(src), c.get_or_compile(tgt));
                let spent = c.compile_nanos - n0;
                if spent > 0 {
                    tel.registry()
                        .record_duration("interp.tier.compile", Duration::from_nanos(spent));
                }
                Some(pair)
            }
            None => {
                let t0 = Instant::now();
                let pair = (Arc::new(compile_module(src)), Arc::new(compile_module(tgt)));
                tel.registry()
                    .record_duration("interp.tier.compile", t0.elapsed());
                Some(pair)
            }
        }
    };
    let src_bc = compiled.as_ref().map(|pair| pair.0.as_ref());
    let tgt_bc = compiled.as_ref().map(|pair| pair.1.as_ref());

    let mut divergences = Vec::new();
    let mut out_of_fuel = 0u64;
    let mut summary = None;
    for k in 0..cfg.input_seeds {
        let mut rc = input_run_config(k, cfg.fuel);
        rc.tier = cfg.tier;
        let span = tel.span("interp.tier.exec");
        let ts = run_main_tiered(src, &rc, src_bc);
        let tt = run_main_tiered(tgt, &rc, tgt_bc);
        drop(span);
        if let Some(d) = ts.divergence {
            divergences.push(DivergenceObservation {
                input_seed: k,
                module_role: "src",
                divergence: d,
            });
        }
        if let Some(d) = tt.divergence {
            divergences.push(DivergenceObservation {
                input_seed: k,
                module_role: "tgt",
                divergence: d,
            });
        }
        let (rs, rt) = (ts.result, tt.result);
        if let Err(e) = check_refinement(&rs, &rt) {
            summary = Some(RefinementSummary::Fails {
                input_seed: k,
                reason: e.to_string(),
            });
            break;
        }
        if ran_out(&rs) || ran_out(&rt) {
            out_of_fuel += 1;
        }
    }
    let summary = summary.unwrap_or(if out_of_fuel > 0 {
        RefinementSummary::Inconclusive { out_of_fuel }
    } else {
        RefinementSummary::Holds
    });
    (summary, divergences)
}

fn ran_out(r: &RunResult) -> bool {
    matches!(r.end, End::OutOfFuel)
}

/// Execute the checker leg over the step's proof units, in unit order.
pub fn checker_leg(
    units: &[ProofUnit],
    checker: &CheckerConfig,
    tel: &Telemetry,
) -> CheckerSummary {
    let mut abstained: Option<String> = None;
    for unit in units {
        match validate_with_telemetry(unit, checker, tel) {
            Ok(Verdict::Valid) => {}
            Ok(Verdict::NotSupported(r)) => {
                abstained.get_or_insert(r);
            }
            Err(e) => return CheckerSummary::Reject(Box::new(e)),
        }
    }
    match abstained {
        Some(r) => CheckerSummary::Abstain(r),
        None => CheckerSummary::Accept,
    }
}

/// Execute the diff leg: observed target module vs the honest output.
pub fn diff_leg(honest: &Module, observed: &Module) -> DiffSummary {
    match crellvm_diff::diff_modules(honest, observed) {
        Ok(()) => DiffSummary::Clean,
        Err(e) => DiffSummary::Differs(e.to_string()),
    }
}

/// Gather all three observations for one `(program, pass)` step.
///
/// * `src` — the pass input module;
/// * `observed` — the (possibly mutation-injected) pass output actually
///   being shipped;
/// * `honest` — the unmutated pass output (diff baseline);
/// * `units` — the proof units whose `tgt` matches `observed`.
pub fn observe_step(
    src: &Module,
    observed: &Module,
    honest: &Module,
    units: &[ProofUnit],
    checker: &CheckerConfig,
    cfg: &OracleConfig,
    tel: &Telemetry,
) -> Observation {
    observe_step_cached(src, observed, honest, units, checker, cfg, None, tel)
}

/// [`observe_step`] with an optional bytecode compile cache (see
/// [`refinement_leg_cached`]).
#[allow(clippy::too_many_arguments)]
pub fn observe_step_cached(
    src: &Module,
    observed: &Module,
    honest: &Module,
    units: &[ProofUnit],
    checker: &CheckerConfig,
    cfg: &OracleConfig,
    cache: Option<&mut BcCache>,
    tel: &Telemetry,
) -> Observation {
    let (refinement, tier_divergences) = refinement_leg_cached(src, observed, cfg, cache, tel);
    Observation {
        checker: checker_leg(units, checker, tel),
        refinement,
        diff: diff_leg(honest, observed),
        tier_divergences,
    }
}

/// Fold one step's observations into the verdict lattice.
pub fn classify(obs: &Observation) -> OracleVerdict {
    if !obs.tier_divergences.is_empty() {
        // An interpreter that disagrees with itself invalidates every
        // other observation of this step.
        return OracleVerdict::TierDivergence;
    }
    match (&obs.checker, &obs.refinement) {
        (CheckerSummary::Accept, RefinementSummary::Fails { .. }) => OracleVerdict::SoundnessAlarm,
        (CheckerSummary::Accept, RefinementSummary::Holds) => OracleVerdict::Agree,
        (CheckerSummary::Accept, RefinementSummary::Inconclusive { .. }) => {
            OracleVerdict::Inconclusive
        }
        (CheckerSummary::Reject(_), RefinementSummary::Fails { .. }) => OracleVerdict::Agree,
        (CheckerSummary::Reject(_), rest) => {
            if matches!(obs.diff, DiffSummary::Differs(_)) {
                // The rejection is justified by the injected difference
                // even when no concrete run can witness it (e.g. a
                // stripped `inbounds`, which only removes behaviours).
                OracleVerdict::Agree
            } else if matches!(rest, RefinementSummary::Holds) {
                OracleVerdict::CompletenessGap
            } else {
                OracleVerdict::Inconclusive
            }
        }
        (CheckerSummary::Abstain(_), _) => OracleVerdict::Inconclusive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reject() -> CheckerSummary {
        CheckerSummary::Reject(Box::new(ValidationError {
            func: "f".into(),
            pass: "gvn".into(),
            at: "row".into(),
            reason: "test".into(),
            rule_history: Vec::new(),
            failing_assertion: None,
        }))
    }

    #[test]
    fn lattice_corners() {
        let obs = |checker, refinement, diff| Observation {
            checker,
            refinement,
            diff,
            tier_divergences: Vec::new(),
        };
        use CheckerSummary::*;
        use DiffSummary::*;
        use RefinementSummary::*;
        // Accept row.
        assert_eq!(
            classify(&obs(
                Accept,
                Fails {
                    input_seed: 0,
                    reason: String::new()
                },
                Clean
            )),
            OracleVerdict::SoundnessAlarm
        );
        assert_eq!(classify(&obs(Accept, Holds, Clean)), OracleVerdict::Agree);
        assert_eq!(
            classify(&obs(Accept, Inconclusive { out_of_fuel: 1 }, Clean)),
            OracleVerdict::Inconclusive
        );
        // Reject row: a witnessed violation or an injected diff justifies
        // the rejection; a conclusive clean hold exposes a gap; fuel
        // exhaustion proves nothing.
        assert_eq!(
            classify(&obs(
                reject(),
                Fails {
                    input_seed: 1,
                    reason: String::new()
                },
                Clean
            )),
            OracleVerdict::Agree
        );
        assert_eq!(
            classify(&obs(reject(), Holds, Differs("x".into()))),
            OracleVerdict::Agree
        );
        assert_eq!(
            classify(&obs(reject(), Holds, Clean)),
            OracleVerdict::CompletenessGap
        );
        assert_eq!(
            classify(&obs(reject(), Inconclusive { out_of_fuel: 2 }, Clean)),
            OracleVerdict::Inconclusive
        );
        // Abstain row.
        assert_eq!(
            classify(&obs(Abstain("ns".into()), Holds, Clean)),
            OracleVerdict::Inconclusive
        );
    }

    #[test]
    fn tier_divergence_overrides_the_lattice() {
        let run = crellvm_interp::RunResult {
            events: Vec::new(),
            end: End::Ret(None),
            steps: 1,
        };
        let mut diverged = run.clone();
        diverged.steps = 2;
        let obs = Observation {
            checker: CheckerSummary::Accept,
            refinement: RefinementSummary::Holds,
            diff: DiffSummary::Clean,
            tier_divergences: vec![DivergenceObservation {
                input_seed: 0,
                module_role: "src",
                divergence: TierDivergence {
                    mismatch: "steps: tree=1 bytecode=2".into(),
                    tree: run,
                    bytecode: diverged,
                },
            }],
        };
        // Even an otherwise-agreeing step is untrustworthy if the
        // interpreter disagrees with itself.
        assert_eq!(classify(&obs), OracleVerdict::TierDivergence);
        assert_eq!(OracleVerdict::TierDivergence.name(), "tier_divergence");
    }

    #[test]
    fn differential_tier_is_silent_on_clean_modules() {
        let m = crellvm_gen::generate_module(&crellvm_gen::GenConfig {
            seed: 11,
            ..Default::default()
        });
        let cfg = OracleConfig {
            tier: Tier::Differential,
            ..OracleConfig::default()
        };
        let mut cache = BcCache::new();
        let tel = Telemetry::disabled();
        let (summary, divs) = refinement_leg_cached(&m, &m, &cfg, Some(&mut cache), &tel);
        assert!(divs.is_empty(), "{divs:?}");
        assert!(matches!(summary, RefinementSummary::Holds));
        // One module, two lookups: one miss, one hit.
        assert_eq!((cache.hits, cache.misses), (1, 1));
    }

    #[test]
    fn out_of_fuel_is_never_a_pass() {
        // A module whose main loops far beyond the configured fuel.
        let m = crellvm_ir::parse_module(
            r#"
            declare @print(i32)
            define @main() {
            entry:
              br label loop
            loop:
              %i = phi i32 [ 0, entry ], [ %j, loop ]
              %j = add i32 %i, 1
              %c = icmp slt i32 %j, 1000000
              br i1 %c, label loop, label done
            done:
              call void @print(i32 %j)
              ret void
            }
            "#,
        )
        .unwrap();
        let cfg = OracleConfig {
            input_seeds: 2,
            fuel: 100,
            tier: Tier::Tree,
        };
        match refinement_leg(&m, &m, &cfg) {
            RefinementSummary::Inconclusive { out_of_fuel } => assert_eq!(out_of_fuel, 2),
            other => panic!("expected inconclusive, got {other:?}"),
        }
    }

    #[test]
    fn identical_modules_hold() {
        let m = crellvm_gen::generate_module(&crellvm_gen::GenConfig {
            seed: 5,
            ..Default::default()
        });
        assert!(matches!(
            refinement_leg(&m, &m, &OracleConfig::default()),
            RefinementSummary::Holds
        ));
        assert!(matches!(diff_leg(&m, &m), DiffSummary::Clean));
    }
}
