//! Reproducible parallel fuzzing campaigns.
//!
//! A campaign runs a seed range through the full generate → optimize →
//! inject → oracle protocol:
//!
//! 1. **Generate** the module for seed `s` ([`crellvm_gen::generate_module`]
//!    with the campaign's generator knobs);
//! 2. for each pass of the `-O2`-like pipeline, run the **honest** pass
//!    (with the configured historical [`BugSet`]), then — with the
//!    campaign's mutate rate — **inject** a seeded [`MutationPlan`] into
//!    the pass output and the matching proof targets;
//! 3. hand the step to the three-way **oracle** ([`crate::oracle`]) and
//!    classify it on the alarm/gap/agree/inconclusive lattice;
//! 4. **minimize** every finding: mutation-induced findings by `ddmin`
//!    over the mutation plan, organic checker rejections by the existing
//!    proof-command `ddmin` ([`crellvm_core::forensics::forensic_bundle`]);
//! 5. **attribute** organic rejections to the historical bugs that
//!    reproduce them (re-running the pass with each bug enabled alone).
//!
//! The *honest* output propagates to the next pass regardless of
//! injection, so one bad mutation cannot poison the rest of the pipeline.
//!
//! # Reproducibility contract
//!
//! Everything seed `s` does is a pure function of `(s, CampaignConfig,
//! GEN_PRNG_VERSION)` — the per-pass mutation RNG is derived from `s`
//! alone, never from global state, the seed range, or the worker that ran
//! it. Consequently a finding replays with a 1-seed campaign
//! (`--seeds s..s+1`), and the deterministic report is byte-identical at
//! any `--jobs` count: seeds fan out over the shared work-stealing pool
//! ([`crellvm_passes::schedule`]), per-worker telemetry merges
//! commutatively, and results reassemble in seed order.

use crate::oracle::{
    classify, input_run_config, observe_step_cached, CheckerSummary, DiffSummary,
    DivergenceObservation, Observation, OracleConfig, OracleVerdict, RefinementSummary,
};
use crellvm_core::{validate, CheckerConfig, ProofUnit};
use crellvm_gen::{
    generate_module, GenConfig, Mutation, MutationPlan, SplitMix64, GEN_PRNG_VERSION,
};
use crellvm_interp::{compile_module_with, run_main_tiered, BcCache, CompileOptions, Tier};
use crellvm_ir::Module;
use crellvm_passes::pipeline::PASS_ORDER;
use crellvm_passes::{gvn, instcombine, licm, mem2reg, BugSet, PassConfig, PassOutcome};
use crellvm_telemetry::forensics::ddmin;
use crellvm_telemetry::{Progress, Registry, Telemetry};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Campaign configuration (the `crellvm fuzz` flag surface plus the
/// generator knobs the CLI keeps fixed).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// First seed (inclusive).
    pub seed_start: u64,
    /// Last seed (exclusive).
    pub seed_end: u64,
    /// Worker threads for the seed fan-out (`0` = machine parallelism).
    pub jobs: usize,
    /// Probability that a function of a pass output gets a mutation plan
    /// injected.
    pub mutate_rate: f64,
    /// Maximum mutations per injected plan (≥1; sampled uniformly).
    pub max_mutations: usize,
    /// The compiler's historical bug population.
    pub bugs: BugSet,
    /// Display name of the bug population (`3.7.1`, `5.0.1-pre`, `none`)
    /// — recorded in reports and repro commands.
    pub compiler: String,
    /// Worker functions per generated module.
    pub functions: usize,
    /// Generator bug-bait rate (campaigns run hotter than the
    /// [`GenConfig`] default so bounded seed ranges still exercise every
    /// historical bug shape).
    pub bait_rate: f64,
    /// Refinement-leg configuration.
    pub oracle: OracleConfig,
    /// Checker configuration for the checker leg. Campaigns run the
    /// sound checker; tests weaken it
    /// ([`CheckerConfig::weakened_accept_all`]) to drive the
    /// soundness-alarm path end to end.
    pub checker: CheckerConfig,
    /// TEST-ONLY: compile the bytecode tier with a deliberately broken
    /// lowering ([`CompileOptions::miscompile_sub_as_add`]) so the
    /// `TierDivergence` path can be driven end to end — the mirror of
    /// `weakened_accept_all` for the interpreter oracle.
    pub bc_miscompile: bool,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            seed_start: 0,
            seed_end: 100,
            jobs: 0,
            mutate_rate: 0.0,
            max_mutations: 3,
            bugs: BugSet::none(),
            compiler: "none".into(),
            functions: 3,
            bait_rate: 0.25,
            oracle: OracleConfig::default(),
            checker: CheckerConfig::sound(),
            bc_miscompile: false,
        }
    }
}

impl CampaignConfig {
    /// Map a `--compiler` flag value to its bug population; `None` for an
    /// unknown name. Besides the version names, each historical bug id
    /// selects a single-bug population, so per-bug repro commands stay
    /// runnable.
    pub fn bugs_for_compiler(name: &str) -> Option<BugSet> {
        match name {
            "3.7.1" => Some(BugSet::llvm_3_7_1()),
            "5.0.1-pre" => Some(BugSet::llvm_5_0_1_prepatch()),
            "5.0.1-post" | "none" => Some(BugSet::none()),
            "pr24179" => Some(BugSet {
                pr24179: true,
                ..BugSet::none()
            }),
            "pr33673" => Some(BugSet {
                pr33673: true,
                ..BugSet::none()
            }),
            "pr28562" => Some(BugSet {
                pr28562: true,
                ..BugSet::none()
            }),
            "d38619" => Some(BugSet {
                d38619: true,
                ..BugSet::none()
            }),
            _ => None,
        }
    }

    /// The one-line reproduction command for a finding at `seed`.
    pub fn repro_command(&self, seed: u64) -> String {
        format!(
            "crellvm fuzz --seeds {}..{} --jobs 1 --mutate-rate {} --compiler {} --out findings",
            seed,
            seed + 1,
            self.mutate_rate,
            self.compiler
        )
    }
}

/// What kind of finding this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FindingKind {
    /// Checker accepted, refinement refuted: the nonzero-exit condition.
    SoundnessAlarm,
    /// Checker rejected a clean translation that held conclusively.
    CompletenessGap,
    /// Checker rejected an *uninjected* translation: a (historical) pass
    /// bug caught, the paper's §7 outcome.
    Rejection,
    /// The interpreter tiers disagreed on an observable: a bug in the
    /// fuzzing *oracle itself* (bytecode lowering, dispatch loop, or the
    /// shared core), found for free by differential execution.
    TierDivergence,
}

/// A minimized, replayable campaign finding.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Finding {
    /// Program seed.
    pub seed: u64,
    /// Pass whose step tripped the oracle.
    pub pass: String,
    /// The function the finding is anchored to (rejecting unit, or the
    /// mutated functions joined with `+` for module-level alarms).
    pub func: String,
    /// Finding kind.
    pub kind: FindingKind,
    /// The oracle's reason (validation error or refinement violation).
    pub reason: String,
    /// The minimized mutation plan (empty for organic findings).
    pub mutations: Vec<Mutation>,
    /// Bug classes modeled by the minimized mutations.
    pub mutation_classes: Vec<String>,
    /// Historical bugs that individually reproduce an organic rejection.
    pub attributed_bugs: Vec<String>,
    /// Whether minimization ran and converged (`ddmin` post-state).
    pub minimized: bool,
    /// A replayable proof-command forensic bundle (organic rejections).
    pub forensic_bundle_json: Option<String>,
    /// One-line reproduction command.
    pub repro: String,
    /// PRNG version the seed is valid under.
    pub gen_prng_version: u32,
}

impl Finding {
    /// Deterministic file stem for the findings directory.
    pub fn file_stem(&self) -> String {
        format!("finding-{}-{}-{}", self.seed, self.pass, self.func)
    }
}

/// One seed's oracle verdicts (pass name → lattice verdict), plus its
/// findings.
struct SeedOutcome {
    verdicts: Vec<OracleVerdict>,
    findings: Vec<Finding>,
}

/// The campaign's deterministic report: everything here is a pure
/// function of the configuration, so it is byte-identical across
/// `--jobs` counts (wall-clock timers and steal counters are deliberately
/// excluded).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// PRNG version the seeds are valid under.
    pub prng_version: u32,
    /// First seed (inclusive).
    pub seed_start: u64,
    /// Last seed (exclusive).
    pub seed_end: u64,
    /// Bug-population display name.
    pub compiler: String,
    /// Injection probability per function per pass.
    pub mutate_rate: f64,
    /// Total `(program, pass)` steps oracled.
    pub steps: u64,
    /// Lattice verdict counts (`agree` / `soundness_alarm` /
    /// `completeness_gap` / `inconclusive`).
    pub verdicts: BTreeMap<String, u64>,
    /// All findings, in (seed, pass) order.
    pub findings: Vec<Finding>,
    /// Historical-bug attribution counts over organic rejections.
    pub attributed: BTreeMap<String, u64>,
    /// Per-inference-rule application counts (`checker.rule.*` with the
    /// prefix stripped), merged from every worker.
    pub rule_coverage: BTreeMap<String, u64>,
}

impl CampaignReport {
    /// Serialize deterministically (sorted maps, ordered findings).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serializes")
    }

    /// Parse a report back (replay tooling, tests).
    ///
    /// # Errors
    ///
    /// Returns the underlying serde error rendered as a string.
    pub fn from_json(input: &str) -> Result<CampaignReport, String> {
        serde_json::from_str(input).map_err(|e| e.to_string())
    }

    /// Does any soundness alarm survive minimization? (The campaign's
    /// nonzero-exit condition: `ddmin` only ever *keeps* reproducing
    /// subsets, so every alarm finding survives by construction.)
    pub fn has_soundness_alarm(&self) -> bool {
        self.findings
            .iter()
            .any(|f| f.kind == FindingKind::SoundnessAlarm)
    }

    /// Findings of one kind.
    pub fn findings_of(&self, kind: FindingKind) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.kind == kind)
    }
}

/// Run one pass by pipeline name.
fn run_pass(name: &str, m: &Module, config: &PassConfig) -> PassOutcome {
    match name {
        "mem2reg" => mem2reg(m, config),
        "instcombine" => instcombine(m, config),
        "gvn" => gvn(m, config),
        "licm" => licm(m, config),
        other => panic!("unknown pass {other}"),
    }
}

/// Derivation constant for the per-(seed, pass) mutation RNG stream:
/// keeps it disjoint from the generator's own stream for the same seed.
const MUTATE_STREAM: u64 = 0x6D75_7461_7465_2121; // "mutate!!"

fn mutation_rng(seed: u64, pass_index: usize) -> SplitMix64 {
    SplitMix64::seed_from_u64(
        seed ^ MUTATE_STREAM ^ ((pass_index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    )
}

/// Apply `plans` (function index → mutation subset selected by `keep`,
/// indexed over the flattened mutation list) to fresh clones of the
/// honest output and proof units.
fn rebuild_observed(
    honest: &Module,
    units: &[ProofUnit],
    plans: &[(usize, MutationPlan)],
    keep: &[bool],
) -> (Module, Vec<ProofUnit>) {
    let mut observed = honest.clone();
    let mut new_units = units.to_vec();
    let mut offset = 0usize;
    for (fi, plan) in plans {
        let n = plan.mutations.len();
        let mask = &keep[offset..offset + n];
        offset += n;
        let mutated = plan.applied_subset(&observed.functions[*fi], mask);
        let name = mutated.name.clone();
        observed.functions[*fi] = mutated.clone();
        if let Some(u) = new_units.iter_mut().find(|u| u.src.name == name) {
            u.tgt = mutated;
        }
    }
    (observed, new_units)
}

/// The flattened mutation list of a plan set.
fn flatten_plans(plans: &[(usize, MutationPlan)]) -> Vec<Mutation> {
    plans
        .iter()
        .flat_map(|(_, p)| p.mutations.iter().cloned())
        .collect()
}

/// Sorted, deduplicated bug-class names of a mutation list.
fn classes_of(mutations: &[Mutation]) -> Vec<String> {
    let mut v: Vec<String> = mutations
        .iter()
        .map(|m| m.bug_class().name().to_string())
        .collect();
    v.sort();
    v.dedup();
    v
}

/// The individually enabled bugs of a [`BugSet`], by field name.
fn enabled_bugs(bugs: &BugSet) -> Vec<(&'static str, BugSet)> {
    let mut v = Vec::new();
    if bugs.pr24179 {
        v.push((
            "pr24179",
            BugSet {
                pr24179: true,
                ..BugSet::none()
            },
        ));
    }
    if bugs.pr33673 {
        v.push((
            "pr33673",
            BugSet {
                pr33673: true,
                ..BugSet::none()
            },
        ));
    }
    if bugs.pr28562 {
        v.push((
            "pr28562",
            BugSet {
                pr28562: true,
                ..BugSet::none()
            },
        ));
    }
    if bugs.d38619 {
        v.push((
            "d38619",
            BugSet {
                d38619: true,
                ..BugSet::none()
            },
        ));
    }
    v
}

/// Attribute an organic rejection of `func` under `pass` to the
/// historical bugs that reproduce it individually: re-run the pass on the
/// same input with exactly one bug enabled and check whether validation
/// of that function still fails.
fn attribute_bugs(pass: &str, input: &Module, func: &str, bugs: &BugSet) -> Vec<String> {
    let mut out = Vec::new();
    for (name, single) in enabled_bugs(bugs) {
        let outcome = run_pass(pass, input, &PassConfig::with_bugs(single));
        let failed = outcome
            .proofs
            .iter()
            .filter(|u| u.src.name == func)
            .any(|u| validate(u).is_err());
        if failed {
            out.push(name.to_string());
        }
    }
    out
}

/// Run one seed through the whole pipeline-with-injection protocol.
fn run_seed(seed: u64, cfg: &CampaignConfig, tel: &Telemetry) -> SeedOutcome {
    let gen_cfg = GenConfig {
        seed,
        functions: cfg.functions,
        bug_bait_rate: cfg.bait_rate,
        ..GenConfig::default()
    };
    let m0 = generate_module(&gen_cfg);
    let pass_config = PassConfig::with_bugs(cfg.bugs);
    let checker = cfg.checker.clone();

    // One compile cache per seed: the 4+ input seeds × both modules of
    // every step share lowerings, and hit/miss counts stay a pure
    // function of the seed's workload (schedule-independent).
    let mut bc_cache = (cfg.oracle.tier != Tier::Tree).then(|| {
        BcCache::with_options(CompileOptions {
            miscompile_sub_as_add: cfg.bc_miscompile,
        })
    });

    let mut verdicts = Vec::with_capacity(PASS_ORDER.len());
    let mut findings = Vec::new();
    let mut cur = m0;
    for (pi, pass) in PASS_ORDER.iter().enumerate() {
        let honest = run_pass(pass, &cur, &pass_config);

        // Seeded injection: derived from (seed, pass) only, so the same
        // seed replays identically in any range at any jobs count.
        let mut rng = mutation_rng(seed, pi);
        let mut plans: Vec<(usize, MutationPlan)> = Vec::new();
        for (fi, f) in honest.module.functions.iter().enumerate() {
            if rng.gen_bool(cfg.mutate_rate) {
                let count = rng.gen_range(1..=cfg.max_mutations.max(1));
                let plan = MutationPlan::sample(f, &mut rng, count);
                if !plan.is_empty() {
                    plans.push((fi, plan));
                }
            }
        }
        let full_mask = vec![true; flatten_plans(&plans).len()];
        let (observed, units) =
            rebuild_observed(&honest.module, &honest.proofs, &plans, &full_mask);

        let obs = observe_step_cached(
            &cur,
            &observed,
            &honest.module,
            &units,
            &checker,
            &cfg.oracle,
            bc_cache.as_mut(),
            tel,
        );
        let verdict = classify(&obs);
        tel.count(&format!("fuzz.verdict.{}", verdict.name()), 1);

        match verdict {
            OracleVerdict::TierDivergence => {
                let div = &obs.tier_divergences[0];
                let module = if div.module_role == "src" {
                    &cur
                } else {
                    &observed
                };
                findings.push(minimize_divergence(seed, pass, module, div, cfg));
            }
            OracleVerdict::SoundnessAlarm => {
                findings.push(minimize_alarm(
                    seed, pass, &cur, &honest, &plans, &obs, cfg, &checker,
                ));
            }
            OracleVerdict::CompletenessGap | OracleVerdict::Agree => {
                // An *organic* rejection (diff clean, nothing injected) is
                // worth filing either way: as a caught compiler bug — the
                // paper's §7 outcome — when some historical bug reproduces
                // it individually or the refinement leg also refuted the
                // step, or as a true completeness gap (the checker rejects
                // a translation no enabled bug explains and refinement
                // conclusively accepted). Both get the proof-command
                // `ddmin` forensic bundle for replay.
                if let (CheckerSummary::Reject(err), DiffSummary::Clean) = (&obs.checker, &obs.diff)
                {
                    let attributed = attribute_bugs(pass, &cur, &err.func, &cfg.bugs);
                    let kind = if verdict == OracleVerdict::CompletenessGap && attributed.is_empty()
                    {
                        FindingKind::CompletenessGap
                    } else {
                        FindingKind::Rejection
                    };
                    let unit = units.iter().find(|u| u.src.name == err.func);
                    let bundle = unit.map(|u| {
                        crellvm_core::forensics::forensic_bundle(u, err, &checker).to_json()
                    });
                    findings.push(Finding {
                        seed,
                        pass: (*pass).to_string(),
                        func: err.func.clone(),
                        kind,
                        reason: err.to_string(),
                        mutations: Vec::new(),
                        mutation_classes: Vec::new(),
                        attributed_bugs: attributed,
                        minimized: bundle.is_some(),
                        forensic_bundle_json: bundle,
                        repro: cfg.repro_command(seed),
                        gen_prng_version: GEN_PRNG_VERSION,
                    });
                }
            }
            OracleVerdict::Inconclusive => {}
        }

        verdicts.push(verdict);
        // Honest propagation: one injected step cannot poison the next.
        cur = honest.module;
    }
    if let Some(c) = &bc_cache {
        tel.count("interp.bc.cache.hits", c.hits);
        tel.count("interp.bc.cache.misses", c.misses);
    }
    SeedOutcome { verdicts, findings }
}

/// Every statement site of a module, in deterministic order.
fn stmt_sites(m: &Module) -> Vec<(usize, usize, usize)> {
    let mut v = Vec::new();
    for (fi, f) in m.functions.iter().enumerate() {
        for (bi, b) in f.blocks.iter().enumerate() {
            for si in 0..b.stmts.len() {
                v.push((fi, bi, si));
            }
        }
    }
    v
}

/// Drop every statement whose `keep` bit is clear (highest index first,
/// so earlier sites stay valid).
fn reduced_module(m: &Module, sites: &[(usize, usize, usize)], keep: &[bool]) -> Module {
    let mut out = m.clone();
    for (i, (fi, bi, si)) in sites.iter().enumerate().rev() {
        if !keep[i] {
            out.functions[*fi].blocks[*bi].stmts.remove(*si);
        }
    }
    out
}

/// Does any oracle input seed witness a tier divergence on this module?
/// Returns the first mismatch description. The interpreter tolerates
/// unverifiable modules (dangling registers read as `undef`), so `ddmin`
/// can cut statements freely.
fn diverges_anywhere(m: &Module, oracle: &OracleConfig, opts: CompileOptions) -> Option<String> {
    let compiled = compile_module_with(m, opts);
    for k in 0..oracle.input_seeds {
        let mut rc = input_run_config(k, oracle.fuel);
        rc.tier = Tier::Differential;
        if let Some(d) = run_main_tiered(m, &rc, Some(&compiled)).divergence {
            return Some(d.mismatch);
        }
    }
    None
}

/// Minimize a tier divergence by `ddmin` over the module's statements:
/// the reduced module must still make the tiers disagree on some oracle
/// input. The finding carries a forensic bundle with both runs'
/// observables and the printed minimal module, and a `--tier
/// differential` repro line.
fn minimize_divergence(
    seed: u64,
    pass: &str,
    module: &Module,
    div: &DivergenceObservation,
    cfg: &CampaignConfig,
) -> Finding {
    let opts = CompileOptions {
        miscompile_sub_as_add: cfg.bc_miscompile,
    };
    let sites = stmt_sites(module);
    let keep = ddmin(sites.len(), |mask| {
        diverges_anywhere(&reduced_module(module, &sites, mask), &cfg.oracle, opts).is_some()
    });
    let min_module = reduced_module(module, &sites, &keep);
    let min_mismatch = diverges_anywhere(&min_module, &cfg.oracle, opts)
        .unwrap_or_else(|| div.divergence.mismatch.clone());

    #[derive(Serialize)]
    struct DivergenceBundle {
        kind: &'static str,
        input_seed: u64,
        module_role: &'static str,
        mismatch: String,
        tree_end: String,
        bytecode_end: String,
        tree_steps: u64,
        bytecode_steps: u64,
        tree_events: usize,
        bytecode_events: usize,
        minimized_mismatch: String,
        minimized_module: String,
    }
    let bundle = DivergenceBundle {
        kind: "tier_divergence",
        input_seed: div.input_seed,
        module_role: div.module_role,
        mismatch: div.divergence.mismatch.clone(),
        tree_end: format!("{:?}", div.divergence.tree.end),
        bytecode_end: format!("{:?}", div.divergence.bytecode.end),
        tree_steps: div.divergence.tree.steps,
        bytecode_steps: div.divergence.bytecode.steps,
        tree_events: div.divergence.tree.events.len(),
        bytecode_events: div.divergence.bytecode.events.len(),
        minimized_mismatch: min_mismatch,
        minimized_module: crellvm_ir::printer::print_module(&min_module),
    };
    let bundle = serde_json::to_string(&bundle).expect("bundle serializes");
    Finding {
        seed,
        pass: pass.to_string(),
        func: div.module_role.to_string(),
        kind: FindingKind::TierDivergence,
        reason: format!(
            "tier divergence on input seed {}: {}",
            div.input_seed, div.divergence.mismatch
        ),
        mutations: Vec::new(),
        mutation_classes: Vec::new(),
        attributed_bugs: Vec::new(),
        minimized: true,
        forensic_bundle_json: Some(bundle),
        repro: format!("{} --tier differential", cfg.repro_command(seed)),
        gen_prng_version: GEN_PRNG_VERSION,
    }
}

/// Minimize a soundness alarm by `ddmin` over the flattened mutation
/// plan: the kept subset must still make the checker accept *and* the
/// refinement leg fail. With no mutations at all (an organic alarm — a
/// genuine checker soundness bug) there is nothing to shrink and the
/// alarm survives as-is.
#[allow(clippy::too_many_arguments)]
fn minimize_alarm(
    seed: u64,
    pass: &str,
    src: &Module,
    honest: &PassOutcome,
    plans: &[(usize, MutationPlan)],
    obs: &Observation,
    cfg: &CampaignConfig,
    checker: &CheckerConfig,
) -> Finding {
    let quiet = Telemetry::disabled();
    let flat = flatten_plans(plans);
    let keep = ddmin(flat.len(), |mask| {
        let (observed, units) = rebuild_observed(&honest.module, &honest.proofs, plans, mask);
        let accepts = matches!(
            crate::oracle::checker_leg(&units, checker, &quiet),
            CheckerSummary::Accept
        );
        accepts
            && matches!(
                crate::oracle::refinement_leg(src, &observed, &cfg.oracle),
                RefinementSummary::Fails { .. }
            )
    });
    let minimized: Vec<Mutation> = flat
        .iter()
        .zip(&keep)
        .filter(|(_, k)| **k)
        .map(|(m, _)| m.clone())
        .collect();
    let funcs: Vec<String> = {
        let mut v: Vec<String> = plans
            .iter()
            .filter(|(_, p)| !p.is_empty())
            .map(|(fi, _)| honest.module.functions[*fi].name.clone())
            .collect();
        v.sort();
        v.dedup();
        if v.is_empty() {
            v.push("module".into());
        }
        v
    };
    let reason = match &obs.refinement {
        RefinementSummary::Fails { input_seed, reason } => {
            format!("refinement violated on input seed {input_seed}: {reason}")
        }
        other => format!("unexpected refinement summary {other:?}"),
    };
    Finding {
        seed,
        pass: pass.to_string(),
        func: funcs.join("+"),
        kind: FindingKind::SoundnessAlarm,
        reason,
        mutation_classes: classes_of(&minimized),
        mutations: minimized,
        attributed_bugs: Vec::new(),
        minimized: true,
        forensic_bundle_json: None,
        repro: cfg.repro_command(seed),
        gen_prng_version: GEN_PRNG_VERSION,
    }
}

/// Run a campaign: fan the seed range over the work-stealing pool,
/// merge per-worker telemetry in worker order, and reassemble outcomes
/// in seed order into the deterministic [`CampaignReport`].
///
/// Rule-coverage counters (`checker.rule.*`), verdict counters
/// (`fuzz.verdict.*`), and the per-worker `fuzz.steal.*` counters are
/// also merged into `tel`'s registry for observability.
pub fn run_campaign(cfg: &CampaignConfig, tel: &Telemetry) -> CampaignReport {
    run_campaign_with_progress(cfg, tel, None)
}

/// [`run_campaign`] with a live heartbeat: each finished seed pushes its
/// step count (so the reporter's rate column reads as oracle executions
/// per second) and any soundness alarms into `progress`. The reporter
/// renders to stderr only, so the deterministic [`CampaignReport`] is
/// byte-identical with or without it.
pub fn run_campaign_with_progress(
    cfg: &CampaignConfig,
    tel: &Telemetry,
    progress: Option<Arc<Progress>>,
) -> CampaignReport {
    let n = (cfg.seed_end.saturating_sub(cfg.seed_start)) as usize;
    let jobs = if cfg.jobs == 0 {
        crellvm_passes::default_jobs()
    } else {
        cfg.jobs
    };

    struct WorkerState {
        registry: Arc<Registry>,
        wtel: Telemetry,
    }
    let pool = crellvm_passes::run_work_stealing(
        n,
        jobs,
        |_| 1,
        |_w| {
            let registry = Arc::new(Registry::new());
            let wtel = Telemetry::with_registry(Arc::clone(&registry));
            WorkerState { registry, wtel }
        },
        |_w, state, i| {
            let outcome = run_seed(cfg.seed_start + i as u64, cfg, &state.wtel);
            if let Some(p) = &progress {
                p.add_done(outcome.verdicts.len() as u64);
                let alarms = outcome
                    .findings
                    .iter()
                    .filter(|f| f.kind == FindingKind::SoundnessAlarm)
                    .count();
                p.add_alarms(alarms as u64);
            }
            outcome
        },
        |w, state, steals| {
            state.registry.add(&format!("fuzz.steal.w{w}"), steals);
            state.registry.snapshot()
        },
    );

    // Merge per-worker registries in worker order; every campaign metric
    // is a commutative per-seed sum, so totals are schedule-independent.
    let merged = Registry::new();
    for snapshot in &pool.worker_summaries {
        merged.merge_snapshot(snapshot);
        tel.registry().merge_snapshot(snapshot);
    }
    let snap = merged.snapshot();

    let mut verdict_counts: BTreeMap<String, u64> = BTreeMap::new();
    for v in [
        OracleVerdict::Agree,
        OracleVerdict::SoundnessAlarm,
        OracleVerdict::CompletenessGap,
        OracleVerdict::Inconclusive,
        OracleVerdict::TierDivergence,
    ] {
        verdict_counts.insert(v.name().to_string(), 0);
    }
    let mut findings = Vec::new();
    let mut steps = 0u64;
    for outcome in pool.results {
        for v in &outcome.verdicts {
            steps += 1;
            *verdict_counts.entry(v.name().to_string()).or_insert(0) += 1;
        }
        findings.extend(outcome.findings);
    }

    let mut attributed: BTreeMap<String, u64> = BTreeMap::new();
    for f in &findings {
        for b in &f.attributed_bugs {
            *attributed.entry(b.clone()).or_insert(0) += 1;
        }
    }

    let rule_coverage: BTreeMap<String, u64> = snap
        .counters
        .iter()
        .filter_map(|(k, v)| {
            k.strip_prefix("checker.rule.")
                .map(|name| (name.to_string(), *v))
        })
        .collect();

    CampaignReport {
        prng_version: GEN_PRNG_VERSION,
        seed_start: cfg.seed_start,
        seed_end: cfg.seed_end,
        compiler: cfg.compiler.clone(),
        mutate_rate: cfg.mutate_rate,
        steps,
        verdicts: verdict_counts,
        findings,
        attributed,
        rule_coverage,
    }
}

/// Write every finding (and the report itself) into `dir` as JSON files,
/// returning the written paths. File names are deterministic:
/// `finding-<seed>-<pass>-<func>.json` plus `report.json`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_findings(
    report: &CampaignReport,
    dir: &std::path::Path,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for f in &report.findings {
        let path = dir.join(format!("{}.json", f.file_stem()));
        std::fs::write(&path, serde_json::to_string(f).expect("finding serializes"))?;
        written.push(path);
    }
    let path = dir.join("report.json");
    std::fs::write(&path, report.to_json())?;
    written.push(path);
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiler_names_map_to_bug_sets() {
        assert_eq!(
            CampaignConfig::bugs_for_compiler("3.7.1"),
            Some(BugSet::llvm_3_7_1())
        );
        assert_eq!(
            CampaignConfig::bugs_for_compiler("5.0.1-pre"),
            Some(BugSet::llvm_5_0_1_prepatch())
        );
        assert_eq!(
            CampaignConfig::bugs_for_compiler("none"),
            Some(BugSet::none())
        );
        assert_eq!(CampaignConfig::bugs_for_compiler("4.0"), None);
    }

    #[test]
    fn repro_command_is_one_seed_wide() {
        let cfg = CampaignConfig {
            mutate_rate: 0.25,
            compiler: "3.7.1".into(),
            ..CampaignConfig::default()
        };
        assert_eq!(
            cfg.repro_command(41),
            "crellvm fuzz --seeds 41..42 --jobs 1 --mutate-rate 0.25 --compiler 3.7.1 --out findings"
        );
    }

    #[test]
    fn clean_compiler_small_campaign_agrees() {
        let cfg = CampaignConfig {
            seed_start: 0,
            seed_end: 6,
            jobs: 2,
            mutate_rate: 0.0,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg, &Telemetry::disabled());
        assert_eq!(report.steps, 6 * PASS_ORDER.len() as u64);
        assert!(!report.has_soundness_alarm());
        assert_eq!(report.verdicts["completeness_gap"], 0);
        assert!(report.rule_coverage.values().sum::<u64>() > 0);
    }

    #[test]
    fn injection_is_caught_and_classified_agree() {
        // With a sound checker, injected mutations must be rejected and
        // the rejection justified (diff leg) — never a completeness gap.
        let cfg = CampaignConfig {
            seed_start: 0,
            seed_end: 8,
            jobs: 2,
            mutate_rate: 0.8,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg, &Telemetry::disabled());
        assert!(!report.has_soundness_alarm());
        assert_eq!(report.verdicts["completeness_gap"], 0);
    }

    #[test]
    fn reports_are_byte_identical_across_tiers() {
        // The bytecode tier must be a pure performance substitution: the
        // deterministic report cannot depend on which tier executed the
        // refinement leg (nor on the jobs count).
        let base = CampaignConfig {
            seed_start: 0,
            seed_end: 5,
            jobs: 1,
            mutate_rate: 0.5,
            ..CampaignConfig::default()
        };
        let tree = run_campaign(&base, &Telemetry::disabled()).to_json();
        let bc_cfg = CampaignConfig {
            jobs: 2,
            oracle: OracleConfig {
                tier: Tier::Bytecode,
                ..OracleConfig::default()
            },
            ..base.clone()
        };
        let bytecode = run_campaign(&bc_cfg, &Telemetry::disabled()).to_json();
        assert_eq!(tree, bytecode);
    }

    #[test]
    fn differential_tier_is_clean_on_healthy_lowering() {
        let cfg = CampaignConfig {
            seed_start: 0,
            seed_end: 5,
            jobs: 2,
            mutate_rate: 0.5,
            oracle: OracleConfig {
                tier: Tier::Differential,
                ..OracleConfig::default()
            },
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg, &Telemetry::disabled());
        assert_eq!(report.verdicts["tier_divergence"], 0);
    }

    #[test]
    fn sabotaged_lowering_is_caught_as_tier_divergence() {
        let cfg = CampaignConfig {
            seed_start: 0,
            seed_end: 6,
            jobs: 2,
            mutate_rate: 0.0,
            bc_miscompile: true,
            oracle: OracleConfig {
                tier: Tier::Differential,
                ..OracleConfig::default()
            },
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg, &Telemetry::disabled());
        assert!(
            report.verdicts["tier_divergence"] > 0,
            "sub-as-add sabotage must diverge somewhere in 6 seeds"
        );
        let f = report
            .findings_of(FindingKind::TierDivergence)
            .next()
            .expect("divergence verdicts must file findings");
        assert!(f.repro.ends_with("--tier differential"), "{}", f.repro);
        assert!(f.minimized);
        let bundle = f.forensic_bundle_json.as_deref().expect("bundle");
        assert!(bundle.contains("tier_divergence"));
        assert!(bundle.contains("minimized_module"));
    }

    #[test]
    fn report_roundtrips_through_json() {
        let cfg = CampaignConfig {
            seed_start: 3,
            seed_end: 5,
            mutate_rate: 0.5,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg, &Telemetry::disabled());
        let json = report.to_json();
        let back = CampaignReport::from_json(&json).unwrap();
        assert_eq!(back.to_json(), json);
    }
}
