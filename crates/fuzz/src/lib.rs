//! Soundness fuzzing engine for the Crellvm toolchain.
//!
//! The checker's job is to never say *Valid* for a miscompilation; the
//! test suite can only show it does so on the translations we thought to
//! write down. This crate closes the loop with an adversary:
//!
//! * [`crellvm_gen::mutate`] injects seeded semantic mutations into pass
//!   *outputs* (dropped stores, undef'd loads, `inbounds` perturbations,
//!   flipped predicates, swapped non-commutative operands, perturbed phi
//!   incomings), each tagged with the paper bug class it models;
//! * [`oracle`] cross-checks three independent verdicts per
//!   `(program, pass)` unit — the ERHL checker, interpreter-based
//!   `Beh(src) ⊇ Beh(tgt)` refinement on concrete inputs, and the
//!   structural diff — and classifies disagreements as **soundness
//!   alarms** (checker accepts, refinement refutes) or **completeness
//!   gaps** (checker rejects, refinement holds conclusively);
//! * [`campaign`] runs reproducible parallel campaigns over seed ranges
//!   on the shared work-stealing pool, `ddmin`-minimizes every finding
//!   into a replayable bundle, and accounts per-inference-rule coverage
//!   through telemetry.
//!
//! `OutOfFuel` interpreter runs are *inconclusive*, never a pass: a
//! refinement leg that ran out of fuel cannot promote a rejection into a
//! completeness gap, and cannot clear an acceptance.

pub mod campaign;
pub mod oracle;

pub use campaign::{
    run_campaign, run_campaign_with_progress, write_findings, CampaignConfig, CampaignReport,
    Finding, FindingKind,
};
pub use oracle::{
    classify, observe_step, observe_step_cached, refinement_leg, refinement_leg_cached,
    CheckerSummary, DiffSummary, DivergenceObservation, Observation, OracleConfig, OracleVerdict,
    RefinementSummary,
};
