//! The parallel validation engine: per-function (pass → proof → check)
//! fan-out over a std-only scoped work-stealing pool.
//!
//! The paper's validation unit is one function under one pass, and units
//! are independent — embarrassingly parallel. This module exploits that:
//!
//! * **Work items** are function indices, seeded by *interleaved
//!   size-rank*: functions are ranked by statement count (largest first)
//!   and rank `r` lands in worker `r mod workers`' deque, so every worker
//!   starts with a comparable mix of big and small functions instead of
//!   one worker owning the expensive head of the module. When a deque
//!   runs dry the worker *steals* from the back of a sibling's deque, so
//!   a residual imbalance still cannot serialize the run.
//! * **No shared mutable state on the hot path.** Each worker records into
//!   its own private [`Registry`] and reuses its own
//!   [`CodecScratch`](crate::pipeline::CodecScratch) buffers for the io
//!   phase; each validation unit owns its own expression interner (see
//!   `crellvm_core::checker`). Workers share only the immutable input
//!   module, the optional [`ValidationCache`], and, when tracing, the
//!   append-only trace sink.
//! * **Incremental validation.** With [`ParallelOptions::cache`] set, the
//!   scheduler consults a content-addressed [`ValidationCache`] before
//!   dispatching a unit: a hit replays the stored verdict, proof, and the
//!   unit's deterministic metrics snapshot instead of running
//!   PCal / I-O / PCheck. Misses run with a per-item registry so the
//!   unit's metric delta can be captured into the new cache entry —
//!   which is what makes a warm run's `Snapshot::deterministic` view
//!   byte-identical to a cold one. Only `cache.hits` / `cache.misses` /
//!   `cache.evictions` (schedule- and history-scoped, excluded from the
//!   deterministic view) differ.
//! * **Deterministic merging.** Results are scattered back by function
//!   index, so [`PipelineReport`] step order is the module's function
//!   order at any thread count. Worker registries are merged in worker
//!   order with [`Registry::merge_snapshot`]; every measurement metric is
//!   a commutative per-item sum, so the merged values are independent of
//!   scheduling. The only schedule-dependent metrics are wall-clock
//!   timers, `pipeline.jobs`, and the per-worker `validate.steal.*`
//!   counters — exactly the set [`Snapshot::deterministic`] excludes.
//!
//! [`Snapshot::deterministic`]: crellvm_telemetry::Snapshot::deterministic

use crate::config::{PassConfig, PassOutcome};
use crate::pipeline::{
    CodecScratch, PipelineReport, ProofFormat, SpanItem, StepOutcome, StepRecord, PASS_ORDER,
};
use crellvm_core::cache::{OUTCOME_FAILED, OUTCOME_NOT_SUPPORTED, OUTCOME_VALID};
use crellvm_core::serialize_bin::DecodeScratch;
use crellvm_core::{
    proof_from_bytes, proof_to_bytes_v2, serialize_bin, validate_with_interner,
    validate_with_telemetry, CacheEntry, CacheKey, CheckerConfig, DecodedProof, ProofUnit,
    ValidationCache, ValidationError, Verdict,
};
use crellvm_ir::{Function, Module};
use crellvm_telemetry::forensics::ForensicBundle;
use crellvm_telemetry::json::Value;
use crellvm_telemetry::{Progress, Registry, Snapshot, SpanCollector, SpanNode, Telemetry};
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Options of the parallel validation engine.
#[derive(Debug, Clone)]
pub struct ParallelOptions {
    /// Number of worker threads to fan validation out over. The engine
    /// never spawns more workers than there are functions.
    pub jobs: usize,
    /// Proof wire format for the I/O phase (wire format v2 by default).
    pub format: ProofFormat,
    /// Collect causal spans (module → function → pass → phase →
    /// proof-command) into [`PipelineReport::span_items`].
    pub spans: bool,
    /// Build a replayable [`ForensicBundle`] for every failed step into
    /// [`PipelineReport::bundles`].
    pub forensics: bool,
    /// Content-addressed validation cache consulted before dispatching a
    /// unit. Ignored while `spans` or `forensics` are on — those need the
    /// unit to actually run.
    pub cache: Option<Arc<ValidationCache>>,
    /// Tenant namespace layered over every cache key (see
    /// [`CacheKey::namespaced`]). Empty (the default) keeps the offline
    /// single-tenant keys; the serving daemon sets it per request so
    /// tenants sharing one cache store never observe each other's
    /// verdicts.
    pub cache_namespace: String,
    /// Live-state gauge tap: when set, the engine maintains
    /// `pool.workers` (the fan-out width) and `pool.inflight` (units
    /// being validated right now) gauges in this registry. This is a
    /// *shared external* registry — typically the serving daemon's — not
    /// the per-worker measurement registries, so live observability never
    /// perturbs the deterministic metric view.
    pub pool_gauges: Option<Arc<Registry>>,
    /// Live heartbeat reporter (`--progress`). Workers push item and
    /// cache-outcome counts into it lock-free; it renders to stderr only,
    /// so the deterministic metrics/span view is untouched.
    pub progress: Option<Arc<Progress>>,
    /// Decode-ahead window: how many encoded proofs a worker may have in
    /// flight on the shared decode thread before it blocks. With a
    /// non-zero window the I/O decode half runs on its own thread,
    /// overlapped with PCheck of already-decoded units (and with the next
    /// unit's Orig/PCal), so the per-item `io` cost on the critical path
    /// shrinks to encode + residual wait. `0` disables pipelining (the
    /// decode runs inline on the worker, as before); span collection also
    /// forces the inline path, since relocating the decode would change
    /// the causal span tree.
    pub decode_ahead: usize,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            jobs: default_jobs(),
            format: ProofFormat::default(),
            spans: false,
            forensics: false,
            cache: None,
            cache_namespace: String::new(),
            pool_gauges: None,
            progress: None,
            decode_ahead: 2,
        }
    }
}

impl ParallelOptions {
    /// Options with an explicit worker count (`0` means the default).
    pub fn with_jobs(jobs: usize) -> ParallelOptions {
        ParallelOptions {
            jobs: if jobs == 0 { default_jobs() } else { jobs },
            ..ParallelOptions::default()
        }
    }
}

/// The default worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run one pass over a single function (the per-function slice of
/// `pipeline::run_pass`).
fn run_pass_function(name: &str, f: &Function, config: &PassConfig, tel: &Telemetry) -> ProofUnit {
    match name {
        "mem2reg" => crate::mem2reg::promote_function_traced(f, config, tel),
        "instcombine" => crate::instcombine::instcombine_function_traced(f, config, tel),
        "gvn" => crate::gvn::gvn_function_traced(f, config, tel),
        "licm" => crate::licm::licm_function_traced(f, config, tel),
        other => panic!("unknown pass {other}"),
    }
}

/// Everything one work item produces: the proof unit (still holding the
/// transformed function body), the step record, the four Fig 6/8 time
/// columns, and — when enabled — the item's causal span subtree and the
/// forensic bundle of a failed check.
struct ItemResult {
    unit: ProofUnit,
    record: StepRecord,
    orig: Duration,
    pcal: Duration,
    io: Duration,
    pcheck: Duration,
    span: Option<SpanNode>,
    bundle: Option<ForensicBundle>,
}

/// One work item: the full Orig / PCal / I-O / PCheck protocol for one
/// function under one pass, recording into the worker's telemetry.
///
/// When span collection is on, the item gets a *fresh* [`SpanCollector`]
/// — never shared with another thread — so recording stays lock-free and
/// the finished subtree can travel back with the result for deterministic
/// assembly.
fn process_item(
    pass: &str,
    f: &Function,
    config: &PassConfig,
    checker: &CheckerConfig,
    opts: &ParallelOptions,
    tel: &Telemetry,
    scratch: &mut CodecScratch,
) -> ItemResult {
    let collector = if opts.spans {
        Some(Arc::new(SpanCollector::new()))
    } else {
        None
    };
    let tel = &match &collector {
        Some(c) => tel.clone().with_spans(Arc::clone(c)),
        None => tel.clone(),
    };
    let pass_span = tel.causal(pass, "pass");
    pass_span.field("func", Value::Str(f.name.clone()));

    // Orig: the bare pass, proof generation genuinely disabled, telemetry
    // disabled so domain counters are not double-counted.
    let t0 = Instant::now();
    {
        let _g = tel.causal("orig", "phase");
        let _ = run_pass_function(pass, f, &config.without_proofs(), &Telemetry::disabled());
    }
    let orig = t0.elapsed();
    tel.registry().record_duration("time.orig", orig);

    let t1 = Instant::now();
    let unit = {
        let _g = tel.causal("pcal", "phase");
        run_pass_function(pass, f, config, tel)
    };
    let pcal = t1.elapsed();
    tel.registry().record_duration("time.pcal", pcal);

    tel.count("pipeline.steps", 1);
    let t2 = Instant::now();
    let (unit2, wire_len) = {
        let _g = tel.causal("io", "phase");
        let wire_len = opts.format.encode_into(&unit, scratch);
        tel.registry()
            .record_duration("time.io.encode", t2.elapsed());
        let td = Instant::now();
        let unit2 = opts.format.decode_scratch(scratch);
        tel.registry()
            .record_duration("time.io.decode", td.elapsed());
        (unit2, wire_len)
    };
    let io = t2.elapsed();
    tel.registry().record_duration("time.io", io);
    tel.observe("pipeline.proof_bytes", wire_len as u64);
    tel.count(opts.format.bytes_counter(), wire_len as u64);

    let t3 = Instant::now();
    let mut failure: Option<ValidationError> = None;
    let outcome = {
        let _g = tel.causal("pcheck", "phase");
        match validate_with_telemetry(&unit2, checker, tel) {
            Ok(Verdict::Valid) => {
                tel.count("pipeline.validated", 1);
                StepOutcome::Valid
            }
            Ok(Verdict::NotSupported(r)) => {
                tel.count("pipeline.not_supported", 1);
                StepOutcome::NotSupported(r)
            }
            Err(e) => {
                tel.count("pipeline.failed", 1);
                let msg = e.to_string();
                failure = Some(e);
                StepOutcome::Failed(msg)
            }
        }
    };
    let pcheck = t3.elapsed();
    tel.registry().record_duration("time.pcheck", pcheck);

    // Forensics run outside the PCheck timing window (minimization
    // re-validates the proof many times) with disabled telemetry inside
    // `forensic_bundle`, so the Fig 6/8 columns and the deterministic
    // metric view stay untouched apart from the bundle counter.
    let bundle = match &failure {
        Some(e) if opts.forensics => {
            tel.count("forensics.bundles", 1);
            let mut b = crellvm_core::forensics::forensic_bundle(&unit2, e, checker);
            b.wire_format = opts.format.name().to_string();
            Some(b)
        }
        _ => None,
    };

    pass_span.field("proof_bytes", Value::UInt(wire_len as u64));
    pass_span.field(
        "verdict",
        Value::Str(
            match &outcome {
                StepOutcome::Valid => "valid",
                StepOutcome::Failed(_) => "failed",
                StepOutcome::NotSupported(_) => "not_supported",
            }
            .to_string(),
        ),
    );
    drop(pass_span);
    let span = collector.as_ref().and_then(|c| c.take_roots().pop());

    let record = StepRecord {
        pass: pass.to_string(),
        func: unit.src.name.clone(),
        outcome,
        proof_bytes: wire_len,
    };
    ItemResult {
        unit,
        record,
        orig,
        pcal,
        io,
        pcheck,
        span,
        bundle,
    }
}

/// One encoded proof on its way to the decode-ahead thread.
struct DecodeReq {
    worker: usize,
    item: usize,
    bytes: Vec<u8>,
}

/// A decoded (and interner-seeded) proof on its way back to the worker
/// that submitted it, carrying the decode's own duration and the spent
/// encode buffer for reuse.
struct DecodeResp {
    item: usize,
    decoded: DecodedProof,
    decode: Duration,
    buf: Vec<u8>,
}

/// The worker ⇄ decode-thread exchange: a shared FIFO request queue and
/// one response deque per worker. FIFO both ways means each worker's
/// responses arrive in its submission order, so a worker's pending items
/// form a simple queue — no reordering buffer needed.
struct DecodeExchange {
    queue: Mutex<(VecDeque<DecodeReq>, bool)>,
    queue_cv: Condvar,
    resp: Vec<(Mutex<VecDeque<DecodeResp>>, Condvar)>,
}

impl DecodeExchange {
    fn new(workers: usize) -> DecodeExchange {
        DecodeExchange {
            queue: Mutex::new((VecDeque::new(), false)),
            queue_cv: Condvar::new(),
            resp: (0..workers)
                .map(|_| (Mutex::new(VecDeque::new()), Condvar::new()))
                .collect(),
        }
    }

    fn submit(&self, req: DecodeReq) {
        self.queue
            .lock()
            .expect("decode queue poisoned")
            .0
            .push_back(req);
        self.queue_cv.notify_one();
    }

    /// Mark the request stream finished (the decode thread drains what is
    /// queued, then exits).
    fn close(&self) {
        self.queue.lock().expect("decode queue poisoned").1 = true;
        self.queue_cv.notify_all();
    }

    /// Decode-thread side: block for the next request; `None` once the
    /// stream is closed and drained.
    fn next_request(&self) -> Option<DecodeReq> {
        let mut q = self.queue.lock().expect("decode queue poisoned");
        loop {
            if let Some(req) = q.0.pop_front() {
                return Some(req);
            }
            if q.1 {
                return None;
            }
            q = self.queue_cv.wait(q).expect("decode queue poisoned");
        }
    }

    /// Non-blocking poll for a finished decode of worker `w`.
    fn try_recv(&self, w: usize) -> Option<DecodeResp> {
        self.resp[w]
            .0
            .lock()
            .expect("resp queue poisoned")
            .pop_front()
    }

    /// Block until a decode of worker `w` is ready, returning how long the
    /// worker actually waited — the only part of the decode that remains
    /// on the worker's critical path.
    fn recv(&self, w: usize) -> (DecodeResp, Duration) {
        let t = Instant::now();
        let (lock, cv) = &self.resp[w];
        let mut q = lock.lock().expect("resp queue poisoned");
        loop {
            if let Some(r) = q.pop_front() {
                return (r, t.elapsed());
            }
            q = cv.wait(q).expect("resp queue poisoned");
        }
    }
}

/// The decode-ahead thread: pull encoded proofs, decode + seed the
/// expression interner, hand the [`DecodedProof`] back to the submitting
/// worker. One thread (with one reusable [`DecodeScratch`]) serves the
/// whole pool; the decode duration travels with each response so the
/// receiving worker can account `time.io.decode` / `.decode_overlap`
/// itself — the thread touches no telemetry of its own.
fn decode_loop(exchange: &DecodeExchange, format: ProofFormat) {
    let mut dec = DecodeScratch::default();
    while let Some(req) = exchange.next_request() {
        let t = Instant::now();
        let decoded = format.decode_seeded(&req.bytes, &mut dec);
        let decode = t.elapsed();
        let (lock, cv) = &exchange.resp[req.worker];
        lock.lock()
            .expect("resp queue poisoned")
            .push_back(DecodeResp {
                item: req.item,
                decoded,
                decode,
                buf: req.bytes,
            });
        cv.notify_one();
    }
}

/// The producer half of a pipelined work item: Orig, PCal, and the encode
/// half of I/O. The encoded bytes leave for the decode thread; everything
/// needed to finish the item once its decode comes back rides here.
struct ProducedItem {
    unit: ProofUnit,
    wire_len: usize,
    orig: Duration,
    pcal: Duration,
    encode: Duration,
    /// Per-item registry + telemetry of a cache miss (its deterministic
    /// delta is captured into the new cache entry at completion); `None`
    /// on the uncached path, where the worker registry records directly.
    itel: Option<(Arc<Registry>, Telemetry)>,
    /// Cache key to insert under at completion (misses only).
    key: Option<CacheKey>,
}

/// Run Orig + PCal + encode for one item, recording into `tel`. Returns
/// the produced state and the encoded bytes (the codec buffer is swapped
/// out against `spare_buf`, so buffers cycle worker → decode thread →
/// worker without reallocating).
fn produce_item(
    pass: &str,
    f: &Function,
    config: &PassConfig,
    opts: &ParallelOptions,
    tel: &Telemetry,
    scratch: &mut CodecScratch,
    spare_buf: Vec<u8>,
) -> (ProducedItem, Vec<u8>) {
    let t0 = Instant::now();
    let _ = run_pass_function(pass, f, &config.without_proofs(), &Telemetry::disabled());
    let orig = t0.elapsed();
    tel.registry().record_duration("time.orig", orig);

    let t1 = Instant::now();
    let unit = run_pass_function(pass, f, config, tel);
    let pcal = t1.elapsed();
    tel.registry().record_duration("time.pcal", pcal);

    tel.count("pipeline.steps", 1);
    let t2 = Instant::now();
    let wire_len = opts.format.encode_into(&unit, scratch);
    let encode = t2.elapsed();
    tel.registry().record_duration("time.io.encode", encode);
    tel.observe("pipeline.proof_bytes", wire_len as u64);
    tel.count(opts.format.bytes_counter(), wire_len as u64);
    let bytes = std::mem::replace(&mut scratch.buf, spare_buf);

    (
        ProducedItem {
            unit,
            wire_len,
            orig,
            pcal,
            encode,
            itel: None,
            key: None,
        },
        bytes,
    )
}

/// Finish a pipelined item once its decode arrived: PCheck against the
/// pre-seeded interner, forensics, telemetry, and — on a cache miss — the
/// capture of the item's deterministic metric delta into a new cache
/// entry. `waited` is how long the worker blocked for this response; the
/// item's critical-path `io` is encode + that wait, while the decode's
/// full duration is accounted under `time.io.decode` and its overlapped
/// share under `time.io.decode_overlap` (all timers, so the deterministic
/// snapshot view is identical to the inline path's).
#[allow(clippy::too_many_arguments)]
fn finish_pipelined(
    pass: &str,
    produced: ProducedItem,
    resp: DecodeResp,
    waited: Duration,
    checker: &CheckerConfig,
    opts: &ParallelOptions,
    wtel: &Telemetry,
    cache: Option<&ValidationCache>,
) -> (ItemResult, Vec<u8>) {
    let ProducedItem {
        unit,
        wire_len,
        orig,
        pcal,
        encode,
        itel,
        key,
    } = produced;
    let DecodeResp {
        decoded,
        decode,
        buf,
        ..
    } = resp;

    let io = encode + waited;
    let (outcome, pcheck, bundle) = {
        let tel = itel.as_ref().map_or(wtel, |(_, t)| t);
        tel.registry().record_duration("time.io", io);
        tel.registry().record_duration("time.io.decode", decode);
        tel.registry()
            .record_duration("time.io.decode_overlap", decode.saturating_sub(waited));

        let t3 = Instant::now();
        let mut failure: Option<ValidationError> = None;
        let outcome = match validate_with_interner(&decoded.unit, checker, tel, decoded.interner) {
            Ok(Verdict::Valid) => {
                tel.count("pipeline.validated", 1);
                StepOutcome::Valid
            }
            Ok(Verdict::NotSupported(r)) => {
                tel.count("pipeline.not_supported", 1);
                StepOutcome::NotSupported(r)
            }
            Err(e) => {
                tel.count("pipeline.failed", 1);
                let msg = e.to_string();
                failure = Some(e);
                StepOutcome::Failed(msg)
            }
        };
        let pcheck = t3.elapsed();
        tel.registry().record_duration("time.pcheck", pcheck);

        let bundle = match &failure {
            Some(e) if opts.forensics => {
                tel.count("forensics.bundles", 1);
                let mut b = crellvm_core::forensics::forensic_bundle(&decoded.unit, e, checker);
                b.wire_format = opts.format.name().to_string();
                Some(b)
            }
            _ => None,
        };
        (outcome, pcheck, bundle)
    };

    let record = StepRecord {
        pass: pass.to_string(),
        func: unit.src.name.clone(),
        outcome,
        proof_bytes: wire_len,
    };
    let result = ItemResult {
        unit,
        record,
        orig,
        pcal,
        io,
        pcheck,
        span: None,
        bundle,
    };

    // Cache-miss capture, exactly as the inline cached path does it: fold
    // the per-item registry into the worker registry, store the item's
    // deterministic delta in the new entry.
    if let (Some((registry, _)), Some(key)) = (itel, key) {
        let cache = cache.expect("itel implies an active cache");
        let snapshot = registry.snapshot();
        wtel.registry().merge_snapshot(&snapshot);
        let (tag, reason) = outcome_to_entry(&result.record.outcome);
        let mut entry = CacheEntry::new(tag, reason);
        entry.proof = proof_to_bytes_v2(&result.unit).unwrap_or_default();
        entry.proof_bytes = result.record.proof_bytes as u64;
        entry.metrics_json = snapshot.deterministic().to_json();
        if cache.insert(key, entry) {
            wtel.count("cache.evictions", 1);
        }
    }
    (result, buf)
}

/// The cache-entry verdict encoding of a step outcome.
fn outcome_to_entry(outcome: &StepOutcome) -> (u8, String) {
    match outcome {
        StepOutcome::Valid => (OUTCOME_VALID, String::new()),
        StepOutcome::Failed(r) => (OUTCOME_FAILED, r.clone()),
        StepOutcome::NotSupported(r) => (OUTCOME_NOT_SUPPORTED, r.clone()),
    }
}

/// Decode a cache entry's verdict tag back into a step outcome (`None`
/// for a tag from a future version — treated as a miss).
fn entry_to_outcome(entry: &CacheEntry) -> Option<StepOutcome> {
    match entry.outcome {
        OUTCOME_VALID => Some(StepOutcome::Valid),
        OUTCOME_FAILED => Some(StepOutcome::Failed(entry.reason.clone())),
        OUTCOME_NOT_SUPPORTED => Some(StepOutcome::NotSupported(entry.reason.clone())),
        _ => None,
    }
}

/// Replay a cache hit: decode the stored proof (it carries the
/// transformed function), restore the verdict, and fold the unit's stored
/// deterministic metric delta into the worker registry — which is what
/// makes a warm run's `Snapshot::deterministic` view byte-identical to a
/// cold one's. Returns `None` when the entry does not decode (corruption,
/// version skew), in which case the caller falls through to a miss.
fn replay_cache_hit(pass: &str, entry: &CacheEntry, tel: &Telemetry) -> Option<ItemResult> {
    let t = Instant::now();
    let unit = proof_from_bytes(&entry.proof).ok()?;
    let outcome = entry_to_outcome(entry)?;
    let stored = Snapshot::from_json(&entry.metrics_json).ok()?;
    tel.count("cache.hits", 1);
    tel.registry().merge_snapshot(&stored);
    let io = t.elapsed();
    tel.registry().record_duration("time.io", io);
    tel.registry().record_duration("time.io.decode", io);
    let record = StepRecord {
        pass: pass.to_string(),
        func: unit.src.name.clone(),
        outcome,
        proof_bytes: entry.proof_bytes as usize,
    };
    Some(ItemResult {
        unit,
        record,
        orig: Duration::ZERO,
        pcal: Duration::ZERO,
        io,
        pcheck: Duration::ZERO,
        span: None,
        bundle: None,
    })
}

/// [`process_item`] behind the content-addressed validation cache.
///
/// The key folds everything the verdict depends on: the function's exact
/// bytes, the pass, the pass configuration, the checker configuration and
/// version, and the wire format (so cached byte counts match the run's
/// format). A hit replays the stored verdict, proof, and deterministic
/// metric delta; a miss runs the unit against a fresh per-item registry so
/// that delta can be captured verbatim into the new entry, then folds it
/// into the worker registry — a cold cached run records exactly what an
/// uncached run does.
#[allow(clippy::too_many_arguments)]
fn process_item_cached(
    pass: &str,
    f: &Function,
    config: &PassConfig,
    checker: &CheckerConfig,
    opts: &ParallelOptions,
    tel: &Telemetry,
    scratch: &mut CodecScratch,
    cache: &ValidationCache,
) -> ItemResult {
    let func_bytes = serialize_bin::to_bytes(f).expect("function serializes");
    let key = CacheKey::for_unit(
        &func_bytes,
        pass,
        config.cache_token(),
        checker.cache_token(),
        opts.format.wire_token(),
    )
    .namespaced(&opts.cache_namespace);
    if let Some(entry) = cache.get(key) {
        if let Some(result) = replay_cache_hit(pass, &entry, tel) {
            if let Some(p) = &opts.progress {
                p.add_cache_hit();
            }
            return result;
        }
    }
    tel.count("cache.misses", 1);
    if let Some(p) = &opts.progress {
        p.add_cache_miss();
    }
    let item_registry = Arc::new(Registry::new());
    let mut itel = Telemetry::with_registry(Arc::clone(&item_registry));
    if let Some(trace) = tel.trace_handle() {
        itel = itel.with_trace(trace);
    }
    let result = process_item(pass, f, config, checker, opts, &itel, scratch);
    let snapshot = item_registry.snapshot();
    tel.registry().merge_snapshot(&snapshot);
    let (tag, reason) = outcome_to_entry(&result.record.outcome);
    let mut entry = CacheEntry::new(tag, reason);
    entry.proof = proof_to_bytes_v2(&result.unit).unwrap_or_default();
    entry.proof_bytes = result.record.proof_bytes as u64;
    entry.metrics_json = snapshot.deterministic().to_json();
    if cache.insert(key, entry) {
        tel.count("cache.evictions", 1);
    }
    result
}

/// The inline engine: every phase of an item runs synchronously on the
/// worker that pulled it (the pre-pipelining behaviour, still used for
/// span collection and `--decode-ahead 0`).
#[allow(clippy::too_many_arguments)]
fn run_pass_inline(
    name: &str,
    m: &Module,
    config: &PassConfig,
    checker: &CheckerConfig,
    opts: &ParallelOptions,
    tel: &Telemetry,
    workers: usize,
    cache: Option<&ValidationCache>,
) -> crate::schedule::PoolOutput<ItemResult, Snapshot> {
    struct WorkerState {
        registry: Arc<Registry>,
        wtel: Telemetry,
        scratch: CodecScratch,
    }
    crate::schedule::run_work_stealing(
        m.functions.len(),
        workers,
        |i| m.functions[i].stmt_count(),
        |_w| {
            let registry = Arc::new(Registry::new());
            let mut wtel = Telemetry::with_registry(Arc::clone(&registry));
            if let Some(trace) = tel.trace_handle() {
                wtel = wtel.with_trace(trace);
            }
            WorkerState {
                registry,
                wtel,
                scratch: CodecScratch::default(),
            }
        },
        |_w, state, i| {
            let f = &m.functions[i];
            if let Some(g) = &opts.pool_gauges {
                g.gauge_add("pool.inflight", 1);
            }
            let result = match cache {
                Some(cache) => process_item_cached(
                    name,
                    f,
                    config,
                    checker,
                    opts,
                    &state.wtel,
                    &mut state.scratch,
                    cache,
                ),
                None => process_item(
                    name,
                    f,
                    config,
                    checker,
                    opts,
                    &state.wtel,
                    &mut state.scratch,
                ),
            };
            if let Some(g) = &opts.pool_gauges {
                g.gauge_sub("pool.inflight", 1);
            }
            if let Some(p) = &opts.progress {
                p.add_done(1);
            }
            result
        },
        |w, state, steals| {
            // Recorded even at zero so the counter exists for every
            // worker in the report.
            state.registry.add(&format!("validate.steal.w{w}"), steals);
            state.registry.snapshot()
        },
    )
}

/// The pipelined engine: workers run Orig + PCal + encode and hand the
/// encoded proof to the shared decode-ahead thread, overlapping that
/// item's decode with the next item's production and with PCheck of
/// already-decoded items. Each worker bounds its outstanding decodes by
/// [`ParallelOptions::decode_ahead`], blocking (and accounting the wait
/// as the item's residual critical-path io) when the window is full.
///
/// Deterministic observables are identical to the inline engine: the same
/// per-item work runs with the same counters into the same per-worker /
/// per-item registries; only wall-clock timers (excluded from
/// `Snapshot::deterministic`) see the relocation.
#[allow(clippy::too_many_arguments)]
fn run_pass_pipelined(
    name: &str,
    m: &Module,
    config: &PassConfig,
    checker: &CheckerConfig,
    opts: &ParallelOptions,
    tel: &Telemetry,
    workers: usize,
    cache: Option<&ValidationCache>,
) -> crate::schedule::PoolOutput<ItemResult, Snapshot> {
    struct PipeState {
        registry: Arc<Registry>,
        wtel: Telemetry,
        scratch: CodecScratch,
        /// Items submitted to the decode thread, in submission order
        /// (responses come back in the same order).
        pending: VecDeque<(usize, ProducedItem)>,
        /// Returned encode buffers, cycled back into the codec scratch.
        spare: Vec<Vec<u8>>,
    }

    let window = opts.decode_ahead;
    let format = opts.format;
    let exchange = DecodeExchange::new(workers);
    std::thread::scope(|scope| {
        let exchange = &exchange;
        let decoder = scope.spawn(move || decode_loop(exchange, format));

        // Completion of one pending item (shared by `work` and `finish`).
        let complete = |state: &mut PipeState, resp: DecodeResp, waited: Duration| {
            let (item, produced) = state
                .pending
                .pop_front()
                .expect("a pending item per decode response");
            debug_assert_eq!(item, resp.item, "decode thread preserves per-worker order");
            let (result, buf) = finish_pipelined(
                name,
                produced,
                resp,
                waited,
                checker,
                opts,
                &state.wtel,
                cache,
            );
            state.spare.push(buf);
            if let Some(g) = &opts.pool_gauges {
                g.gauge_sub("pool.inflight", 1);
            }
            if let Some(p) = &opts.progress {
                p.add_done(1);
            }
            (item, result)
        };

        let pool = crate::schedule::run_work_stealing_batched(
            m.functions.len(),
            workers,
            |i| m.functions[i].stmt_count(),
            |_w| {
                let registry = Arc::new(Registry::new());
                let mut wtel = Telemetry::with_registry(Arc::clone(&registry));
                if let Some(trace) = tel.trace_handle() {
                    wtel = wtel.with_trace(trace);
                }
                PipeState {
                    registry,
                    wtel,
                    scratch: CodecScratch::default(),
                    pending: VecDeque::new(),
                    spare: Vec::new(),
                }
            },
            |w, state, i| {
                let mut done = Vec::new();
                // Opportunistically retire decodes that finished while
                // this worker was busy — their wait is zero by definition.
                while let Some(resp) = exchange.try_recv(w) {
                    done.push(complete(state, resp, Duration::ZERO));
                }

                let f = &m.functions[i];
                if let Some(g) = &opts.pool_gauges {
                    g.gauge_add("pool.inflight", 1);
                }

                // Cache consult (same key and replay as the inline path).
                let mut miss_ctx = None;
                if let Some(cache) = cache {
                    let func_bytes = serialize_bin::to_bytes(f).expect("function serializes");
                    let key = CacheKey::for_unit(
                        &func_bytes,
                        name,
                        config.cache_token(),
                        checker.cache_token(),
                        opts.format.wire_token(),
                    )
                    .namespaced(&opts.cache_namespace);
                    if let Some(entry) = cache.get(key) {
                        if let Some(result) = replay_cache_hit(name, &entry, &state.wtel) {
                            if let Some(p) = &opts.progress {
                                p.add_cache_hit();
                                p.add_done(1);
                            }
                            if let Some(g) = &opts.pool_gauges {
                                g.gauge_sub("pool.inflight", 1);
                            }
                            done.push((i, result));
                            return done;
                        }
                    }
                    state.wtel.count("cache.misses", 1);
                    if let Some(p) = &opts.progress {
                        p.add_cache_miss();
                    }
                    let item_registry = Arc::new(Registry::new());
                    let mut itel = Telemetry::with_registry(Arc::clone(&item_registry));
                    if let Some(trace) = tel.trace_handle() {
                        itel = itel.with_trace(trace);
                    }
                    miss_ctx = Some(((item_registry, itel), key));
                }

                let ptel = miss_ctx
                    .as_ref()
                    .map_or(&state.wtel, |((_, itel), _)| itel)
                    .clone();
                let spare = state.spare.pop().unwrap_or_default();
                let (mut produced, bytes) =
                    produce_item(name, f, config, opts, &ptel, &mut state.scratch, spare);
                if let Some((itel, key)) = miss_ctx {
                    produced.itel = Some(itel);
                    produced.key = Some(key);
                }
                state.pending.push_back((i, produced));
                exchange.submit(DecodeReq {
                    worker: w,
                    item: i,
                    bytes,
                });

                // Respect the decode-ahead window: block (accounting the
                // wait) until the oldest decodes come back.
                while state.pending.len() > window {
                    let (resp, waited) = exchange.recv(w);
                    done.push(complete(state, resp, waited));
                }
                done
            },
            |w, mut state, steals| {
                // Queue ran dry: drain every outstanding decode.
                let mut done = Vec::new();
                while !state.pending.is_empty() {
                    let (resp, waited) = exchange.recv(w);
                    done.push(complete(&mut state, resp, waited));
                }
                state.registry.add(&format!("validate.steal.w{w}"), steals);
                (done, state.registry.snapshot())
            },
        );
        exchange.close();
        decoder.join().expect("decode thread panicked");
        pool
    })
}

/// Run one pass over a module with full validation instrumentation,
/// fanning the per-function work across `opts.jobs` workers.
///
/// Equivalent to `pipeline::run_validated_pass_traced` in every
/// deterministic observable: same transformed module, same step records in
/// function order, same measurement counters and histograms. Per-worker
/// registries are merged into `tel`'s registry after the pool joins.
pub fn run_validated_pass_parallel(
    name: &str,
    m: &Module,
    config: &PassConfig,
    checker: &CheckerConfig,
    opts: &ParallelOptions,
    tel: &Telemetry,
    report: &mut PipelineReport,
) -> PassOutcome {
    let n = m.functions.len();
    let workers = opts.jobs.max(1).min(n.max(1));

    // Decode relocation needs the causal span tree to stay on one thread,
    // so span collection forces the inline path.
    let pipelined = opts.decode_ahead > 0 && !opts.spans;

    // Live pool gauges for an external observer (the serving daemon's
    // /metrics): fan-out width while the pass runs, inflight units per
    // item, and the decode-ahead window (0 when the inline path runs).
    // Recorded into the shared gauge registry only — never into the
    // per-worker measurement registries — so the deterministic view is
    // untouched.
    if let Some(g) = &opts.pool_gauges {
        g.gauge_set("pool.workers", workers as i64);
        g.gauge_set(
            "pool.decode_ahead",
            if pipelined {
                opts.decode_ahead as i64
            } else {
                0
            },
        );
    }

    // Spans and forensics need the unit to actually run (they capture its
    // live execution), so the cache stands aside while either is on.
    let cache = opts
        .cache
        .as_deref()
        .filter(|_| !opts.spans && !opts.forensics);

    // Fan out over the shared work-stealing pool (see `crate::schedule`):
    // functions are dealt by interleaved statement-count rank, each worker
    // records into its own registry and reuses its own codec scratch, and
    // results come back scattered by function index.
    let pool = if pipelined {
        run_pass_pipelined(name, m, config, checker, opts, tel, workers, cache)
    } else {
        run_pass_inline(name, m, config, checker, opts, tel, workers, cache)
    };

    // Merge per-worker registries in worker order (every metric is an
    // order-independent sum; the fixed order keeps even timer totals
    // reproducible given identical durations).
    for snapshot in &pool.worker_summaries {
        tel.registry().merge_snapshot(snapshot);
    }

    // Reassemble in function order: deterministic report and module
    // regardless of which worker ran what.
    let mut out = m.clone();
    let mut proofs = Vec::with_capacity(n);
    for (f, result) in m.functions.iter().zip(pool.results) {
        *out.function_mut(&f.name).expect("function exists") = result.unit.tgt.clone();
        report.time_orig += result.orig;
        report.time_pcal += result.pcal;
        report.time_io += result.io;
        report.time_pcheck += result.pcheck;
        if let Some(root) = result.span {
            report.span_items.push(SpanItem {
                pass: name.to_string(),
                func: f.name.clone(),
                root,
            });
        }
        if let Some(bundle) = result.bundle {
            report.bundles.push(bundle);
        }
        report.steps.push(result.record);
        proofs.push(result.unit);
    }
    PassOutcome {
        module: out,
        proofs,
    }
}

/// Run the full `-O2`-like pipeline in parallel, validating every step.
///
/// Records the engine width under `pipeline.jobs` (a schedule-scoped
/// metric, excluded from the deterministic snapshot view).
pub fn run_pipeline_parallel(
    m: &Module,
    config: &PassConfig,
    opts: &ParallelOptions,
    tel: &Telemetry,
) -> (Module, PipelineReport) {
    tel.count("pipeline.jobs", opts.jobs.max(1) as u64);
    let mut report = PipelineReport::default();
    let checker = CheckerConfig::sound();
    let mut cur = m.clone();
    for pass in PASS_ORDER {
        cur = run_validated_pass_parallel(pass, &cur, config, &checker, opts, tel, &mut report)
            .module;
    }
    (cur, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crellvm_ir::parse_module;

    const PROGRAM: &str = r#"
        declare @print(i32)
        define @f(i32 %n) -> i32 {
        entry:
          %p = alloca i32
          store i32 0, ptr %p
          %a = load i32, ptr %p
          %b = add i32 %a, %n
          ret i32 %b
        }
        define @g(i32 %n) -> i32 {
        entry:
          %x = mul i32 %n, 1
          %y = add i32 %x, 0
          ret i32 %y
        }
        define @main() {
        entry:
          %r = call i32 @f(i32 3)
          %s = call i32 @g(i32 %r)
          call void @print(i32 %s)
          ret void
        }
    "#;

    fn run_at(jobs: usize) -> (String, PipelineReport, crellvm_telemetry::Snapshot) {
        let m = parse_module(PROGRAM).unwrap();
        let tel = Telemetry::disabled();
        let opts = ParallelOptions {
            jobs,
            format: ProofFormat::Json,
            ..ParallelOptions::default()
        };
        let (out, report) = run_pipeline_parallel(&m, &PassConfig::default(), &opts, &tel);
        (
            crellvm_ir::printer::print_module(&out),
            report,
            tel.registry().snapshot(),
        )
    }

    #[test]
    fn parallel_matches_sequential_pipeline() {
        let m = parse_module(PROGRAM).unwrap();
        let seq_tel = Telemetry::disabled();
        let (seq_out, seq_report) =
            crate::pipeline::run_pipeline_traced(&m, &PassConfig::default(), &seq_tel);
        let (par_out, par_report, par_snap) = run_at(4);
        assert_eq!(crellvm_ir::printer::print_module(&seq_out), par_out);
        assert_eq!(seq_report.steps.len(), par_report.steps.len());
        for (a, b) in seq_report.steps.iter().zip(&par_report.steps) {
            assert_eq!((&a.pass, &a.func), (&b.pass, &b.func));
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.proof_bytes, b.proof_bytes);
        }
        // Measurement metrics agree with the sequential engine.
        let seq_det = seq_tel.registry().snapshot().deterministic();
        let par_det = par_snap.deterministic();
        assert_eq!(seq_det.counters, par_det.counters);
        assert_eq!(seq_det.histograms, par_det.histograms);
    }

    #[test]
    fn thread_count_does_not_change_observables() {
        let (out1, rep1, snap1) = run_at(1);
        for jobs in [2, 3, 8] {
            let (out, rep, snap) = run_at(jobs);
            assert_eq!(out1, out, "module differs at jobs={jobs}");
            assert_eq!(rep1.steps.len(), rep.steps.len());
            for (a, b) in rep1.steps.iter().zip(&rep.steps) {
                assert_eq!(
                    (&a.pass, &a.func, &a.outcome),
                    (&b.pass, &b.func, &b.outcome)
                );
                assert_eq!(a.proof_bytes, b.proof_bytes);
            }
            assert_eq!(
                snap1.deterministic(),
                snap.deterministic(),
                "metrics differ at jobs={jobs}"
            );
        }
    }

    #[test]
    fn decode_ahead_window_does_not_change_observables() {
        let run = |jobs: usize, decode_ahead: usize| {
            let m = parse_module(PROGRAM).unwrap();
            let tel = Telemetry::disabled();
            let opts = ParallelOptions {
                jobs,
                decode_ahead,
                ..ParallelOptions::default()
            };
            let (out, report) = run_pipeline_parallel(&m, &PassConfig::default(), &opts, &tel);
            let steps: Vec<_> = report
                .steps
                .iter()
                .map(|s| {
                    (
                        s.pass.clone(),
                        s.func.clone(),
                        s.outcome.clone(),
                        s.proof_bytes,
                    )
                })
                .collect();
            (
                crellvm_ir::printer::print_module(&out),
                steps,
                tel.registry().snapshot().deterministic(),
            )
        };
        // decode_ahead == 0 is the inline engine — the reference point.
        let base = run(2, 0);
        for (jobs, window) in [(1, 1), (2, 1), (2, 2), (3, 16), (8, 2)] {
            let got = run(jobs, window);
            assert_eq!(
                base.0, got.0,
                "module differs at jobs={jobs} window={window}"
            );
            assert_eq!(base.1, got.1, "steps differ at jobs={jobs} window={window}");
            assert_eq!(
                base.2, got.2,
                "deterministic metrics differ at jobs={jobs} window={window}"
            );
        }
    }

    #[test]
    fn span_trees_are_identical_at_any_jobs_count() {
        let run = |jobs: usize| {
            let m = parse_module(PROGRAM).unwrap();
            let tel = Telemetry::disabled();
            let opts = ParallelOptions {
                jobs,
                spans: true,
                ..ParallelOptions::default()
            };
            let (_, report) = run_pipeline_parallel(&m, &PassConfig::default(), &opts, &tel);
            report.span_tree("m").deterministic().to_json()
        };
        let base = run(1);
        assert_eq!(base, run(2), "span tree differs at jobs=2");
        assert_eq!(base, run(8), "span tree differs at jobs=8");
        // The tree reaches all the way down to proof commands.
        assert!(base.contains("\"cat\":\"proof\""));
        assert!(base.contains("CheckCFG"));
        assert!(base.contains("\"cat\":\"phase\""));
    }

    #[test]
    fn forensics_off_means_no_bundles() {
        let (_, rep, _) = run_at(2);
        assert!(rep.bundles.is_empty());
        assert!(rep.span_items.is_empty());
    }

    #[test]
    fn steal_counters_exist_per_worker() {
        let (_, _, snap) = run_at(2);
        assert!(snap.counters.contains_key("validate.steal.w0"));
        assert!(snap.counters.contains_key("validate.steal.w1"));
        assert_eq!(snap.counters.get("pipeline.jobs"), Some(&2));
    }
}
