//! The parallel validation engine: per-function (pass → proof → check)
//! fan-out over a std-only scoped work-stealing pool.
//!
//! The paper's validation unit is one function under one pass, and units
//! are independent — embarrassingly parallel. This module exploits that:
//!
//! * **Work items** are function indices. Worker `w` is seeded with a
//!   contiguous chunk of the module's functions in its own deque; when the
//!   deque runs dry it *steals* from the back of a sibling's deque, so an
//!   unlucky chunk of expensive functions does not serialize the run.
//! * **No shared mutable state on the hot path.** Each worker records into
//!   its own private [`Registry`]; each validation unit owns its own
//!   expression interner (see `crellvm_core::checker`). Workers share only
//!   the immutable input module and, when tracing, the append-only trace
//!   sink.
//! * **Deterministic merging.** Results are scattered back by function
//!   index, so [`PipelineReport`] step order is the module's function
//!   order at any thread count. Worker registries are merged in worker
//!   order with [`Registry::merge_snapshot`]; every measurement metric is
//!   a commutative per-item sum, so the merged values are independent of
//!   scheduling. The only schedule-dependent metrics are wall-clock
//!   timers, `pipeline.jobs`, and the per-worker `validate.steal.*`
//!   counters — exactly the set [`Snapshot::deterministic`] excludes.
//!
//! [`Snapshot::deterministic`]: crellvm_telemetry::Snapshot::deterministic

use crate::config::{PassConfig, PassOutcome};
use crate::pipeline::{PipelineReport, ProofFormat, SpanItem, StepOutcome, StepRecord, PASS_ORDER};
use crellvm_core::{validate_with_telemetry, CheckerConfig, ProofUnit, ValidationError, Verdict};
use crellvm_ir::{Function, Module};
use crellvm_telemetry::forensics::ForensicBundle;
use crellvm_telemetry::json::Value;
use crellvm_telemetry::{Registry, SpanCollector, SpanNode, Telemetry};
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Options of the parallel validation engine.
#[derive(Debug, Clone, Copy)]
pub struct ParallelOptions {
    /// Number of worker threads to fan validation out over. The engine
    /// never spawns more workers than there are functions.
    pub jobs: usize,
    /// Proof wire format for the I/O phase.
    pub format: ProofFormat,
    /// Collect causal spans (module → function → pass → phase →
    /// proof-command) into [`PipelineReport::span_items`].
    pub spans: bool,
    /// Build a replayable [`ForensicBundle`] for every failed step into
    /// [`PipelineReport::bundles`].
    pub forensics: bool,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            jobs: default_jobs(),
            format: ProofFormat::Json,
            spans: false,
            forensics: false,
        }
    }
}

impl ParallelOptions {
    /// Options with an explicit worker count (`0` means the default).
    pub fn with_jobs(jobs: usize) -> ParallelOptions {
        ParallelOptions {
            jobs: if jobs == 0 { default_jobs() } else { jobs },
            ..ParallelOptions::default()
        }
    }
}

/// The default worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run one pass over a single function (the per-function slice of
/// `pipeline::run_pass`).
fn run_pass_function(name: &str, f: &Function, config: &PassConfig, tel: &Telemetry) -> ProofUnit {
    match name {
        "mem2reg" => crate::mem2reg::promote_function_traced(f, config, tel),
        "instcombine" => crate::instcombine::instcombine_function_traced(f, config, tel),
        "gvn" => crate::gvn::gvn_function_traced(f, config, tel),
        "licm" => crate::licm::licm_function_traced(f, config, tel),
        other => panic!("unknown pass {other}"),
    }
}

/// Everything one work item produces: the proof unit (still holding the
/// transformed function body), the step record, the four Fig 6/8 time
/// columns, and — when enabled — the item's causal span subtree and the
/// forensic bundle of a failed check.
struct ItemResult {
    unit: ProofUnit,
    record: StepRecord,
    orig: Duration,
    pcal: Duration,
    io: Duration,
    pcheck: Duration,
    span: Option<SpanNode>,
    bundle: Option<ForensicBundle>,
}

/// One work item: the full Orig / PCal / I-O / PCheck protocol for one
/// function under one pass, recording into the worker's telemetry.
///
/// When span collection is on, the item gets a *fresh* [`SpanCollector`]
/// — never shared with another thread — so recording stays lock-free and
/// the finished subtree can travel back with the result for deterministic
/// assembly.
fn process_item(
    pass: &str,
    f: &Function,
    config: &PassConfig,
    checker: &CheckerConfig,
    opts: &ParallelOptions,
    tel: &Telemetry,
) -> ItemResult {
    let collector = if opts.spans {
        Some(Arc::new(SpanCollector::new()))
    } else {
        None
    };
    let tel = &match &collector {
        Some(c) => tel.clone().with_spans(Arc::clone(c)),
        None => tel.clone(),
    };
    let pass_span = tel.causal(pass, "pass");
    pass_span.field("func", Value::Str(f.name.clone()));

    // Orig: the bare pass, proof generation genuinely disabled, telemetry
    // disabled so domain counters are not double-counted.
    let t0 = Instant::now();
    {
        let _g = tel.causal("orig", "phase");
        let _ = run_pass_function(pass, f, &config.without_proofs(), &Telemetry::disabled());
    }
    let orig = t0.elapsed();
    tel.registry().record_duration("time.orig", orig);

    let t1 = Instant::now();
    let unit = {
        let _g = tel.causal("pcal", "phase");
        run_pass_function(pass, f, config, tel)
    };
    let pcal = t1.elapsed();
    tel.registry().record_duration("time.pcal", pcal);

    tel.count("pipeline.steps", 1);
    let t2 = Instant::now();
    let (unit2, wire_len) = {
        let _g = tel.causal("io", "phase");
        opts.format.roundtrip(&unit)
    };
    let io = t2.elapsed();
    tel.registry().record_duration("time.io", io);
    tel.observe("pipeline.proof_bytes", wire_len as u64);

    let t3 = Instant::now();
    let mut failure: Option<ValidationError> = None;
    let outcome = {
        let _g = tel.causal("pcheck", "phase");
        match validate_with_telemetry(&unit2, checker, tel) {
            Ok(Verdict::Valid) => {
                tel.count("pipeline.validated", 1);
                StepOutcome::Valid
            }
            Ok(Verdict::NotSupported(r)) => {
                tel.count("pipeline.not_supported", 1);
                StepOutcome::NotSupported(r)
            }
            Err(e) => {
                tel.count("pipeline.failed", 1);
                let msg = e.to_string();
                failure = Some(e);
                StepOutcome::Failed(msg)
            }
        }
    };
    let pcheck = t3.elapsed();
    tel.registry().record_duration("time.pcheck", pcheck);

    // Forensics run outside the PCheck timing window (minimization
    // re-validates the proof many times) with disabled telemetry inside
    // `forensic_bundle`, so the Fig 6/8 columns and the deterministic
    // metric view stay untouched apart from the bundle counter.
    let bundle = match &failure {
        Some(e) if opts.forensics => {
            tel.count("forensics.bundles", 1);
            Some(crellvm_core::forensics::forensic_bundle(&unit2, e, checker))
        }
        _ => None,
    };

    pass_span.field("proof_bytes", Value::UInt(wire_len as u64));
    pass_span.field(
        "verdict",
        Value::Str(
            match &outcome {
                StepOutcome::Valid => "valid",
                StepOutcome::Failed(_) => "failed",
                StepOutcome::NotSupported(_) => "not_supported",
            }
            .to_string(),
        ),
    );
    drop(pass_span);
    let span = collector.as_ref().and_then(|c| c.take_roots().pop());

    let record = StepRecord {
        pass: pass.to_string(),
        func: unit.src.name.clone(),
        outcome,
        proof_bytes: wire_len,
    };
    ItemResult {
        unit,
        record,
        orig,
        pcal,
        io,
        pcheck,
        span,
        bundle,
    }
}

/// Run one pass over a module with full validation instrumentation,
/// fanning the per-function work across `opts.jobs` workers.
///
/// Equivalent to `pipeline::run_validated_pass_traced` in every
/// deterministic observable: same transformed module, same step records in
/// function order, same measurement counters and histograms. Per-worker
/// registries are merged into `tel`'s registry after the pool joins.
pub fn run_validated_pass_parallel(
    name: &str,
    m: &Module,
    config: &PassConfig,
    checker: &CheckerConfig,
    opts: &ParallelOptions,
    tel: &Telemetry,
    report: &mut PipelineReport,
) -> PassOutcome {
    let n = m.functions.len();
    let workers = opts.jobs.max(1).min(n.max(1));

    // Chunked injector: worker `w` owns functions [w*n/workers,
    // (w+1)*n/workers), popped from the front; thieves take from the back
    // so owner and thief rarely contend on the same end.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            let lo = w * n / workers;
            let hi = (w + 1) * n / workers;
            Mutex::new((lo..hi).collect())
        })
        .collect();

    let mut slots: Vec<Option<ItemResult>> = (0..n).map(|_| None).collect();
    let mut worker_outputs = std::thread::scope(|scope| {
        let queues = &queues;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let registry = Arc::new(Registry::new());
                    let mut wtel = Telemetry::with_registry(Arc::clone(&registry));
                    if let Some(trace) = tel.trace_handle() {
                        wtel = wtel.with_trace(trace);
                    }
                    let mut produced: Vec<(usize, ItemResult)> = Vec::new();
                    let mut steals = 0u64;
                    loop {
                        let mut item = queues[w].lock().expect("queue poisoned").pop_front();
                        if item.is_none() {
                            for off in 1..workers {
                                let victim = (w + off) % workers;
                                let stolen =
                                    queues[victim].lock().expect("queue poisoned").pop_back();
                                if stolen.is_some() {
                                    steals += 1;
                                    item = stolen;
                                    break;
                                }
                            }
                        }
                        let Some(i) = item else { break };
                        let result =
                            process_item(name, &m.functions[i], config, checker, opts, &wtel);
                        produced.push((i, result));
                    }
                    // Recorded even at zero so the counter exists for
                    // every worker in the report.
                    registry.add(&format!("validate.steal.w{w}"), steals);
                    (produced, registry.snapshot())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("validation worker panicked"))
            .collect::<Vec<_>>()
    });

    // Merge per-worker registries in worker order (every metric is an
    // order-independent sum; the fixed order keeps even timer totals
    // reproducible given identical durations).
    for (produced, snapshot) in &mut worker_outputs {
        tel.registry().merge_snapshot(snapshot);
        for (i, result) in produced.drain(..) {
            debug_assert!(slots[i].is_none(), "function {i} processed twice");
            slots[i] = Some(result);
        }
    }

    // Reassemble in function order: deterministic report and module
    // regardless of which worker ran what.
    let mut out = m.clone();
    let mut proofs = Vec::with_capacity(n);
    for (f, slot) in m.functions.iter().zip(slots) {
        let result = slot.expect("every function processed exactly once");
        *out.function_mut(&f.name).expect("function exists") = result.unit.tgt.clone();
        report.time_orig += result.orig;
        report.time_pcal += result.pcal;
        report.time_io += result.io;
        report.time_pcheck += result.pcheck;
        if let Some(root) = result.span {
            report.span_items.push(SpanItem {
                pass: name.to_string(),
                func: f.name.clone(),
                root,
            });
        }
        if let Some(bundle) = result.bundle {
            report.bundles.push(bundle);
        }
        report.steps.push(result.record);
        proofs.push(result.unit);
    }
    PassOutcome {
        module: out,
        proofs,
    }
}

/// Run the full `-O2`-like pipeline in parallel, validating every step.
///
/// Records the engine width under `pipeline.jobs` (a schedule-scoped
/// metric, excluded from the deterministic snapshot view).
pub fn run_pipeline_parallel(
    m: &Module,
    config: &PassConfig,
    opts: &ParallelOptions,
    tel: &Telemetry,
) -> (Module, PipelineReport) {
    tel.count("pipeline.jobs", opts.jobs.max(1) as u64);
    let mut report = PipelineReport::default();
    let checker = CheckerConfig::sound();
    let mut cur = m.clone();
    for pass in PASS_ORDER {
        cur = run_validated_pass_parallel(pass, &cur, config, &checker, opts, tel, &mut report)
            .module;
    }
    (cur, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crellvm_ir::parse_module;

    const PROGRAM: &str = r#"
        declare @print(i32)
        define @f(i32 %n) -> i32 {
        entry:
          %p = alloca i32
          store i32 0, ptr %p
          %a = load i32, ptr %p
          %b = add i32 %a, %n
          ret i32 %b
        }
        define @g(i32 %n) -> i32 {
        entry:
          %x = mul i32 %n, 1
          %y = add i32 %x, 0
          ret i32 %y
        }
        define @main() {
        entry:
          %r = call i32 @f(i32 3)
          %s = call i32 @g(i32 %r)
          call void @print(i32 %s)
          ret void
        }
    "#;

    fn run_at(jobs: usize) -> (String, PipelineReport, crellvm_telemetry::Snapshot) {
        let m = parse_module(PROGRAM).unwrap();
        let tel = Telemetry::disabled();
        let opts = ParallelOptions {
            jobs,
            format: ProofFormat::Json,
            ..ParallelOptions::default()
        };
        let (out, report) = run_pipeline_parallel(&m, &PassConfig::default(), &opts, &tel);
        (
            crellvm_ir::printer::print_module(&out),
            report,
            tel.registry().snapshot(),
        )
    }

    #[test]
    fn parallel_matches_sequential_pipeline() {
        let m = parse_module(PROGRAM).unwrap();
        let seq_tel = Telemetry::disabled();
        let (seq_out, seq_report) =
            crate::pipeline::run_pipeline_traced(&m, &PassConfig::default(), &seq_tel);
        let (par_out, par_report, par_snap) = run_at(4);
        assert_eq!(crellvm_ir::printer::print_module(&seq_out), par_out);
        assert_eq!(seq_report.steps.len(), par_report.steps.len());
        for (a, b) in seq_report.steps.iter().zip(&par_report.steps) {
            assert_eq!((&a.pass, &a.func), (&b.pass, &b.func));
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.proof_bytes, b.proof_bytes);
        }
        // Measurement metrics agree with the sequential engine.
        let seq_det = seq_tel.registry().snapshot().deterministic();
        let par_det = par_snap.deterministic();
        assert_eq!(seq_det.counters, par_det.counters);
        assert_eq!(seq_det.histograms, par_det.histograms);
    }

    #[test]
    fn thread_count_does_not_change_observables() {
        let (out1, rep1, snap1) = run_at(1);
        for jobs in [2, 3, 8] {
            let (out, rep, snap) = run_at(jobs);
            assert_eq!(out1, out, "module differs at jobs={jobs}");
            assert_eq!(rep1.steps.len(), rep.steps.len());
            for (a, b) in rep1.steps.iter().zip(&rep.steps) {
                assert_eq!(
                    (&a.pass, &a.func, &a.outcome),
                    (&b.pass, &b.func, &b.outcome)
                );
                assert_eq!(a.proof_bytes, b.proof_bytes);
            }
            assert_eq!(
                snap1.deterministic(),
                snap.deterministic(),
                "metrics differ at jobs={jobs}"
            );
        }
    }

    #[test]
    fn span_trees_are_identical_at_any_jobs_count() {
        let run = |jobs: usize| {
            let m = parse_module(PROGRAM).unwrap();
            let tel = Telemetry::disabled();
            let opts = ParallelOptions {
                jobs,
                spans: true,
                ..ParallelOptions::default()
            };
            let (_, report) = run_pipeline_parallel(&m, &PassConfig::default(), &opts, &tel);
            report.span_tree("m").deterministic().to_json()
        };
        let base = run(1);
        assert_eq!(base, run(2), "span tree differs at jobs=2");
        assert_eq!(base, run(8), "span tree differs at jobs=8");
        // The tree reaches all the way down to proof commands.
        assert!(base.contains("\"cat\":\"proof\""));
        assert!(base.contains("CheckCFG"));
        assert!(base.contains("\"cat\":\"phase\""));
    }

    #[test]
    fn forensics_off_means_no_bundles() {
        let (_, rep, _) = run_at(2);
        assert!(rep.bundles.is_empty());
        assert!(rep.span_items.is_empty());
    }

    #[test]
    fn steal_counters_exist_per_worker() {
        let (_, _, snap) = run_at(2);
        assert!(snap.counters.contains_key("validate.steal.w0"));
        assert!(snap.counters.contains_key("validate.steal.w1"));
        assert_eq!(snap.counters.get("pipeline.jobs"), Some(&2));
    }
}
