//! # crellvm-passes
//!
//! Proof-generating optimization passes over [`crellvm_ir`], mirroring the
//! LLVM passes the Crellvm paper instruments:
//!
//! * [`mem2reg`](fn@mem2reg) — register promotion, with the general
//!   dominance-frontier algorithm and the two specialized fast paths
//!   (single-store, single-block) of LLVM's `PromoteMemoryToRegister.cpp`;
//! * [`gvn`](fn@gvn) — hash-based global value numbering with scalar PRE
//!   insertion;
//! * [`licm`](fn@licm) — loop-invariant code motion;
//! * [`instcombine`](fn@instcombine) — the peephole micro-optimization engine with the
//!   paper's named rewrites.
//!
//! Every pass returns a [`PassOutcome`]: the transformed module together
//! with one [`crellvm_core::ProofUnit`] per function, ready for
//! [`crellvm_core::validate`].
//!
//! ## Historical bugs
//!
//! [`BugSet`] re-introduces the four miscompilation bugs the paper found
//! (PR24179, PR33673, PR28562/PR29057, and the D38619 PRE bug), so the
//! validation experiments can demonstrate detection. The default
//! [`PassConfig`] has every bug switched off.
//!
//! # Example
//!
//! ```
//! use crellvm_ir::parse_module;
//! use crellvm_passes::{mem2reg, PassConfig};
//! use crellvm_core::{validate, Verdict};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let m = parse_module(
//!     r#"
//!     declare @print(i32)
//!     define @main() {
//!     entry:
//!       %p = alloca i32
//!       store i32 42, ptr %p
//!       %a = load i32, ptr %p
//!       call void @print(i32 %a)
//!       ret void
//!     }
//!     "#,
//! )?;
//! let out = mem2reg(&m, &PassConfig::default());
//! // Only the call remains: alloca, store, and load were promoted away.
//! assert_eq!(out.module.function("main").unwrap().blocks[0].stmts.len(), 1);
//! for unit in &out.proofs {
//!     assert_eq!(validate(unit)?, Verdict::Valid);
//! }
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod gvn;
pub mod instcombine;
pub mod licm;
pub mod mem2reg;
pub mod parallel;
pub mod pipeline;
pub mod schedule;
pub(crate) mod util;

pub use config::{BugSet, PassConfig, PassOutcome};
pub use gvn::{gvn, gvn_traced};
pub use instcombine::{instcombine, instcombine_traced};
pub use licm::{licm, licm_traced};
pub use mem2reg::{mem2reg, mem2reg_traced};
pub use parallel::{
    default_jobs, run_pipeline_parallel, run_validated_pass_parallel, ParallelOptions,
};
pub use pipeline::{
    format_step_line, run_pipeline, run_pipeline_traced, CodecScratch, PipelineReport, ProofFormat,
    SpanItem, StepOutcome, StepRecord,
};
pub use schedule::{run_work_stealing, PoolOutput};
