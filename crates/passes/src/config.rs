//! Pass configuration and outcomes.

use crellvm_core::ProofUnit;
use crellvm_ir::Module;

/// The historical LLVM miscompilation bugs reproduced by this crate.
///
/// Each switch re-introduces one of the bugs the Crellvm paper discovered
/// (or, for D38619, detected); see `DESIGN.md` §5 for the mapping to LLVM
/// releases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BugSet {
    /// PR24179 — mem2reg's single-block fast path replaces a load that
    /// precedes every store in its block with `undef`, ignoring stores
    /// reaching it from a previous loop iteration.
    pub pr24179: bool,
    /// PR33673 — mem2reg's single-store path propagates the stored value
    /// to loads *not dominated by the store* whenever the value is a
    /// constant — unsound for trapping constant expressions.
    pub pr33673: bool,
    /// PR28562 / PR29057 — gvn's expression hashing ignores the
    /// `inbounds` flag, replacing a plain `gep` with an `inbounds` leader
    /// and introducing poison (the same cause surfaces in both the
    /// full-redundancy and partial-redundancy code paths).
    pub pr28562: bool,
    /// D38619 — gvn's scalar PRE insertion picks a leader that is not
    /// available on the incoming edge.
    pub d38619: bool,
}

impl BugSet {
    /// No bugs: the fully fixed compiler.
    pub fn none() -> BugSet {
        BugSet::default()
    }

    /// The bug population of LLVM 3.7.1 in the paper's experiment
    /// (PR33673 is latent: present in the code but never triggered by the
    /// benchmarks, exactly as in the paper).
    pub fn llvm_3_7_1() -> BugSet {
        BugSet {
            pr24179: true,
            pr33673: true,
            pr28562: true,
            d38619: true,
        }
    }

    /// LLVM 5.0.1 before the D38619 fix.
    pub fn llvm_5_0_1_prepatch() -> BugSet {
        BugSet {
            d38619: true,
            ..BugSet::default()
        }
    }

    /// LLVM 5.0.1 after the D38619 fix.
    pub fn llvm_5_0_1_postpatch() -> BugSet {
        BugSet::default()
    }
}

/// Configuration shared by all passes.
#[derive(Debug, Clone, Copy)]
pub struct PassConfig {
    /// Which historical bugs to re-introduce.
    pub bugs: BugSet,
    /// Whether passes record proofs (**on** by default).
    ///
    /// With this off the passes transform code identically but skip all
    /// proof bookkeeping (assertions, rules, assertion materialization) —
    /// the honest way to measure the paper's `Orig` column, instead of
    /// timing the proof-generating pass twice.
    pub gen_proofs: bool,
}

impl Default for PassConfig {
    fn default() -> PassConfig {
        PassConfig {
            bugs: BugSet::default(),
            gen_proofs: true,
        }
    }
}

impl PassConfig {
    /// The default (fixed) configuration.
    pub fn new() -> PassConfig {
        PassConfig::default()
    }

    /// A configuration with a given bug population.
    pub fn with_bugs(bugs: BugSet) -> PassConfig {
        PassConfig {
            bugs,
            ..PassConfig::default()
        }
    }

    /// This configuration with proof generation disabled.
    pub fn without_proofs(mut self) -> PassConfig {
        self.gen_proofs = false;
        self
    }

    /// Stable token folding every behaviour-affecting switch, for
    /// validation-cache keys: two configurations produce the same token
    /// iff they transform and prove identically.
    pub fn cache_token(&self) -> u64 {
        u64::from(self.bugs.pr24179)
            | u64::from(self.bugs.pr33673) << 1
            | u64::from(self.bugs.pr28562) << 2
            | u64::from(self.bugs.d38619) << 3
            | u64::from(self.gen_proofs) << 4
    }
}

/// The result of applying one pass to a module.
#[derive(Debug, Clone)]
pub struct PassOutcome {
    /// The transformed module.
    pub module: Module,
    /// One proof unit per function (the paper's validation unit, #V).
    pub proofs: Vec<ProofUnit>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bug_populations_match_design() {
        assert_eq!(BugSet::none(), BugSet::default());
        let old = BugSet::llvm_3_7_1();
        assert!(old.pr24179 && old.pr28562 && old.d38619 && old.pr33673);
        let pre = BugSet::llvm_5_0_1_prepatch();
        assert!(!pre.pr24179 && !pre.pr28562 && pre.d38619);
        assert_eq!(BugSet::llvm_5_0_1_postpatch(), BugSet::none());
    }

    #[test]
    fn cache_tokens_separate_every_configuration() {
        let mut seen = std::collections::BTreeSet::new();
        for bits in 0..32u64 {
            let config = PassConfig {
                bugs: BugSet {
                    pr24179: bits & 1 != 0,
                    pr33673: bits & 2 != 0,
                    pr28562: bits & 4 != 0,
                    d38619: bits & 8 != 0,
                },
                gen_proofs: bits & 16 != 0,
            };
            assert!(seen.insert(config.cache_token()), "collision at {bits:#x}");
        }
    }
}
