//! Loop-invariant code motion (LLVM's `licm` pass) with proof generation.
//!
//! Finds natural loops (back edges to a dominating header), and hoists
//! *pure, trap-free* loop-invariant statements into the loop's dedicated
//! preheader. Memory promotion (`promoteLoopAccessesToScalars`) is *not*
//! covered — it needs alias analysis, exactly the function the paper
//! omits (§D).
//!
//! Proof shape: the hoisted instruction `x := e` appears earlier in the
//! target (preheader) and becomes a logical no-op inside the loop. From
//! the preheader on, `{e ⊒ x}ₜ` is asserted; at the source definition row
//! the built-in maydiff reduction re-establishes `x`'s equality from
//! `x ⊒ e` (src) and `e ⊒ x` (tgt) — the operands are loop-invariant, so
//! `e` means the same thing at both points.

use crate::config::{PassConfig, PassOutcome};
use crate::util::{uses_of, UseSite};
use crellvm_core::{AutoKind, Expr, Loc, Pred, ProofBuilder, ProofUnit, Side, TValue};
use crellvm_ir::{BlockId, Cfg, DomTree, Function, Module, RegId, Stmt};
use std::collections::HashSet;

/// Run LICM over every function of a module.
pub fn licm(module: &Module, config: &PassConfig) -> PassOutcome {
    licm_traced(module, config, &crellvm_telemetry::Telemetry::disabled())
}

/// [`licm`] recording domain counters (`pass.licm.*`) into `tel`.
pub fn licm_traced(
    module: &Module,
    config: &PassConfig,
    tel: &crellvm_telemetry::Telemetry,
) -> PassOutcome {
    let mut out = module.clone();
    let mut proofs = Vec::new();
    for f in &module.functions {
        let unit = licm_function_traced(f, config, tel);
        *out.function_mut(&f.name).expect("function exists") = unit.tgt.clone();
        proofs.push(unit);
    }
    PassOutcome {
        module: out,
        proofs,
    }
}

/// A natural loop: header, unique preheader, and body blocks.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header.
    pub header: BlockId,
    /// The unique out-of-loop predecessor of the header.
    pub preheader: BlockId,
    /// All blocks of the loop (including the header).
    pub blocks: HashSet<BlockId>,
}

/// Find natural loops with a *unique* preheader (others are skipped; LLVM
/// would first run loop-simplify to create preheaders).
pub fn natural_loops(f: &Function, cfg: &Cfg, dom: &DomTree) -> Vec<NaturalLoop> {
    let mut loops: Vec<NaturalLoop> = Vec::new();
    for b in f.block_ids() {
        for succ in cfg.succs(b) {
            // Back edge b → succ where succ dominates b.
            if !dom.dominates(*succ, b) {
                continue;
            }
            let header = *succ;
            // Collect the loop body: blocks reaching b without passing the
            // header.
            let mut blocks = cfg.reaches_avoiding(b, header);
            blocks.insert(header);
            // Merge into an existing loop with the same header.
            if let Some(l) = loops.iter_mut().find(|l| l.header == header) {
                l.blocks.extend(blocks);
                continue;
            }
            let outside: Vec<BlockId> = cfg
                .preds(header)
                .iter()
                .copied()
                .filter(|p| !blocks.contains(p))
                .collect();
            if outside.len() != 1 {
                continue; // no unique preheader
            }
            loops.push(NaturalLoop {
                header,
                preheader: outside[0],
                blocks,
            });
        }
    }
    loops
}

/// Run LICM on one function, producing the proof unit.
pub fn licm_function(f: &Function, config: &PassConfig) -> ProofUnit {
    licm_function_traced(f, config, &crellvm_telemetry::Telemetry::disabled())
}

/// [`licm_function`] recording domain counters into `tel`.
pub fn licm_function_traced(
    f: &Function,
    config: &PassConfig,
    tel: &crellvm_telemetry::Telemetry,
) -> ProofUnit {
    let mut pb = ProofBuilder::new("licm", f);
    pb.set_recording(config.gen_proofs);
    if let Some(reason) = crate::util::ns_reason(f, "licm") {
        pb.mark_not_supported(reason);
        return pb.finish();
    }
    let cfg = Cfg::new(f);
    let dom = DomTree::new(f, &cfg);
    let loops = natural_loops(f, &cfg, &dom);
    if loops.is_empty() {
        return pb.finish();
    }
    pb.auto(AutoKind::Transitivity);
    pb.auto(AutoKind::ReduceMaydiff);

    for l in &loops {
        // A register is invariant if defined outside the loop (or a
        // parameter / constant), or defined by an already-hoisted stmt.
        let mut hoisted: HashSet<RegId> = HashSet::new();
        let defined_in_loop = |r: RegId, hoisted: &HashSet<RegId>| -> bool {
            if hoisted.contains(&r) {
                return false;
            }
            match f.def_site(r) {
                Some(crellvm_ir::DefSite::Param(_)) | None => false,
                Some(crellvm_ir::DefSite::Phi(b, _)) => l.blocks.contains(&b),
                Some(crellvm_ir::DefSite::Stmt(b, _)) => l.blocks.contains(&b),
            }
        };

        // Walk the loop blocks in RPO so defs are seen before uses.
        let order: Vec<BlockId> = cfg
            .reverse_postorder()
            .iter()
            .copied()
            .filter(|b| l.blocks.contains(b))
            .collect();
        for b in order {
            let stmts: Vec<Stmt> = f.blocks[b.index()].stmts.clone();
            for (i, stmt) in stmts.iter().enumerate() {
                let Some(x) = stmt.result else { continue };
                if !stmt.inst.is_pure() {
                    continue;
                }
                // LLVM hoists only from blocks that execute on every
                // iteration; we approximate with "dominates every latch",
                // simplified to: the block dominates all back-edge sources.
                let latches: Vec<BlockId> = cfg
                    .preds(l.header)
                    .iter()
                    .copied()
                    .filter(|p| l.blocks.contains(p))
                    .collect();
                if !latches.iter().all(|latch| dom.dominates(b, *latch)) {
                    continue;
                }
                let invariant = stmt
                    .inst
                    .used_regs()
                    .iter()
                    .all(|r| !defined_in_loop(*r, &hoisted));
                if !invariant {
                    continue;
                }

                // Hoist: append to the preheader (before its terminator),
                // delete in the loop body.
                let ph = l.preheader.index();
                let row = pb.append_tgt(ph, stmt.clone());
                pb.delete_tgt(b.index(), i);
                pb.global_maydiff(crellvm_core::TReg::Phy(x));
                tel.count("pass.licm.hoisted", 1);

                // Proof: a ghost ĝx mediates "the (loop-invariant) value of
                // e". Operands that were themselves hoisted are rewritten
                // to their ghosts so the anchor expression is injected.
                let e = Expr::of_inst(&stmt.inst).expect("pure instructions are expressions");
                let ghost = |r: RegId| format!("licm{}", r.index());
                let mut e_ghosted = e.clone();
                let mut hoisted_ops: Vec<RegId> = Vec::new();
                for r in stmt.inst.used_regs() {
                    if hoisted.contains(&r) && !hoisted_ops.contains(&r) {
                        hoisted_ops.push(r);
                        e_ghosted = e_ghosted.subst(&TValue::phy(r), &TValue::ghost(ghost(r)));
                    }
                }
                hoisted.insert(x);
                let gx = Expr::value(TValue::ghost(ghost(x)));
                let xv = Expr::Value(TValue::phy(x));

                // Target side (preheader row): ĝx ⊒ e_ghosted ⊒ e ⊒ x.
                pb.infrule_after_row(
                    ph,
                    row,
                    crellvm_core::InfRule::IntroGhost {
                        g: ghost(x),
                        e: e_ghosted.clone(),
                    },
                );
                let mut cur = e_ghosted.clone();
                for r in &hoisted_ops {
                    pb.infrule_after_row(
                        ph,
                        row,
                        crellvm_core::InfRule::Substitute {
                            side: Side::Tgt,
                            from: TValue::ghost(ghost(*r)),
                            to: TValue::phy(*r),
                            e: cur.clone(),
                        },
                    );
                    cur = cur.subst(&TValue::ghost(ghost(*r)), &TValue::phy(*r));
                }

                // Source side (original row): x ⊒ e ⊒ e_ghosted ⊒ ĝx.
                let src_row_loc = Loc::AfterRow(b.index(), pb.row_of_src(b.index(), i));
                let mut cur = e.clone();
                for r in &hoisted_ops {
                    pb.infrule_after_src(
                        b.index(),
                        i,
                        crellvm_core::InfRule::Substitute {
                            side: Side::Src,
                            from: TValue::phy(*r),
                            to: TValue::ghost(ghost(*r)),
                            e: cur.clone(),
                        },
                    );
                    cur = cur.subst(&TValue::phy(*r), &TValue::ghost(ghost(*r)));
                }
                // The src-side half of the ghost introduction must persist
                // from the preheader down to the original definition.
                let from_tgt = Loc::AfterRow(ph, row);
                pb.range_pred(
                    Side::Src,
                    Pred::Lessdef(e_ghosted.clone(), gx.clone()),
                    from_tgt,
                    src_row_loc,
                );

                // The mediated equalities at every use of x.
                for site in uses_of(pb.tgt(), x) {
                    let to = match site {
                        UseSite::Stmt(ub, ut) => {
                            let r = pb.row_of_tgt(ub, ut);
                            if r == 0 {
                                Loc::Start(ub)
                            } else {
                                Loc::AfterRow(ub, r - 1)
                            }
                        }
                        UseSite::Term(ub) => Loc::End(ub),
                        UseSite::PhiEdge(_, _, pred) => Loc::End(pred),
                    };
                    pb.range_pred(
                        Side::Src,
                        Pred::Lessdef(xv.clone(), gx.clone()),
                        src_row_loc,
                        to,
                    );
                    pb.range_pred(
                        Side::Tgt,
                        Pred::Lessdef(gx.clone(), xv.clone()),
                        from_tgt,
                        to,
                    );
                }
            }
        }
    }
    pb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crellvm_core::{validate, Verdict};
    use crellvm_ir::{parse_module, verify_module, Inst};

    fn run(src: &str) -> PassOutcome {
        let m = parse_module(src).expect("parse");
        verify_module(&m).expect("input verifies");
        let out = licm(&m, &PassConfig::default());
        verify_module(&out.module).expect("output verifies");
        out
    }

    fn assert_all_valid(out: &PassOutcome) {
        for unit in &out.proofs {
            assert_eq!(
                validate(unit),
                Ok(Verdict::Valid),
                "unit for @{}\ntgt:\n{}",
                unit.src.name,
                unit.tgt
            );
        }
    }

    const LOOP: &str = r#"
        declare @print(i32)
        define @main(i32 %n, i32 %a, i32 %b) {
        entry:
          br label loop
        loop:
          %i = phi i32 [ 0, entry ], [ %i2, loop ]
          %inv = mul i32 %a, %b
          %s = add i32 %i, %inv
          call void @print(i32 %s)
          %i2 = add i32 %i, 1
          %c = icmp slt i32 %i2, %n
          br i1 %c, label loop, label exit
        exit:
          ret void
        }
    "#;

    #[test]
    fn hoists_invariant_multiplication() {
        let out = run(LOOP);
        let f = out.module.function("main").unwrap();
        let entry = f.block_by_name("entry").unwrap();
        let lp = f.block_by_name("loop").unwrap();
        assert_eq!(f.block(entry).stmts.len(), 1, "hoisted into preheader: {f}");
        assert!(matches!(f.block(entry).stmts[0].inst, Inst::Bin { .. }));
        assert_eq!(f.block(lp).stmts.len(), 4, "mul removed from the loop: {f}");
        assert_all_valid(&out);
    }

    #[test]
    fn loop_variant_values_stay() {
        let out = run(r#"
            declare @print(i32)
            define @main(i32 %n) {
            entry:
              br label loop
            loop:
              %i = phi i32 [ 0, entry ], [ %i2, loop ]
              %sq = mul i32 %i, %i
              call void @print(i32 %sq)
              %i2 = add i32 %i, 1
              %c = icmp slt i32 %i2, %n
              br i1 %c, label loop, label exit
            exit:
              ret void
            }
            "#);
        let f = out.module.function("main").unwrap();
        let entry = f.block_by_name("entry").unwrap();
        assert_eq!(f.block(entry).stmts.len(), 0, "nothing to hoist: {f}");
        assert_all_valid(&out);
    }

    #[test]
    fn divisions_and_loads_not_hoisted() {
        let out = run(r#"
            declare @print(i32)
            define @main(i32 %n, i32 %a, i32 %b, ptr %p) {
            entry:
              br label loop
            loop:
              %i = phi i32 [ 0, entry ], [ %i2, loop ]
              %d = sdiv i32 %a, %b
              %m = load i32, ptr %p
              %s = add i32 %d, %m
              call void @print(i32 %s)
              %i2 = add i32 %i, 1
              %c = icmp slt i32 %i2, %n
              br i1 %c, label loop, label exit
            exit:
              ret void
            }
            "#);
        let f = out.module.function("main").unwrap();
        let entry = f.block_by_name("entry").unwrap();
        assert_eq!(
            f.block(entry).stmts.len(),
            0,
            "trap/memory ops stay put: {f}"
        );
        assert_all_valid(&out);
    }

    #[test]
    fn conditional_blocks_not_hoisted_from() {
        // The invariant computation sits behind a branch inside the loop:
        // it does not execute every iteration, so it must not be hoisted
        // (it could trap… here it is pure, but LLVM still requires the
        // dominance condition; we mirror that).
        let out = run(r#"
            declare @print(i32)
            define @main(i32 %n, i32 %a, i1 %g) {
            entry:
              br label loop
            loop:
              %i = phi i32 [ 0, entry ], [ %i2, latch ]
              br i1 %g, label then, label latch
            then:
              %inv = mul i32 %a, %a
              call void @print(i32 %inv)
              br label latch
            latch:
              %i2 = add i32 %i, 1
              %c = icmp slt i32 %i2, %n
              br i1 %c, label loop, label exit
            exit:
              ret void
            }
            "#);
        let f = out.module.function("main").unwrap();
        let entry = f.block_by_name("entry").unwrap();
        assert_eq!(f.block(entry).stmts.len(), 0, "{f}");
        assert_all_valid(&out);
    }

    #[test]
    fn chained_invariants_hoist_together() {
        let out = run(r#"
            declare @print(i32)
            define @main(i32 %n, i32 %a, i32 %b) {
            entry:
              br label loop
            loop:
              %i = phi i32 [ 0, entry ], [ %i2, loop ]
              %u = mul i32 %a, %b
              %v = add i32 %u, 7
              %s = add i32 %i, %v
              call void @print(i32 %s)
              %i2 = add i32 %i, 1
              %c = icmp slt i32 %i2, %n
              br i1 %c, label loop, label exit
            exit:
              ret void
            }
            "#);
        let f = out.module.function("main").unwrap();
        let entry = f.block_by_name("entry").unwrap();
        assert_eq!(
            f.block(entry).stmts.len(),
            2,
            "both invariants hoisted: {f}"
        );
        assert_all_valid(&out);
    }

    #[test]
    fn no_loop_is_identity() {
        let out = run(r#"
            define @main(i32 %a) -> i32 {
            entry:
              %x = add i32 %a, 1
              ret i32 %x
            }
            "#);
        assert_all_valid(&out);
        assert_eq!(out.module.function("main").unwrap().stmt_count(), 1);
    }

    #[test]
    fn natural_loop_detection() {
        let m = parse_module(LOOP).unwrap();
        let f = &m.functions[0];
        let cfg = Cfg::new(f);
        let dom = DomTree::new(f, &cfg);
        let loops = natural_loops(f, &cfg, &dom);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, f.block_by_name("loop").unwrap());
        assert_eq!(l.preheader, f.block_by_name("entry").unwrap());
        assert_eq!(l.blocks.len(), 1);
    }
}
