//! Register promotion (LLVM's `mem2reg`) with proof generation.
//!
//! Mirrors `PromoteMemoryToRegister.cpp`: a general dominance-frontier
//! promotion (the paper's Algorithm 2) plus the two specialized fast paths
//! — *single-store* allocas (`rewriteSingleStoreAlloca`) and allocas whose
//! loads and stores all live in a *single block*
//! (`promoteSingleBlockAlloca`). The historical bugs PR24179 and PR33673
//! live in those fast paths and can be re-enabled through
//! [`crate::BugSet`].
//!
//! Proof generation follows the paper exactly: one ghost register `p̂` per
//! promoted location carrying "the current content of `*p`", one ghost
//! `x̂` per rewritten load, `intro_ghost` rules at stores and loads, and
//! ranged assertions `{*p ⊒ p̂}ₛ {p̂ ⊒ v}ₜ` from each def point to each
//! use point (Algorithm 2's boxed lines).

use crate::config::{PassConfig, PassOutcome};
use crate::util::{on_cycle, reaches, uses_of, UseSite};
use crellvm_core::{AutoKind, Expr, InfRule, Loc, Pred, ProofBuilder, ProofUnit, Side, TValue};
use crellvm_ir::{
    BlockId, Cfg, DomTree, DominanceFrontier, Function, Inst, Module, Phi, RegId, Type, Value,
};
use std::collections::{HashMap, HashSet};

/// Run register promotion over every function of a module.
pub fn mem2reg(module: &Module, config: &PassConfig) -> PassOutcome {
    mem2reg_traced(module, config, &crellvm_telemetry::Telemetry::disabled())
}

/// [`mem2reg`] recording domain counters (`pass.mem2reg.*`) into `tel`.
pub fn mem2reg_traced(
    module: &Module,
    config: &PassConfig,
    tel: &crellvm_telemetry::Telemetry,
) -> PassOutcome {
    let mut out = module.clone();
    let mut proofs = Vec::new();
    for f in &module.functions {
        let unit = promote_function_traced(f, config, tel);
        *out.function_mut(&f.name).expect("function exists") = unit.tgt.clone();
        proofs.push(unit);
    }
    PassOutcome {
        module: out,
        proofs,
    }
}

/// A promotable stack slot found in the source function.
#[derive(Debug, Clone)]
struct AllocaInfo {
    block: usize,
    stmt: usize,
    reg: RegId,
    ty: Type,
    loads: Vec<(usize, usize, RegId)>,
    stores: Vec<(usize, usize, Value)>,
}

/// How a given alloca will be promoted.
#[derive(Debug, Clone)]
enum Mode {
    /// Full rename with phi insertion at the iterated dominance frontier.
    General {
        /// block index → inserted phi register.
        phis: HashMap<usize, RegId>,
    },
    /// Exactly one store; loads take the stored value (if dominated) or
    /// `undef`.
    SingleStore,
    /// All loads and stores in one block; a linear scan resolves loads.
    SingleBlock,
}

/// What a rewritten load's uses are replaced with, together with the ghost
/// chain anchor.
#[derive(Debug, Clone)]
struct Replacement {
    ghost: String,
    value: Value,
}

struct Promoter<'a> {
    pb: ProofBuilder,
    src: Function,
    dom: DomTree,
    config: &'a PassConfig,
    /// load-result register → its replacement (ghost + target value).
    replaced: HashMap<RegId, Replacement>,
}

fn phat(p: RegId) -> String {
    format!("p{}", p.index())
}

fn xhat(x: RegId) -> String {
    format!("l{}", x.index())
}

fn load_expr(ty: Type, p: RegId) -> Expr {
    Expr::load(ty, TValue::phy(p))
}

fn value_expr(v: &Value) -> Expr {
    Expr::Value(TValue::of_value(v))
}

impl Promoter<'_> {
    fn loc_before_src(&self, b: usize, i: usize) -> Loc {
        let row = self.pb.row_of_src(b, i);
        if row == 0 {
            Loc::Start(b)
        } else {
            Loc::AfterRow(b, row - 1)
        }
    }

    fn loc_after_src(&self, b: usize, i: usize) -> Loc {
        Loc::AfterRow(b, self.pb.row_of_src(b, i))
    }

    fn loc_before_tgt_use(&self, site: UseSite) -> Loc {
        match site {
            UseSite::Stmt(b, t) => {
                let row = self.pb.row_of_tgt(b, t);
                if row == 0 {
                    Loc::Start(b)
                } else {
                    Loc::AfterRow(b, row - 1)
                }
            }
            UseSite::Term(b) => Loc::End(b),
            UseSite::PhiEdge(_, _, pred) => Loc::End(pred),
        }
    }

    /// The `intro_ghost` anchor and target-side value for a source value
    /// `w`: if `w` is a load we already rewrote, anchor through its ghost.
    fn anchor_of(&self, w: &Value) -> (Expr, Value) {
        if let Some(r) = w.as_reg() {
            if let Some(rep) = self.replaced.get(&r) {
                return (
                    Expr::value(TValue::ghost(rep.ghost.clone())),
                    rep.value.clone(),
                );
            }
        }
        (value_expr(w), w.clone())
    }

    /// Rewrite one load: assert the ghost chain, delete the load, replace
    /// its uses. `from_loc` is where the current value was established and
    /// `repl` the target-side replacement value. `extra_rules` are placed
    /// at the load row before the `intro_ghost` (PR33673's
    /// `intro_lessdef_undef` goes here).
    fn rewrite_load(
        &mut self,
        info: &AllocaInfo,
        (b, i, x): (usize, usize, RegId),
        repl: Value,
        from_loc: Loc,
        extra_rules: Vec<InfRule>,
    ) {
        let p = info.reg;
        let to_loc = self.loc_before_src(b, i);
        self.pb.range_pred(
            Side::Src,
            Pred::Lessdef(load_expr(info.ty, p), Expr::value(TValue::ghost(phat(p)))),
            from_loc,
            to_loc,
        );
        self.pb.range_pred(
            Side::Tgt,
            Pred::Lessdef(Expr::value(TValue::ghost(phat(p))), value_expr(&repl)),
            from_loc,
            to_loc,
        );
        for rule in extra_rules {
            self.pb.infrule_after_src(b, i, rule);
        }
        self.pb.infrule_after_src(
            b,
            i,
            InfRule::IntroGhost {
                g: xhat(x),
                e: Expr::value(TValue::ghost(phat(p))),
            },
        );

        // Replace all uses of x in the target, asserting the chain from the
        // load to every use point.
        let uses = uses_of(self.pb.tgt(), x);
        let after_load = self.loc_after_src(b, i);
        for site in &uses {
            let to = self.loc_before_tgt_use(*site);
            self.pb.range_pred(
                Side::Src,
                Pred::Lessdef(
                    Expr::value(TValue::phy(x)),
                    Expr::value(TValue::ghost(xhat(x))),
                ),
                after_load,
                to,
            );
            self.pb.range_pred(
                Side::Tgt,
                Pred::Lessdef(Expr::value(TValue::ghost(xhat(x))), value_expr(&repl)),
                after_load,
                to,
            );
        }
        self.pb.replace_tgt_uses(x, &repl);
        self.pb.delete_tgt(b, i);
        self.pb.global_maydiff(crellvm_core::TReg::Phy(x));
        self.replaced.insert(
            x,
            Replacement {
                ghost: xhat(x),
                value: repl,
            },
        );
    }

    /// Remove one store, introducing the content ghost.
    fn rewrite_store(
        &mut self,
        info: &AllocaInfo,
        (b, i): (usize, usize),
        w: &Value,
    ) -> (Value, Loc) {
        let (anchor, tgt_val) = self.anchor_of(w);
        self.pb.infrule_after_src(
            b,
            i,
            InfRule::IntroGhost {
                g: phat(info.reg),
                e: anchor,
            },
        );
        let loc = self.loc_after_src(b, i);
        self.pb.delete_tgt(b, i);
        (tgt_val, loc)
    }

    /// Assert the content chain from `(from_loc, val)` to the end of block
    /// `b` (the paper's line A23, feeding a successor phi).
    fn assert_to_block_end(&mut self, info: &AllocaInfo, val: &Value, from_loc: Loc, b: usize) {
        let p = info.reg;
        self.pb.range_pred(
            Side::Src,
            Pred::Lessdef(load_expr(info.ty, p), Expr::value(TValue::ghost(phat(p)))),
            from_loc,
            Loc::End(b),
        );
        self.pb.range_pred(
            Side::Tgt,
            Pred::Lessdef(Expr::value(TValue::ghost(phat(p))), value_expr(val)),
            from_loc,
            Loc::End(b),
        );
    }
}

/// Collect the promotable allocas of `f` (used only by typed loads and
/// stores, single slot, all uses reachable).
fn find_promotable(f: &Function, cfg: &Cfg) -> Vec<AllocaInfo> {
    let mut out = Vec::new();
    for (b, block) in f.blocks.iter().enumerate() {
        if !cfg.is_reachable(BlockId::from_index(b)) {
            continue;
        }
        for (i, s) in block.stmts.iter().enumerate() {
            let (Some(p), Inst::Alloca { ty, count }) = (s.result, &s.inst) else {
                continue;
            };
            if *count != 1 {
                continue;
            }
            let mut loads = Vec::new();
            let mut stores = Vec::new();
            let mut promotable = true;
            'scan: for (ub, ublock) in f.blocks.iter().enumerate() {
                for (_, phi) in &ublock.phis {
                    for (_, v) in &phi.incoming {
                        if v.as_ref().and_then(Value::as_reg) == Some(p) {
                            promotable = false;
                            break 'scan;
                        }
                    }
                }
                for (ui, us) in ublock.stmts.iter().enumerate() {
                    match &us.inst {
                        Inst::Load { ty: lty, ptr } if ptr.as_reg() == Some(p) => {
                            if lty != ty || !cfg.is_reachable(BlockId::from_index(ub)) {
                                promotable = false;
                                break 'scan;
                            }
                            loads.push((ub, ui, us.result.expect("load has a result")));
                        }
                        Inst::Store { ty: sty, val, ptr } if ptr.as_reg() == Some(p) => {
                            if sty != ty
                                || val.as_reg() == Some(p)
                                || !cfg.is_reachable(BlockId::from_index(ub))
                            {
                                promotable = false;
                                break 'scan;
                            }
                            stores.push((ub, ui, val.clone()));
                        }
                        other => {
                            if other.used_regs().contains(&p) {
                                promotable = false;
                                break 'scan;
                            }
                        }
                    }
                }
                let mut term_use = false;
                ublock.term.for_each_value(|v| term_use |= v.uses(p));
                if term_use {
                    promotable = false;
                    break;
                }
            }
            if promotable {
                out.push(AllocaInfo {
                    block: b,
                    stmt: i,
                    reg: p,
                    ty: *ty,
                    loads,
                    stores,
                });
            }
        }
    }
    out
}

fn store_dominates_load(dom: &DomTree, (sb, si): (usize, usize), (lb, li): (usize, usize)) -> bool {
    if sb == lb {
        si < li
    } else {
        dom.strictly_dominates(BlockId::from_index(sb), BlockId::from_index(lb))
    }
}

fn store_reaches_load(cfg: &Cfg, (sb, si): (usize, usize), (lb, li): (usize, usize)) -> bool {
    if sb == lb && si < li {
        return true;
    }
    // Through the terminator of the store's block.
    if sb == lb {
        on_cycle(cfg, BlockId::from_index(sb))
    } else {
        reaches(cfg, BlockId::from_index(sb), BlockId::from_index(lb))
    }
}

/// Classify an alloca into a promotion mode (LLVM's dispatch).
fn classify(
    info: &AllocaInfo,
    cfg: &Cfg,
    dom: &DomTree,
    df: &DominanceFrontier,
    config: &PassConfig,
    f: &mut ProofBuilder,
) -> Mode {
    // Single store: safe when every non-dominated load is unreachable from
    // the store (otherwise fall back to the general algorithm).
    if info.stores.len() == 1 {
        let (sb, si, _) = &info.stores[0];
        let safe = info.loads.iter().all(|(lb, li, _)| {
            store_dominates_load(dom, (*sb, *si), (*lb, *li))
                || !store_reaches_load(cfg, (*sb, *si), (*lb, *li))
        });
        if safe {
            return Mode::SingleStore;
        }
    }
    // Single block: all loads and stores in one block. The FIXED version
    // bails out to the general algorithm when the block sits on a cycle
    // and some load precedes the first store (a store from the previous
    // iteration reaches it); with PR24179 enabled the fast path runs
    // anyway and such loads are wrongly resolved to undef.
    let blocks: HashSet<usize> = info
        .loads
        .iter()
        .map(|(b, _, _)| *b)
        .chain(info.stores.iter().map(|(b, _, _)| *b))
        .collect();
    if blocks.len() == 1 && !info.stores.is_empty() {
        let b = *blocks.iter().next().expect("non-empty");
        let first_store = info
            .stores
            .iter()
            .map(|(_, i, _)| *i)
            .min()
            .expect("has stores");
        let load_before_store = info.loads.iter().any(|(_, i, _)| *i < first_store);
        let looping = on_cycle(cfg, BlockId::from_index(b));
        if !(load_before_store && looping) || config.bugs.pr24179 {
            return Mode::SingleBlock;
        }
    } else if blocks.len() <= 1 {
        // Only loads (or nothing): every load reads undef; the general
        // path handles it uniformly.
    }

    // General: insert empty phis at the iterated dominance frontier of the
    // store blocks (paper line A2).
    let mut phis = HashMap::new();
    let seeds: Vec<BlockId> = {
        let mut v: Vec<usize> = info.stores.iter().map(|(b, _, _)| *b).collect();
        v.sort_unstable();
        v.dedup();
        v.into_iter().map(BlockId::from_index).collect()
    };
    for b in df.iterated(seeds) {
        let z = f.fresh_reg(&format!("{}.phi", f.src().reg_name(info.reg)));
        phis.insert(b.index(), z);
        f.global_maydiff(crellvm_core::TReg::Phy(z));
    }
    Mode::General { phis }
}

/// Promote every promotable alloca of `f`, producing the proof unit.
pub fn promote_function(f: &Function, config: &PassConfig) -> ProofUnit {
    promote_function_traced(f, config, &crellvm_telemetry::Telemetry::disabled())
}

/// [`promote_function`] recording domain counters into `tel`.
pub fn promote_function_traced(
    f: &Function,
    config: &PassConfig,
    tel: &crellvm_telemetry::Telemetry,
) -> ProofUnit {
    let mut pb = ProofBuilder::new("mem2reg", f);
    pb.set_recording(config.gen_proofs);
    if let Some(reason) = crate::util::ns_reason(f, "mem2reg") {
        pb.mark_not_supported(reason);
        return pb.finish();
    }
    let cfg = Cfg::new(f);
    let dom = DomTree::new(f, &cfg);
    let df = DominanceFrontier::new(f, &cfg, &dom);

    let allocas = find_promotable(f, &cfg);
    if allocas.is_empty() {
        return pb.finish();
    }
    tel.count("pass.mem2reg.allocas_promoted", allocas.len() as u64);
    pb.auto(AutoKind::Transitivity);
    pb.auto(AutoKind::ReduceMaydiff);

    // Classify and set up per-alloca state.
    let mut modes: Vec<Mode> = Vec::new();
    for info in &allocas {
        let mode = classify(info, &cfg, &dom, &df, config, &mut pb);
        // Global facts (paper line A3): Uniq(p), MD(p), delete the alloca,
        // and seed the content ghost with undef (line A4).
        pb.global_pred(Side::Src, Pred::Uniq(info.reg));
        pb.global_maydiff(crellvm_core::TReg::Phy(info.reg));
        pb.infrule_after_src(
            info.block,
            info.stmt,
            InfRule::IntroGhost {
                g: phat(info.reg),
                e: Expr::undef(info.ty),
            },
        );
        modes.push(mode);
    }
    // Insert the (initially empty) target phis.
    for (info, mode) in allocas.iter().zip(&modes) {
        if let Mode::General { phis } = mode {
            tel.count("pass.mem2reg.phis_inserted", phis.len() as u64);
            for (&b, &z) in phis {
                let preds: Vec<BlockId> = cfg.preds(BlockId::from_index(b)).to_vec();
                pb.add_tgt_phi(
                    b,
                    z,
                    Phi {
                        ty: info.ty,
                        incoming: preds.into_iter().map(|p| (p, None)).collect(),
                    },
                );
            }
        }
    }

    let mut p = Promoter {
        pb,
        src: f.clone(),
        dom,
        config,
        replaced: HashMap::new(),
    };
    rename_pass(&mut p, &allocas, &modes);

    // Delete the allocas themselves and fill any remaining empty phi slot
    // with undef (unvisited predecessors).
    for info in &allocas {
        p.pb.delete_tgt(info.block, info.stmt);
    }
    for (info, mode) in allocas.iter().zip(&modes) {
        if let Mode::General { phis } = mode {
            for (&b, &z) in phis {
                let block = &mut p.pb.tgt_mut().blocks[b];
                if let Some((_, phi)) = block.phis.iter_mut().find(|(r, _)| *r == z) {
                    for (_, slot) in &mut phi.incoming {
                        if slot.is_none() {
                            *slot = Some(Value::undef(info.ty));
                        }
                    }
                }
            }
        }
    }
    p.pb.finish()
}

/// Per-alloca current content during the rename walk.
#[derive(Debug, Clone)]
struct Cur {
    val: Value,
    loc: Loc,
}

/// The unified rename pass (LLVM's `RenamePass`): one DFS over the CFG
/// resolving loads and stores of *all* promoted allocas in program order.
fn rename_pass(p: &mut Promoter<'_>, allocas: &[AllocaInfo], modes: &[Mode]) {
    let _n = allocas.len();
    let src = p.src.clone();
    let entry = src.entry();

    // Initial values: undef established at the alloca site.
    let init: Vec<Cur> = allocas
        .iter()
        .map(|info| Cur {
            val: Value::undef(info.ty),
            loc: p.loc_after_src(info.block, info.stmt),
        })
        .collect();

    // Quick lookup: (block, stmt) → (alloca index, access).
    #[derive(Clone, Copy)]
    enum Access {
        Load(RegId),
        Store,
    }
    let mut accesses: HashMap<(usize, usize), (usize, Access)> = HashMap::new();
    for (a, info) in allocas.iter().enumerate() {
        for &(b, i, x) in &info.loads {
            accesses.insert((b, i), (a, Access::Load(x)));
        }
        for (b, i, _) in &info.stores {
            accesses.insert((*b, *i), (a, Access::Store));
        }
    }

    let mut visited: HashSet<usize> = HashSet::new();
    let mut stack: Vec<(usize, Vec<Cur>)> = vec![(entry.index(), init)];
    visited.insert(entry.index());

    while let Some((b, mut cur)) = stack.pop() {
        for (i, stmt) in src.blocks[b].stmts.iter().enumerate() {
            let Some(&(a, access)) = accesses.get(&(b, i)) else {
                continue;
            };
            let info = &allocas[a];
            match (access, &modes[a]) {
                (Access::Store, _) => {
                    let w = match &stmt.inst {
                        Inst::Store { val, .. } => val.clone(),
                        _ => unreachable!("classified as store"),
                    };
                    let (val, loc) = p.rewrite_store(info, (b, i), &w);
                    cur[a] = Cur { val, loc };
                }
                (Access::Load(x), Mode::General { .. }) | (Access::Load(x), Mode::SingleBlock) => {
                    let c = cur[a].clone();
                    p.rewrite_load(info, (b, i, x), c.val, c.loc, Vec::new());
                }
                (Access::Load(x), Mode::SingleStore) => {
                    let (sb, si, w) = info.stores[0].clone();
                    let dominated = store_dominates_load(&p.dom, (sb, si), (b, i));
                    if dominated {
                        let c = cur[a].clone();
                        p.rewrite_load(info, (b, i, x), c.val, c.loc, Vec::new());
                    } else {
                        // The load reads uninitialized memory. The fixed
                        // path replaces it with undef; PR33673 propagates
                        // a constant stored value anyway, "because
                        // constant expressions never trap".
                        let from = p.loc_after_src(info.block, info.stmt);
                        if p.config.bugs.pr33673 {
                            if let Value::Const(c) = &w {
                                let rule = InfRule::IntroLessdefUndef {
                                    side: Side::Tgt,
                                    ty: info.ty,
                                    e: Expr::Value(TValue::Const(c.clone())),
                                };
                                // The asserted range {p̂ ⊒ c} starts at the
                                // alloca, so the (possibly unsound) rule
                                // must be available there.
                                p.pb.infrule_after_src(info.block, info.stmt, rule.clone());
                                p.rewrite_load(info, (b, i, x), w.clone(), from, vec![rule]);
                                continue;
                            }
                        }
                        p.rewrite_load(info, (b, i, x), Value::undef(info.ty), from, Vec::new());
                    }
                }
            }
        }

        // Successors: feed phis and enqueue.
        let mut handled: HashSet<usize> = HashSet::new();
        for succ in src.blocks[b].term.successors() {
            let sb = succ.index();
            if !handled.insert(sb) {
                continue;
            }
            let mut succ_cur = cur.clone();
            for (a, (info, mode)) in allocas.iter().zip(modes).enumerate() {
                if let Mode::General { phis } = mode {
                    if let Some(&z) = phis.get(&sb) {
                        // Fill this edge's incoming value (line A23).
                        let c = cur[a].clone();
                        {
                            let block = &mut p.pb.tgt_mut().blocks[sb];
                            if let Some((_, phi)) = block.phis.iter_mut().find(|(r, _)| *r == z) {
                                phi.set_incoming(BlockId::from_index(b), c.val.clone());
                            }
                        }
                        p.assert_to_block_end(info, &c.val, c.loc, b);
                        succ_cur[a] = Cur {
                            val: Value::Reg(z),
                            loc: Loc::Start(sb),
                        };
                    }
                }
            }
            if visited.insert(sb) {
                stack.push((sb, succ_cur));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BugSet;
    use crellvm_core::{validate, Verdict};
    use crellvm_ir::{parse_module, verify_module};

    fn run(src: &str, config: &PassConfig) -> PassOutcome {
        let m = parse_module(src).expect("parse");
        verify_module(&m).expect("input verifies");
        let out = mem2reg(&m, config);
        verify_module(&out.module).expect("output verifies");
        out
    }

    fn assert_all_valid(out: &PassOutcome) {
        for unit in &out.proofs {
            assert_eq!(
                validate(unit),
                Ok(Verdict::Valid),
                "unit for @{}",
                unit.src.name
            );
        }
    }

    /// The paper's Fig 3 example: straight-line store/load in a diamond.
    const FIG3: &str = r#"
        declare @foo(i32)
        define @f(i1 %c, i32 %x, ptr %q) {
        entry:
          %p = alloca i32
          store i32 42, ptr %p
          br i1 %c, label left, label right
        left:
          %a = load i32, ptr %p
          call void @foo(i32 %a)
          br label exit
        right:
          store i32 %x, ptr %p
          store i32 %x, ptr %q
          br label exit
        exit:
          %b = load i32, ptr %p
          store i32 %b, ptr %q
          ret void
        }
    "#;

    #[test]
    fn fig3_promotes_and_validates() {
        let out = run(FIG3, &PassConfig::default());
        let f = out.module.function("f").unwrap();
        // All loads/stores to %p and the alloca are gone.
        for b in &f.blocks {
            for s in &b.stmts {
                assert!(!matches!(s.inst, Inst::Alloca { .. }));
            }
        }
        // A phi was inserted in exit.
        let exit = f.block_by_name("exit").unwrap();
        assert_eq!(f.block(exit).phis.len(), 1);
        assert_all_valid(&out);
    }

    #[test]
    fn straightline_single_store() {
        let out = run(
            r#"
            declare @print(i32)
            define @main() {
            entry:
              %p = alloca i32
              store i32 42, ptr %p
              %a = load i32, ptr %p
              call void @print(i32 %a)
              ret void
            }
            "#,
            &PassConfig::default(),
        );
        let f = out.module.function("main").unwrap();
        assert_eq!(f.blocks[0].stmts.len(), 1, "only the call remains: {f}");
        assert_all_valid(&out);
    }

    #[test]
    fn loop_carried_value_gets_phi() {
        // *p accumulates across iterations: needs a loop-header phi.
        let out = run(
            r#"
            declare @print(i32)
            define @main(i32 %n) {
            entry:
              %p = alloca i32
              store i32 0, ptr %p
              br label loop
            loop:
              %i = phi i32 [ 0, entry ], [ %i2, loop ]
              %acc = load i32, ptr %p
              %acc2 = add i32 %acc, %i
              store i32 %acc2, ptr %p
              %i2 = add i32 %i, 1
              %c = icmp slt i32 %i2, %n
              br i1 %c, label loop, label exit
            exit:
              %r = load i32, ptr %p
              call void @print(i32 %r)
              ret void
            }
            "#,
            &PassConfig::default(),
        );
        let f = out.module.function("main").unwrap();
        let lp = f.block_by_name("loop").unwrap();
        assert_eq!(f.block(lp).phis.len(), 2, "i plus the promoted accumulator");
        assert_all_valid(&out);
    }

    #[test]
    fn load_of_uninitialized_becomes_undef() {
        let out = run(
            r#"
            declare @print(i32)
            define @main() {
            entry:
              %p = alloca i32
              %a = load i32, ptr %p
              call void @print(i32 %a)
              store i32 1, ptr %p
              ret void
            }
            "#,
            &PassConfig::default(),
        );
        let f = out.module.function("main").unwrap();
        // print's argument is now undef.
        let arg = match &f.blocks[0].stmts[0].inst {
            Inst::Call { args, .. } => args[0].1.clone(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(arg, Value::undef(Type::I32));
        assert_all_valid(&out);
    }

    #[test]
    fn escaping_alloca_is_not_promoted() {
        let out = run(
            r#"
            declare @sink(ptr)
            define @main() {
            entry:
              %p = alloca i32
              store i32 1, ptr %p
              call void @sink(ptr %p)
              %a = load i32, ptr %p
              ret void
            }
            "#,
            &PassConfig::default(),
        );
        let f = out.module.function("main").unwrap();
        assert!(f.blocks[0]
            .stmts
            .iter()
            .any(|s| matches!(s.inst, Inst::Alloca { .. })));
        assert_all_valid(&out); // identity translation
    }

    #[test]
    fn store_load_chains_between_two_allocas() {
        // store *q := load *p — the anchor must go through the ghost.
        let out = run(
            r#"
            declare @print(i32)
            define @main(i32 %x) {
            entry:
              %p = alloca i32
              %q = alloca i32
              store i32 %x, ptr %p
              %a = load i32, ptr %p
              store i32 %a, ptr %q
              %b = load i32, ptr %q
              call void @print(i32 %b)
              ret void
            }
            "#,
            &PassConfig::default(),
        );
        let f = out.module.function("main").unwrap();
        assert_eq!(f.blocks[0].stmts.len(), 1, "only the call remains: {f}");
        assert_all_valid(&out);
    }

    #[test]
    fn unsupported_function_is_marked_ns() {
        let m = parse_module(
            "define @f() {\nentry:\n  %u = unsupported \"vector.add\"\n  ret void\n}\n",
        )
        .unwrap();
        let out = mem2reg(&m, &PassConfig::default());
        assert!(matches!(
            validate(&out.proofs[0]),
            Ok(Verdict::NotSupported(_))
        ));
    }

    /// PR24179: the single-block fast path in a loop. The fixed compiler
    /// promotes through the general path and validates; the buggy one
    /// resolves the first load to undef and validation FAILS.
    const PR24179: &str = r#"
        declare @foo(i32)
        define @main(i32 %n) {
        entry:
          br label loop
        loop:
          %i = phi i32 [ 0, entry ], [ %i2, loop ]
          %r = load i32, ptr %p
          call void @foo(i32 %r)
          store i32 42, ptr %p
          %i2 = add i32 %i, 1
          %c = icmp slt i32 %i2, %n
          br i1 %c, label loop, label exit
        exit:
          ret void
        }
    "#;

    fn pr24179_src() -> String {
        // Hoist the alloca into entry (the uses stay single-block).
        PR24179.replace("entry:\n", "entry:\n          %p = alloca i32\n")
    }

    #[test]
    fn pr24179_fixed_validates() {
        let out = run(&pr24179_src(), &PassConfig::default());
        assert_all_valid(&out);
        // And the promoted value is loop-carried: a phi exists in loop.
        let f = out.module.function("main").unwrap();
        let lp = f.block_by_name("loop").unwrap();
        assert_eq!(f.block(lp).phis.len(), 2);
    }

    #[test]
    fn pr24179_bug_caught_by_validation() {
        let config = PassConfig::with_bugs(BugSet {
            pr24179: true,
            ..BugSet::default()
        });
        let m = parse_module(&pr24179_src()).unwrap();
        let out = mem2reg(&m, &config);
        verify_module(&out.module).expect("even the buggy output is well-formed IR");
        let err = validate(&out.proofs[0]).unwrap_err();
        // The failure points into the loop where the "still undef" claim
        // breaks.
        assert!(err.at.contains("loop"), "failure at {}", err.at);
        // The miscompiled target really does feed undef to @foo forever.
        let f = out.module.function("main").unwrap();
        let lp = f.block_by_name("loop").unwrap();
        let arg = match &f.block(lp).stmts[0].inst {
            Inst::Call { args, .. } => args[0].1.clone(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(arg, Value::undef(Type::I32));
    }

    /// PR33673: single-store promotion of a *trapping constant expression*
    /// to a non-dominated load.
    const PR33673: &str = r#"
        global @G : i32[1]
        declare @foo(i32)
        define @main(i1 %c) {
        entry:
          %p = alloca i32
          br i1 %c, label uses, label stores
        uses:
          %r = load i32, ptr %p
          call void @foo(i32 %r)
          ret void
        stores:
          store i32 sdiv(i32 1, sub(i32 ptrtoint(@G to i32), ptrtoint(@G to i32))), ptr %p
          ret void
        }
    "#;

    #[test]
    fn pr33673_fixed_replaces_with_undef_and_validates() {
        let out = run(PR33673, &PassConfig::default());
        let f = out.module.function("main").unwrap();
        let uses = f.block_by_name("uses").unwrap();
        let arg = match &f.block(uses).stmts[0].inst {
            Inst::Call { args, .. } => args[0].1.clone(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(arg, Value::undef(Type::I32));
        assert_all_valid(&out);
    }

    #[test]
    fn pr33673_bug_caught_by_validation() {
        let config = PassConfig::with_bugs(BugSet {
            pr33673: true,
            ..BugSet::default()
        });
        let m = parse_module(PR33673).unwrap();
        let out = mem2reg(&m, &config);
        verify_module(&out.module).unwrap();
        // The target now evaluates the trapping constexpr when calling foo.
        let err = validate(&out.proofs[0]).unwrap_err();
        assert!(
            err.reason.contains("trapping") || err.reason.contains("undefined behaviour"),
            "reason: {}",
            err.reason
        );
    }

    #[test]
    fn pr33673_bug_with_benign_constant_still_validates() {
        // The same buggy code path, but the stored constant cannot trap:
        // replacing an undef load with 7 is a legal refinement, and the
        // checker accepts it (this is why the bug hid for 7 years).
        let src = PR33673.replace(
            "sdiv(i32 1, sub(i32 ptrtoint(@G to i32), ptrtoint(@G to i32)))",
            "7",
        );
        let config = PassConfig::with_bugs(BugSet {
            pr33673: true,
            ..BugSet::default()
        });
        let out = run(&src, &config);
        let f = out.module.function("main").unwrap();
        let uses = f.block_by_name("uses").unwrap();
        let arg = match &f.block(uses).stmts[0].inst {
            Inst::Call { args, .. } => args[0].1.clone(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(arg, Value::int(Type::I32, 7));
        assert_all_valid(&out);
    }

    #[test]
    fn multiple_stores_in_branches_merge_correctly() {
        let out = run(FIG3, &PassConfig::default());
        assert_all_valid(&out);
        // Differential check: behaviour is preserved under the interpreter
        // is exercised in the integration tests; here we check shape only.
        let f = out.module.function("f").unwrap();
        assert_eq!(f.stmt_count(), 3, "foo-call plus the two stores to %q: {f}");
    }
}
