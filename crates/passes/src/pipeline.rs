//! The `-O2`-style pipeline driver: runs the instrumented passes in
//! LLVM-like order, validating every translation step.
//!
//! Each *step* (one pass applied to one function) is the paper's
//! validation unit (#V); its outcome is validated (`V`), failed (`#F`), or
//! not supported (`#NS`), and the four time columns of Fig 6/8 are
//! measured: `Orig` (the bare pass), `PCal` (pass + proof generation),
//! `I/O` (JSON round-trip of the proof), and `PCheck` (the checker).

use crate::config::{PassConfig, PassOutcome};
use crellvm_core::serialize_bin::{DecodeScratch, EncodeScratch};
use crellvm_core::{
    proof_from_bytes_v1, proof_from_bytes_v2_with, proof_from_json, proof_to_bytes,
    proof_to_bytes_v2_into, proof_to_json, validate_with_interner, CheckerConfig, DecodedProof,
    ProofUnit, Verdict,
};
use crellvm_ir::Module;
use crellvm_telemetry::forensics::ForensicBundle;
use crellvm_telemetry::{SpanNode, SpanTree, Telemetry};
use std::time::{Duration, Instant};

/// On-the-wire encoding of proofs between the compiler and the checker.
///
/// The paper ships JSON and measures it as the dominant cost column; §7
/// proposes binary proofs as the remedy. All three stages are available
/// so the benches can quantify each step of the remedy end-to-end: the
/// paper's JSON, the tag-free v1 binary codec, and the dictionary-coded
/// v2 container that is now the engine default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProofFormat {
    /// JSON text, as in the paper's pipeline.
    Json,
    /// The tag-free v1 binary codec of `crellvm_core::serialize_bin`.
    BinaryV1,
    /// Wire format v2: dictionary-coded strings plus block/assertion
    /// delta tables. The default on-the-wire format.
    #[default]
    Binary,
}

/// Reusable per-worker codec buffers: the encode output, the v2 encoder
/// dictionary/body, and the v2 decoder span table all survive across
/// proofs, removing the per-unit allocation churn from the io phase.
#[derive(Debug, Default)]
pub struct CodecScratch {
    enc: EncodeScratch,
    dec: DecodeScratch,
    /// The last encoded proof (`encode_into` output, `decode_scratch`
    /// input).
    pub buf: Vec<u8>,
}

impl ProofFormat {
    /// Serialize one proof into `scratch.buf`, returning the wire size.
    pub fn encode_into(self, unit: &ProofUnit, scratch: &mut CodecScratch) -> usize {
        match self {
            ProofFormat::Json => {
                let json = proof_to_json(unit).expect("serialize proof");
                scratch.buf.clear();
                scratch.buf.extend_from_slice(json.as_bytes());
            }
            ProofFormat::BinaryV1 => {
                scratch.buf = proof_to_bytes(unit).expect("serialize proof");
            }
            ProofFormat::Binary => {
                proof_to_bytes_v2_into(unit, &mut scratch.enc, &mut scratch.buf)
                    .expect("serialize proof");
            }
        }
        scratch.buf.len()
    }

    /// Deserialize the proof last encoded into `scratch.buf`.
    pub fn decode_scratch(self, scratch: &mut CodecScratch) -> ProofUnit {
        let CodecScratch { dec, buf, .. } = scratch;
        self.decode_bytes_with(buf, dec)
    }

    /// Deserialize a proof from caller-held bytes (the decode-ahead
    /// thread's entry point — its input buffers arrive from worker
    /// submissions, not from its own `encode_into`).
    pub fn decode_bytes_with(self, bytes: &[u8], dec: &mut DecodeScratch) -> ProofUnit {
        match self {
            ProofFormat::Json => {
                let json = std::str::from_utf8(bytes).expect("json proof is utf-8");
                proof_from_json(json).expect("deserialize proof")
            }
            ProofFormat::BinaryV1 => proof_from_bytes_v1(bytes).expect("deserialize proof"),
            ProofFormat::Binary => proof_from_bytes_v2_with(bytes, dec).expect("deserialize proof"),
        }
    }

    /// Deserialize a proof and seed its expression interner in the same
    /// stage, so PCheck starts from a [`DecodedProof`] whose arena is
    /// already populated (see `crellvm_core::seed_interner` — the walk is
    /// a pure function of the unit, so counters stay format- and
    /// schedule-independent).
    pub fn decode_seeded(self, bytes: &[u8], dec: &mut DecodeScratch) -> DecodedProof {
        DecodedProof::seed(self.decode_bytes_with(bytes, dec))
    }

    /// Serialize + deserialize one proof, returning the wire size.
    pub fn roundtrip(self, unit: &ProofUnit) -> (ProofUnit, usize) {
        let mut scratch = CodecScratch::default();
        self.roundtrip_with(unit, &mut scratch)
    }

    /// [`Self::roundtrip`] with reusable codec buffers.
    pub fn roundtrip_with(
        self,
        unit: &ProofUnit,
        scratch: &mut CodecScratch,
    ) -> (ProofUnit, usize) {
        let n = self.encode_into(unit, scratch);
        (self.decode_scratch(scratch), n)
    }

    /// Short stable name (CLI values, telemetry suffixes, bundle field).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ProofFormat::Json => "json",
            ProofFormat::BinaryV1 => "binary-v1",
            ProofFormat::Binary => "binary-v2",
        }
    }

    /// The `io.bytes.*` counter fed by this format.
    #[must_use]
    pub fn bytes_counter(self) -> &'static str {
        match self {
            ProofFormat::Json => "io.bytes.json",
            ProofFormat::BinaryV1 => "io.bytes.v1",
            ProofFormat::Binary => "io.bytes.v2",
        }
    }

    /// Stable discriminant mixed into validation-cache keys (entries must
    /// not be shared across wire formats — step records carry the wire
    /// size).
    #[must_use]
    pub fn wire_token(self) -> u64 {
        match self {
            ProofFormat::Json => 0,
            ProofFormat::BinaryV1 => 1,
            ProofFormat::Binary => 2,
        }
    }
}

/// The outcome of validating one translation step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// Validated.
    Valid,
    /// Validation failed (a compiler or proof-generation bug!); the reason
    /// is attached.
    Failed(String),
    /// Not supported by the validator.
    NotSupported(String),
}

impl StepOutcome {
    /// The short verdict tag (`valid` / `failed` / `not_supported`).
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            StepOutcome::Valid => "valid",
            StepOutcome::Failed(_) => "failed",
            StepOutcome::NotSupported(_) => "not_supported",
        }
    }
}

/// Render one step's verdict exactly as `crellvm opt` prints it.
///
/// This is the canonical human-readable verdict line; the serving daemon
/// uses the same function, so served verdicts are byte-identical to the
/// offline path by construction (the serve-smoke CI job diffs them).
#[must_use]
pub fn format_step_line(pass: &str, func: &str, outcome: &StepOutcome) -> String {
    match outcome {
        StepOutcome::Valid => format!("{pass:<12} @{func:<20} valid"),
        StepOutcome::NotSupported(r) => {
            format!("{pass:<12} @{func:<20} not-supported ({r})")
        }
        StepOutcome::Failed(e) => {
            format!("{pass:<12} @{func:<20} FAILED\n{:>34}reason: {e}", "")
        }
    }
}

/// One validated translation step.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// Pass name.
    pub pass: String,
    /// Function name.
    pub func: String,
    /// Validation outcome.
    pub outcome: StepOutcome,
    /// Serialized proof size in bytes (the paper's I/O payload).
    pub proof_bytes: usize,
}

/// One per-item causal span subtree awaiting assembly into the module
/// span tree (see [`PipelineReport::span_tree`]).
#[derive(Debug, Clone)]
pub struct SpanItem {
    /// Pass name.
    pub pass: String,
    /// Function name.
    pub func: String,
    /// The recorded pass-level span subtree.
    pub root: SpanNode,
}

/// Aggregate report of a pipeline run.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Per-step records.
    pub steps: Vec<StepRecord>,
    /// Per-item causal span subtrees, in step order (present when the run
    /// collected spans).
    pub span_items: Vec<SpanItem>,
    /// Forensic bundles for failed steps, in step order (present when the
    /// run had forensics enabled).
    pub bundles: Vec<ForensicBundle>,
    /// Time running the plain passes (the paper's `Orig`).
    pub time_orig: Duration,
    /// Time running the proof-generating passes (`PCal`).
    pub time_pcal: Duration,
    /// Time serializing + deserializing proofs (`I/O`).
    pub time_io: Duration,
    /// Time checking proofs (`PCheck`).
    pub time_pcheck: Duration,
}

impl PipelineReport {
    /// Number of validation steps (#V).
    pub fn validations(&self) -> usize {
        self.steps.len()
    }

    /// Number of failed validations (#F).
    pub fn failures(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s.outcome, StepOutcome::Failed(_)))
            .count()
    }

    /// Number of not-supported translations (#NS).
    pub fn not_supported(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s.outcome, StepOutcome::NotSupported(_)))
            .count()
    }

    /// Merge another report into this one.
    pub fn merge(&mut self, other: PipelineReport) {
        self.steps.extend(other.steps);
        self.span_items.extend(other.span_items);
        self.bundles.extend(other.bundles);
        self.time_orig += other.time_orig;
        self.time_pcal += other.time_pcal;
        self.time_io += other.time_io;
        self.time_pcheck += other.time_pcheck;
    }

    /// Assemble the collected span subtrees into the module span tree.
    ///
    /// `span_items` arrive in step order (pass-major, functions in module
    /// order within each pass) — a schedule-independent order — so the
    /// resulting tree is identical at any worker count.
    pub fn span_tree(&self, module_name: &str) -> SpanTree {
        SpanTree::assemble(
            module_name,
            self.span_items
                .iter()
                .map(|s| (s.func.clone(), s.root.clone())),
        )
    }
}

/// The pass list of the experiment (the paper validates these four).
pub const PASS_ORDER: [&str; 4] = ["mem2reg", "instcombine", "gvn", "licm"];

fn run_pass(name: &str, m: &Module, config: &PassConfig, tel: &Telemetry) -> PassOutcome {
    match name {
        "mem2reg" => crate::mem2reg_traced(m, config, tel),
        "instcombine" => crate::instcombine_traced(m, config, tel),
        "gvn" => crate::gvn_traced(m, config, tel),
        "licm" => crate::licm_traced(m, config, tel),
        other => panic!("unknown pass {other}"),
    }
}

/// Run one pass over a module with full validation instrumentation,
/// merging results into `report`; returns the transformed module.
pub fn run_validated_pass(
    name: &str,
    m: &Module,
    config: &PassConfig,
    checker: &CheckerConfig,
    report: &mut PipelineReport,
) -> Module {
    run_validated_pass_with(name, m, config, checker, ProofFormat::Json, report)
}

/// [`run_validated_pass`] with an explicit proof wire format.
pub fn run_validated_pass_with(
    name: &str,
    m: &Module,
    config: &PassConfig,
    checker: &CheckerConfig,
    format: ProofFormat,
    report: &mut PipelineReport,
) -> Module {
    run_validated_pass_traced(
        name,
        m,
        config,
        checker,
        format,
        &Telemetry::disabled(),
        report,
    )
}

/// [`run_validated_pass_with`] recording metrics (`pipeline.*`, `time.*`,
/// and the per-pass domain counters) and trace events into `tel`.
pub fn run_validated_pass_traced(
    name: &str,
    m: &Module,
    config: &PassConfig,
    checker: &CheckerConfig,
    format: ProofFormat,
    tel: &Telemetry,
    report: &mut PipelineReport,
) -> Module {
    // Orig: the bare pass, with proof generation genuinely disabled
    // (`gen_proofs = false` skips all proof bookkeeping while performing
    // the identical transformation). Telemetry is disabled for this run
    // so domain counters are not double-counted.
    let t0 = Instant::now();
    let _ = run_pass(name, m, &config.without_proofs(), &Telemetry::disabled());
    let orig = t0.elapsed();
    report.time_orig += orig;
    tel.registry().record_duration("time.orig", orig);

    let t1 = Instant::now();
    let out = run_pass(name, m, config, tel);
    let pcal = t1.elapsed();
    report.time_pcal += pcal;
    tel.registry().record_duration("time.pcal", pcal);

    let mut scratch = CodecScratch::default();
    for unit in &out.proofs {
        tel.count("pipeline.steps", 1);

        let t2 = Instant::now();
        let wire_len = format.encode_into(unit, &mut scratch);
        let decoded = format.decode_seeded(&scratch.buf, &mut scratch.dec);
        let io = t2.elapsed();
        report.time_io += io;
        tel.registry().record_duration("time.io", io);
        tel.observe("pipeline.proof_bytes", wire_len as u64);
        tel.count(format.bytes_counter(), wire_len as u64);

        let t3 = Instant::now();
        let outcome = match validate_with_interner(&decoded.unit, checker, tel, decoded.interner) {
            Ok(Verdict::Valid) => {
                tel.count("pipeline.validated", 1);
                StepOutcome::Valid
            }
            Ok(Verdict::NotSupported(r)) => {
                tel.count("pipeline.not_supported", 1);
                StepOutcome::NotSupported(r)
            }
            Err(e) => {
                tel.count("pipeline.failed", 1);
                StepOutcome::Failed(e.to_string())
            }
        };
        let pcheck = t3.elapsed();
        report.time_pcheck += pcheck;
        tel.registry().record_duration("time.pcheck", pcheck);

        report.steps.push(StepRecord {
            pass: name.to_string(),
            func: unit.src.name.clone(),
            outcome,
            proof_bytes: wire_len,
        });
    }
    out.module
}

/// Run the full `-O2`-like pipeline over a module, validating every step.
pub fn run_pipeline(m: &Module, config: &PassConfig) -> (Module, PipelineReport) {
    run_pipeline_traced(m, config, &Telemetry::disabled())
}

/// [`run_pipeline`] with metrics and trace events recorded into `tel`.
pub fn run_pipeline_traced(
    m: &Module,
    config: &PassConfig,
    tel: &Telemetry,
) -> (Module, PipelineReport) {
    let mut report = PipelineReport::default();
    let checker = CheckerConfig::sound();
    let mut cur = m.clone();
    for pass in PASS_ORDER {
        cur = run_validated_pass_traced(
            pass,
            &cur,
            config,
            &checker,
            ProofFormat::Json,
            tel,
            &mut report,
        );
    }
    (cur, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BugSet;
    use crellvm_interp::{check_refinement, run_main, RunConfig};
    use crellvm_ir::{parse_module, verify_module};

    const PROGRAM: &str = r#"
        declare @print(i32)
        define @main(i32 %n) {
        entry:
          %p = alloca i32
          store i32 0, ptr %p
          br label loop
        loop:
          %i = phi i32 [ 0, entry ], [ %i2, loop ]
          %acc = load i32, ptr %p
          %inv = mul i32 %n, 4
          %t = add i32 %inv, 0
          %acc2 = add i32 %acc, %t
          store i32 %acc2, ptr %p
          %i2 = add i32 %i, 1
          %c = icmp slt i32 %i2, 5
          br i1 %c, label loop, label exit
        exit:
          %r = load i32, ptr %p
          call void @print(i32 %r)
          ret void
        }
    "#;

    #[test]
    fn pipeline_validates_and_preserves_behaviour() {
        let m = parse_module(PROGRAM).unwrap();
        verify_module(&m).unwrap();
        let (out, report) = run_pipeline(&m, &PassConfig::default());
        verify_module(&out).unwrap();
        assert_eq!(report.failures(), 0, "steps: {:#?}", report.steps);
        assert!(report.validations() >= 4);
        // Differential run: same observable behaviour.
        let cfg = RunConfig::default();
        let src_run = run_main(&m, &cfg);
        let tgt_run = run_main(&out, &cfg);
        check_refinement(&src_run, &tgt_run).expect("behaviour preserved");
        // And the program got meaningfully smaller.
        assert!(
            out.function("main").unwrap().stmt_count() < m.function("main").unwrap().stmt_count()
        );
    }

    #[test]
    fn buggy_pipeline_reports_failures() {
        let m = parse_module(
            r#"
            declare @bar(ptr, ptr)
            define @main(ptr %p) {
            entry:
              %q1 = gep inbounds ptr %p, i64 10
              %q2 = gep ptr %p, i64 10
              call void @bar(ptr %q1, ptr %q2)
              ret void
            }
            "#,
        )
        .unwrap();
        let config = PassConfig::with_bugs(BugSet {
            pr28562: true,
            ..BugSet::default()
        });
        let (_, report) = run_pipeline(&m, &config);
        assert!(report.failures() > 0);
        let failing: Vec<_> = report
            .steps
            .iter()
            .filter(|s| matches!(s.outcome, StepOutcome::Failed(_)))
            .collect();
        assert!(failing.iter().all(|s| s.pass == "gvn"));
    }

    #[test]
    fn report_counts_and_merge() {
        let m = parse_module(PROGRAM).unwrap();
        let (_, mut r1) = run_pipeline(&m, &PassConfig::default());
        let (_, r2) = run_pipeline(&m, &PassConfig::default());
        let n = r1.validations();
        r1.merge(r2);
        assert_eq!(r1.validations(), 2 * n);
        assert_eq!(r1.not_supported(), 0);
        assert!(r1.time_pcheck > Duration::ZERO);
        assert!(r1.steps.iter().all(|s| s.proof_bytes > 0));
    }

    #[test]
    fn binary_proof_formats_agree_with_json() {
        let m = parse_module(PROGRAM).unwrap();
        let config = PassConfig::default();
        let checker = CheckerConfig::sound();
        let mut jrep = PipelineReport::default();
        let mut jm = m.clone();
        for pass in PASS_ORDER {
            jm =
                run_validated_pass_with(pass, &jm, &config, &checker, ProofFormat::Json, &mut jrep);
        }
        verify_module(&jm).unwrap();
        for format in [ProofFormat::BinaryV1, ProofFormat::Binary] {
            let mut brep = PipelineReport::default();
            let mut bm = m.clone();
            for pass in PASS_ORDER {
                bm = run_validated_pass_with(pass, &bm, &config, &checker, format, &mut brep);
            }
            assert_eq!(
                crellvm_ir::printer::print_module(&jm),
                crellvm_ir::printer::print_module(&bm)
            );
            assert_eq!(jrep.steps.len(), brep.steps.len());
            for (a, b) in jrep.steps.iter().zip(&brep.steps) {
                assert_eq!(a.outcome, b.outcome, "@{} ({})", a.func, a.pass);
                assert!(
                    b.proof_bytes < a.proof_bytes,
                    "{} not smaller at @{}",
                    format.name(),
                    a.func
                );
            }
        }
    }

    #[test]
    fn format_metadata_is_stable() {
        assert_eq!(ProofFormat::default(), ProofFormat::Binary);
        for f in [
            ProofFormat::Json,
            ProofFormat::BinaryV1,
            ProofFormat::Binary,
        ] {
            assert_eq!(f.wire_token(), f.wire_token());
        }
        assert_eq!(ProofFormat::Binary.name(), "binary-v2");
        assert_eq!(ProofFormat::Binary.bytes_counter(), "io.bytes.v2");
        assert_eq!(ProofFormat::BinaryV1.bytes_counter(), "io.bytes.v1");
    }
}
