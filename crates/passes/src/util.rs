//! Shared pass utilities.

use crellvm_ir::{BlockId, Cfg, Function, RegId, Value};

/// Where a register is used inside a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UseSite {
    /// Operand of statement `1` in block `0`.
    Stmt(usize, usize),
    /// Operand of the terminator of a block.
    Term(usize),
    /// Incoming value of phi `1` in block `0`, along the edge from block
    /// `2` (the value is "used" at the end of that predecessor).
    PhiEdge(usize, usize, usize),
}

/// All use sites of `r` in `f` (each site listed once per operand
/// occurrence).
pub fn uses_of(f: &Function, r: RegId) -> Vec<UseSite> {
    let mut out = Vec::new();
    for (b, block) in f.blocks.iter().enumerate() {
        for (pi, (_, phi)) in block.phis.iter().enumerate() {
            for (pred, v) in &phi.incoming {
                if let Some(Value::Reg(x)) = v {
                    if *x == r {
                        out.push(UseSite::PhiEdge(b, pi, pred.index()));
                    }
                }
            }
        }
        for (i, s) in block.stmts.iter().enumerate() {
            let mut used = false;
            s.inst.for_each_value(|v| used |= v.uses(r));
            if used {
                out.push(UseSite::Stmt(b, i));
            }
        }
        let mut used = false;
        block.term.for_each_value(|v| used |= v.uses(r));
        if used {
            out.push(UseSite::Term(b));
        }
    }
    out
}

/// If the function contains an `unsupported` stand-in instruction, return
/// its feature name (the paper's #NS trigger).
pub fn unsupported_feature(f: &Function) -> Option<String> {
    for b in &f.blocks {
        for s in &b.stmts {
            if let crellvm_ir::Inst::Unsupported { feature } = &s.inst {
                return Some(feature.clone());
            }
        }
    }
    None
}

/// Pass-sensitive not-supported classification (paper §7): features like
/// vector/aggregate/atomic/debug operations are unsupported by the
/// validator for every pass, while `lifetime` intrinsics only block
/// mem2reg (the CSmith experiment's 27.7% mem2reg #NS).
pub fn ns_reason(f: &Function, pass: &str) -> Option<String> {
    let feature = unsupported_feature(f)?;
    let mem2reg_only = feature.starts_with("lifetime");
    if mem2reg_only && pass != "mem2reg" {
        return None;
    }
    Some(format!(
        "instruction not supported by the validator: {feature}"
    ))
}

/// Is `to` reachable from `from` (following CFG edges, `from` itself
/// counted only via a non-empty path)?
pub fn reaches(cfg: &Cfg, from: BlockId, to: BlockId) -> bool {
    let mut seen = vec![false; 1024];
    let _ = &mut seen;
    let mut stack: Vec<BlockId> = cfg.succs(from).to_vec();
    let mut visited = std::collections::HashSet::new();
    while let Some(b) = stack.pop() {
        if b == to {
            return true;
        }
        if visited.insert(b) {
            stack.extend(cfg.succs(b));
        }
    }
    false
}

/// Is the block on a CFG cycle (can it reach itself)?
pub fn on_cycle(cfg: &Cfg, b: BlockId) -> bool {
    reaches(cfg, b, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crellvm_ir::parse_module;

    #[test]
    fn use_sites_cover_stmts_terms_and_phis() {
        let m = parse_module(
            r#"
            define @f(i32 %n, i1 %c) -> i32 {
            entry:
              %x = add i32 %n, 1
              br i1 %c, label a, label b
            a:
              br label b
            b:
              %p = phi i32 [ %x, entry ], [ %n, a ]
              ret i32 %x
            }
            "#,
        )
        .unwrap();
        let f = &m.functions[0];
        let x = f.blocks[0].stmts[0].result.unwrap();
        let sites = uses_of(f, x);
        assert!(sites.contains(&UseSite::PhiEdge(2, 0, 0)));
        assert!(sites.contains(&UseSite::Term(2)));
        let n = f.params[0].1;
        let sites = uses_of(f, n);
        assert!(sites.contains(&UseSite::Stmt(0, 0)));
        assert!(sites.contains(&UseSite::PhiEdge(2, 0, 1)));
    }

    #[test]
    fn reachability_and_cycles() {
        let m = parse_module(
            r#"
            define @f(i1 %c) {
            entry:
              br label loop
            loop:
              br i1 %c, label loop, label exit
            exit:
              ret void
            }
            "#,
        )
        .unwrap();
        let f = &m.functions[0];
        let cfg = Cfg::new(f);
        let entry = f.block_by_name("entry").unwrap();
        let lp = f.block_by_name("loop").unwrap();
        let exit = f.block_by_name("exit").unwrap();
        assert!(reaches(&cfg, entry, exit));
        assert!(!reaches(&cfg, exit, entry));
        assert!(on_cycle(&cfg, lp));
        assert!(!on_cycle(&cfg, entry));
        assert!(!on_cycle(&cfg, exit));
    }

    #[test]
    fn unsupported_detection() {
        let m = parse_module(
            "define @f() {\nentry:\n  %u = unsupported \"vector.add\"\n  ret void\n}\n",
        )
        .unwrap();
        assert_eq!(
            unsupported_feature(&m.functions[0]),
            Some("vector.add".into())
        );
    }
}
